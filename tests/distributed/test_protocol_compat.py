"""Claim-protocol compatibility: v1 single-item workers against the
batched board, batched workers against a batch-1 board, idempotent claim
retries, and the worker's claim backoff schedule."""

import threading
import time

import pytest

from repro.distributed.worker import (
    CLAIM_BACKOFF_CAP,
    ClaimBackoff,
    run_worker,
)
from repro.service.shards import (
    CLAIM_PROTOCOL_VERSION,
    ShardBoard,
)


def _quiet(*args, **kwargs):
    pass


def _item(index):
    return {"id": f"i{index}", "shard": index}


class TestBoardBatchedClaims:
    def test_claim_batch_pops_in_order_up_to_batch(self):
        board = ShardBoard()
        worker_id = board.register("alpha")
        for index in range(5):
            board.assign(worker_id, _item(index))
        first = board.claim_batch(worker_id, batch=3)
        assert [i["id"] for i in first] == ["i0", "i1", "i2"]
        rest = board.claim_batch(worker_id, batch=3)
        assert [i["id"] for i in rest] == ["i3", "i4"]
        assert board.claim_batch(worker_id, batch=3) == []

    def test_single_claim_is_batch_of_one(self):
        board = ShardBoard()
        worker_id = board.register("alpha")
        board.assign(worker_id, _item(0))
        board.assign(worker_id, _item(1))
        assert board.claim(worker_id)["id"] == "i0"
        assert board.claim_batch(worker_id, batch=1) == [_item(1)]

    def test_claim_retry_with_same_token_replays_items(self):
        # The lost-response case: the worker's claim reached the board but
        # the reply never arrived.  Retrying with the same token must hand
        # back the same items — not claim (and strand) fresh ones.
        board = ShardBoard()
        worker_id = board.register("alpha")
        for index in range(4):
            board.assign(worker_id, _item(index))
        first = board.claim_batch(worker_id, batch=2, token="c1")
        replay = board.claim_batch(worker_id, batch=2, token="c1")
        assert replay == first
        # The replay popped nothing: the next token still sees i2, i3.
        fresh = board.claim_batch(worker_id, batch=2, token="c2")
        assert [i["id"] for i in fresh] == ["i2", "i3"]

    def test_replayed_items_post_exactly_once(self):
        board = ShardBoard()
        worker_id = board.register("alpha")
        board.assign(worker_id, _item(0))
        board.claim_batch(worker_id, batch=1, token="c1")
        board.claim_batch(worker_id, batch=1, token="c1")
        assert board.post_result(worker_id, "i0", result={"blocks": []})
        assert not board.post_result(worker_id, "i0", result={"blocks": []})
        assert len(board.collect(timeout=0.1)) == 1

    def test_batched_post_flags_acceptance_per_item(self):
        board = ShardBoard()
        worker_id = board.register("alpha")
        board.assign(worker_id, _item(0))
        board.assign(worker_id, _item(1))
        board.claim_batch(worker_id, batch=2)
        board.abandon(worker_id, "i1")  # reassigned while the worker ran
        accepted = board.post_results(
            worker_id,
            [
                {"id": "i0", "result": {"blocks": []}},
                {"id": "i1", "result": {"blocks": []}},
                {"id": "i9", "error": "never claimed"},
            ],
        )
        assert accepted == [True, False, False]

    def test_claim_batch_rejects_bad_batch(self):
        board = ShardBoard()
        worker_id = board.register("alpha")
        with pytest.raises(ValueError):
            board.claim_batch(worker_id, batch=0)


class TestHTTPProtocolCompat:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_v1_claim_shape_is_preserved(self, background_service):
        # A pre-batching worker posts no 'batch' field; the board must
        # answer in kind: {"item": ...}, one item, no protocol marker.
        from repro.service.client import ServiceClient

        with background_service() as service:
            client = ServiceClient(service.url, timeout=10.0)
            worker_id = client.register_worker("legacy")
            assert client.claim_work(worker_id) is None
            reply = client._json(
                "POST", f"/v1/workers/{worker_id}/claim", {}
            )
            assert "items" not in reply and reply.get("item") is None

    def test_batched_claim_reports_protocol_version(self, background_service):
        from repro.service.client import ServiceClient

        with background_service() as service:
            client = ServiceClient(service.url, timeout=10.0)
            worker_id = client.register_worker("batched")
            claimed = client.claim_work_batch(worker_id, batch=3, token="t0")
            assert claimed == {"items": [], "protocol": CLAIM_PROTOCOL_VERSION}

    def test_malformed_batch_is_rejected(self, background_service):
        from repro.service.client import ServiceClient, ServiceError

        with background_service() as service:
            client = ServiceClient(service.url, timeout=10.0)
            worker_id = client.register_worker("bad")
            for batch in (0, "three"):
                with pytest.raises(ServiceError):
                    client._json(
                        "POST",
                        f"/v1/workers/{worker_id}/claim",
                        {"batch": batch},
                    )

    def test_v1_worker_loop_completes_jobs_on_batched_board(
        self, background_service
    ):
        # A worker speaking only the v1 surface (single claim, single
        # post) must keep draining jobs from the new board unchanged.
        from repro.distributed.work import execute_work_item
        from repro.service.client import ServiceClient

        def v1_worker(url, stop):
            client = ServiceClient(url, timeout=10.0)
            worker_id = client.register_worker("v1-legacy")
            while not stop.is_set():
                item = client.claim_work(worker_id)
                if item is None:
                    time.sleep(0.05)
                    continue
                try:
                    result = execute_work_item(item)
                except Exception as error:  # noqa: BLE001 - shard boundary
                    client.post_work_result(
                        worker_id, item["id"], error=str(error)
                    )
                else:
                    client.post_work_result(
                        worker_id, item["id"], result=result
                    )

        with background_service() as service:
            stop = threading.Event()
            thread = threading.Thread(
                target=v1_worker, args=(service.url, stop), daemon=True
            )
            thread.start()
            try:
                client = ServiceClient(service.url, timeout=30.0)
                job = client.submit(
                    scenario="smoke", shards=2, executor="workers"
                )
                view = client.wait(job.id, timeout=120)
                assert view.state == "done"
            finally:
                stop.set()

    def test_batched_worker_completes_jobs_on_batch1_board(
        self, background_service
    ):
        # The converse rollout order: new workers claiming batches from a
        # board configured to hand out one item per claim.
        from repro.service.client import ServiceClient

        with background_service(shard_options={"claim_batch": 1}) as service:
            thread = threading.Thread(
                target=run_worker,
                args=(service.url,),
                kwargs=dict(name="batched", max_idle=60, batch=4, log=_quiet),
                daemon=True,
            )
            thread.start()
            client = ServiceClient(service.url, timeout=30.0)
            job = client.submit(scenario="smoke", shards=3, executor="workers")
            view = client.wait(job.id, timeout=120)
            assert view.state == "done"


class TestClaimBackoff:
    def test_deterministic_schedule_without_jitter(self):
        backoff = ClaimBackoff(base=0.2, jitter=0.0)
        delays = [backoff.next_delay() for _ in range(6)]
        assert delays == [0.2, 0.4, 0.8, 1.6, 2.0, 2.0]

    def test_reset_returns_to_base(self):
        backoff = ClaimBackoff(base=0.2, jitter=0.0)
        for _ in range(4):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == 0.2

    def test_jitter_stays_within_band_and_under_cap(self):
        import random

        backoff = ClaimBackoff(base=0.2, jitter=0.25, rng=random.Random(7))
        for expected in (0.2, 0.4, 0.8, 1.6, 2.0, 2.0, 2.0):
            delay = backoff.next_delay()
            assert expected * 0.75 <= delay <= min(
                expected * 1.25, CLAIM_BACKOFF_CAP
            )

    def test_rejects_malformed_parameters(self):
        with pytest.raises(ValueError):
            ClaimBackoff(base=0.0)
        with pytest.raises(ValueError):
            ClaimBackoff(base=0.2, cap=0.1)
        with pytest.raises(ValueError):
            ClaimBackoff(base=0.2, factor=0.5)
        with pytest.raises(ValueError):
            ClaimBackoff(base=0.2, jitter=1.0)
