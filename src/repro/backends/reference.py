"""The reference backend: the event-driven simulator, unchanged semantics.

This backend wraps the pre-existing Monte-Carlo machinery — the serial
:class:`~repro.montecarlo.runner.MonteCarloRunner` and the process-pool
:func:`~repro.montecarlo.parallel.run_monte_carlo_parallel` — behind the
:class:`~repro.backends.base.ExecutionBackend` protocol.  It supports the
full feature set of the model (every policy, every delay law, traces,
per-realisation results) and is the ground truth the vectorized kernel is
validated against.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Optional, Sequence, Union

from repro.backends.base import ExecutionBackend, register_backend
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.runner import MonteCarloEstimate, MonteCarloRunner
from repro.sim.rng import SeedLike


class ReferenceBackend(ExecutionBackend):
    """Event-driven execution, one realisation at a time.

    ``workers``/``executor`` select the process-pool path (bit-identical to
    serial execution because per-realisation seeds are spawned before
    distribution); otherwise the realisations run in-process.
    """

    name = "reference"

    def run_batch(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        num_realisations: int,
        seed: SeedLike = None,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        **system_kwargs,
    ) -> MonteCarloEstimate:
        if workers is None and executor is None:
            runner = MonteCarloRunner(
                params, policy, workload, seed=seed, **system_kwargs
            )
            return runner.run(
                num_realisations,
                horizon=horizon,
                confidence_level=confidence_level,
            )

        from repro.montecarlo.parallel import run_monte_carlo_parallel

        return run_monte_carlo_parallel(
            params,
            policy,
            workload,
            num_realisations,
            seed=seed,
            horizon=horizon,
            max_workers=workers,
            executor=executor,
            confidence_level=confidence_level,
            **system_kwargs,
        )


register_backend(ReferenceBackend())
