"""Tests for the linear regression helper."""

import numpy as np
import pytest

from repro.analysis.linfit import fit_linear


class TestFitLinear:
    def test_exact_line_recovered(self):
        xs = np.arange(10, dtype=float)
        ys = 0.02 * xs + 0.1
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(0.02)
        assert fit.intercept == pytest.approx(0.1)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.n_points == 10

    def test_noisy_line(self, rng):
        xs = np.linspace(10, 100, 30)
        ys = 0.02 * xs + rng.normal(0, 0.05, size=30)
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(0.02, rel=0.25)
        assert fit.r_squared > 0.8

    def test_predict(self):
        fit = fit_linear([0.0, 1.0], [1.0, 3.0])
        assert fit.predict([2.0])[0] == pytest.approx(5.0)

    def test_constant_data_r_squared_is_one(self):
        fit = fit_linear([1.0, 2.0, 3.0], [4.0, 4.0, 4.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_linear([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_linear([1.0, 2.0], [1.0])
