"""The unified engine: the cross-engine equivalence matrix and its contracts.

The matrix is the acceptance gate of the one-engine refactor: for each
backend, a serial (inline) run, a process-pooled run, a shared-futures run
and 1/2/7-shard spec runs of the same request must return **exact** (``==``)
merged statistics — mean, variance, confidence interval and percentiles —
and bit-identical completion-time arrays.
"""

import warnings

import numpy as np
import pytest

from repro.core.policies.lbp1 import LBP1
from repro.montecarlo.engine import (
    EngineRequest,
    _LEGACY_WARNED,
    run_engine,
    warn_legacy,
)
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _request(fast_params, backend=None, **overrides):
    base = dict(
        params=fast_params,
        policy=LBP1(0.4, sender=0, receiver=1),
        workload=(20, 12),
        num_realisations=20,
        seed=7,
        backend=backend,
        block_size=4,
    )
    base.update(overrides)
    return EngineRequest(**base)


def _spec(backend, shards):
    return ScenarioSpec(
        name="engine-matrix",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.4, sender=0, receiver=1),
        mc_realisations=20,
        seed=7,
        backend=backend,
        shards=shards,
        shard_block=4,
    )


@pytest.mark.engine_equivalence
class TestCrossEngineEquivalence:
    """serial == pooled == futures == 1/2/7-shard merged, both backends."""

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_equivalence_matrix(self, backend):
        from concurrent.futures import ThreadPoolExecutor

        paper = SystemSpec.paper().to_parameters()
        runs = {}
        runs["serial"] = run_engine(_request(paper, backend))
        runs["pooled"] = run_engine(
            _request(paper, backend, executor="process", workers=2)
        )
        with ThreadPoolExecutor(max_workers=3) as pool:
            runs["futures"] = run_engine(_request(paper, backend, executor=pool))
        for shards in (1, 2, 7):
            runs[f"shards-{shards}"] = run_engine(
                EngineRequest(spec=_spec(backend, shards), executor="inline")
            )

        baseline = runs["serial"].estimate
        for mode, report in runs.items():
            estimate = report.estimate
            # Exact (==) merged statistics from one code path.
            assert estimate.summary == baseline.summary, mode
            assert estimate.stats.mean == baseline.stats.mean, mode
            assert estimate.stats.variance == baseline.stats.variance, mode
            assert (
                estimate.summary.ci_low,
                estimate.summary.ci_high,
            ) == (baseline.summary.ci_low, baseline.summary.ci_high), mode
            for q in (0, 25, 50, 90, 100):
                assert estimate.percentile(q) == baseline.percentile(q), mode
            np.testing.assert_array_equal(
                estimate.completion_times, baseline.completion_times
            )

    def test_backends_draw_different_but_same_sized_samples(self, fast_params):
        reference = run_engine(_request(fast_params, "reference")).estimate
        vectorized = run_engine(_request(fast_params, "vectorized")).estimate
        assert reference.num_realisations == vectorized.num_realisations
        assert not np.array_equal(
            reference.completion_times, vectorized.completion_times
        )


class TestEngineBehaviour:
    def test_requires_positive_realisations(self, fast_params):
        with pytest.raises(ValueError, match="num_realisations"):
            run_engine(_request(fast_params, num_realisations=0))

    def test_unseeded_runs_draw_fresh_entropy(self, fast_params):
        """seed=None must not collapse to a fixed seed via spec synthesis."""
        first = run_engine(_request(fast_params, seed=None)).estimate
        second = run_engine(_request(fast_params, seed=None)).estimate
        assert not np.array_equal(
            first.completion_times, second.completion_times
        )

    def test_adhoc_requests_still_run_everywhere(self, fast_params):
        """A horizon-carrying request cannot be spec-described, but inline
        and pooled execution must still agree exactly."""
        serial = run_engine(_request(fast_params, horizon=1e9))
        pooled = run_engine(
            _request(fast_params, horizon=1e9, executor="process", workers=2)
        )
        np.testing.assert_array_equal(
            serial.estimate.completion_times, pooled.estimate.completion_times
        )
        assert serial.estimate.summary == pooled.estimate.summary

    def test_adhoc_and_spec_described_runs_are_bit_identical(self, fast_params):
        """int seeds and SeedSequence(seed) draw the same block streams, so
        the ad-hoc API and an equivalent spec agree exactly."""
        paper = SystemSpec.paper().to_parameters()
        adhoc = run_engine(_request(paper, "reference")).estimate
        spec_run = run_engine(
            EngineRequest(spec=_spec("reference", 1), executor="inline")
        ).estimate
        np.testing.assert_array_equal(
            adhoc.completion_times, spec_run.completion_times
        )

    def test_every_run_can_use_the_shard_store(self, fast_params):
        """Unsharded runs read/write the block cache: resume + delta growth."""
        from repro.distributed.store import ShardStore

        store = ShardStore()
        paper = SystemSpec.paper().to_parameters()
        first = run_engine(_request(paper, store=store))
        assert first.blocks_cached == 0 and first.blocks_total == 5

        resumed = run_engine(_request(paper, store=store))
        assert resumed.blocks_cached == 5
        assert resumed.shards_dispatched == 0
        assert resumed.estimate.summary == first.estimate.summary

        grown = run_engine(_request(paper, store=store, num_realisations=28))
        assert grown.blocks_total == 7 and grown.blocks_cached == 5
        np.testing.assert_array_equal(
            grown.estimate.completion_times[:20], first.estimate.completion_times
        )

    def test_unsharded_blocks_serve_sharded_runs_and_vice_versa(self, fast_params):
        """The block cache is shared across shard counts including zero."""
        from repro.distributed.store import ShardStore

        store = ShardStore()
        paper = SystemSpec.paper().to_parameters()
        run_engine(_request(paper, "reference", store=store))  # unsharded
        sharded = run_engine(
            EngineRequest(spec=_spec("reference", 7), store=store)
        )
        assert sharded.blocks_cached == sharded.blocks_total == 5

    def test_custom_policy_falls_back_to_adhoc_mode(self, fast_params):
        from repro.core.policies.base import LoadBalancingPolicy
        from repro.distributed.store import ShardStore

        class Quirky(LoadBalancingPolicy):
            name = "quirky"

            def initial_transfers(self, loads, params):
                return []

        store = ShardStore()
        report = run_engine(
            _request(fast_params, policy=Quirky(), store=store)
        )
        # No spec identity -> no block-cache entries, but the run succeeds.
        assert report.estimate.num_realisations == 20
        assert len(store) == 0

    def test_wire_safe_adhoc_travels_json_transports_exactly(self, fast_params):
        """A horizon-carrying ad-hoc run now crosses JSON transports via
        adhoc_wire_payload (dict params + registered-policy reference) and
        must agree exactly with the live-object inline run."""
        from repro.distributed.executors import InlineExecutor

        class JsonOnly(InlineExecutor):
            transport = "json"

        serial = run_engine(_request(fast_params, horizon=1e9))
        wired = run_engine(
            _request(fast_params, horizon=1e9, executor=JsonOnly())
        )
        assert wired.estimate.summary == serial.estimate.summary
        np.testing.assert_array_equal(
            wired.estimate.completion_times, serial.estimate.completion_times
        )

    def test_json_transport_still_rejects_unregistered_policies(
        self, fast_params
    ):
        from repro.core.policies.base import LoadBalancingPolicy
        from repro.distributed.executors import InlineExecutor

        class Quirky(LoadBalancingPolicy):
            name = "quirky"

            def initial_transfers(self, loads, params):
                return []

        class JsonOnly(InlineExecutor):
            transport = "json"

        with pytest.raises(ValueError, match="JSON-transport"):
            run_engine(_request(fast_params, policy=Quirky(), executor=JsonOnly()))

    def test_registered_custom_policy_travels_json_transport(self, fast_params):
        from repro.core.policies.base import LoadBalancingPolicy
        from repro.distributed.executors import InlineExecutor
        from repro.distributed.policy_registry import register_policy, wire_ref

        class Nothing(LoadBalancingPolicy):
            name = "nothing"

            def initial_transfers(self, loads, params):
                return []

        register_policy("test-nothing", lambda params, workload: Nothing())
        policy = Nothing()
        policy.__wire_ref__ = wire_ref("test-nothing")

        class JsonOnly(InlineExecutor):
            transport = "json"

        serial = run_engine(_request(fast_params, policy=Nothing()))
        wired = run_engine(
            _request(fast_params, policy=policy, executor=JsonOnly())
        )
        assert wired.estimate.summary == serial.estimate.summary

    def test_v1_v2_and_mixed_store_layouts_resume_identically(self, fast_params):
        """The cross-format acceptance gate: blocks cached as legacy v1
        JSON documents, v2 segments, or a mixed directory of both must
        feed resumed runs with exact (``==``) merged statistics."""
        import json
        import shutil

        from repro.distributed.store import BLOCK_FORMAT_VERSION, ShardStore

        paper = SystemSpec.paper().to_parameters()
        baseline = run_engine(_request(paper)).estimate

        store = ShardStore()
        first = run_engine(_request(paper, store=store))
        assert first.estimate.summary == baseline.summary

        v2_resume = run_engine(_request(paper, store=ShardStore()))
        assert v2_resume.blocks_cached == 5
        assert v2_resume.estimate.summary == baseline.summary

        # Downgrade every cached block to a legacy v1 document.
        store._refresh_index()
        assert len(store._index) == 5
        for key in store._index:
            path = store.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(
                    {
                        "format_version": BLOCK_FORMAT_VERSION,
                        "key": key,
                        "block": store.get(key),
                    }
                )
            )
        shutil.rmtree(store.segment_dir)

        v1_resume = run_engine(_request(paper, store=ShardStore()))
        assert v1_resume.blocks_cached == 5
        assert v1_resume.estimate.summary == baseline.summary
        np.testing.assert_array_equal(
            v1_resume.estimate.completion_times, baseline.completion_times
        )

        # Growing the ensemble appends the delta as v2 segments next to
        # the v1 documents: the directory is now mixed-format.
        grown = run_engine(
            _request(paper, store=ShardStore(), num_realisations=28)
        )
        assert grown.blocks_cached == 5 and grown.blocks_total == 7
        mixed_resume = run_engine(
            _request(paper, store=ShardStore(), num_realisations=28)
        )
        assert mixed_resume.blocks_cached == 7
        assert mixed_resume.estimate.summary == grown.estimate.summary
        np.testing.assert_array_equal(
            mixed_resume.estimate.completion_times,
            grown.estimate.completion_times,
        )

        # Migration collapses the mix to pure v2 without changing a bit.
        counts = ShardStore().migrate()
        assert counts == {"migrated": 5, "skipped": 0}
        migrated = run_engine(
            _request(paper, store=ShardStore(), num_realisations=28)
        )
        assert migrated.blocks_cached == 7
        assert migrated.estimate.summary == grown.estimate.summary
        np.testing.assert_array_equal(
            migrated.estimate.completion_times,
            grown.estimate.completion_times,
        )

    def test_quantile_sketch_is_partition_invariant(self, fast_params):
        serial = run_engine(_request(fast_params)).estimate
        pooled = run_engine(
            _request(fast_params, executor="process", workers=2)
        ).estimate
        a, b = serial.quantile_sketch(), pooled.quantile_sketch()
        assert a.to_dict() == b.to_dict()
        assert a.quantile(0.5) == b.quantile(0.5)


@pytest.mark.engine_equivalence
class TestLegacyShimsWarnOnce:
    @pytest.fixture(autouse=True)
    def fresh_warning_state(self):
        saved = set(_LEGACY_WARNED)
        _LEGACY_WARNED.clear()
        yield
        _LEGACY_WARNED.clear()
        _LEGACY_WARNED.update(saved)

    @pytest.mark.parametrize(
        "name",
        ["run_monte_carlo", "run_monte_carlo_parallel", "run_monte_carlo_auto"],
    )
    def test_each_shim_warns_exactly_once(self, name):
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            warn_legacy(name)
            warn_legacy(name)
        deprecations = [
            w for w in seen if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert name in str(deprecations[0].message)

    def test_shim_calls_route_through_warn_legacy(self, fast_params):
        from repro.montecarlo.runner import run_monte_carlo

        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            run_monte_carlo(fast_params, LBP1(0.4), (5, 5), 2, seed=0)
            run_monte_carlo(fast_params, LBP1(0.4), (5, 5), 2, seed=0)
        deprecations = [
            w for w in seen if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
