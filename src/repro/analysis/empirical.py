"""Empirical probability densities (the histograms of Figs. 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmpiricalDensity:
    """A histogram-based estimate of a probability density function."""

    bin_edges: np.ndarray
    density: np.ndarray
    n_samples: int

    def __post_init__(self) -> None:
        edges = np.asarray(self.bin_edges, dtype=float)
        density = np.asarray(self.density, dtype=float)
        object.__setattr__(self, "bin_edges", edges)
        object.__setattr__(self, "density", density)
        if len(edges) != len(density) + 1:
            raise ValueError("bin_edges must have exactly one more entry than density")

    @property
    def bin_centers(self) -> np.ndarray:
        """Mid-points of the histogram bins."""
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    @property
    def bin_widths(self) -> np.ndarray:
        """Widths of the histogram bins."""
        return np.diff(self.bin_edges)

    def integral(self) -> float:
        """Total mass of the histogram (≈ 1 for a proper density estimate)."""
        return float(np.sum(self.density * self.bin_widths))

    def evaluate(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the piecewise-constant density at the points ``x``."""
        points = np.asarray(x, dtype=float)
        idx = np.searchsorted(self.bin_edges, points, side="right") - 1
        inside = (idx >= 0) & (idx < len(self.density))
        values = np.zeros_like(points)
        values[inside] = self.density[idx[inside]]
        return values

    def mean(self) -> float:
        """Mean of the histogram (mass-weighted bin centres)."""
        weights = self.density * self.bin_widths
        total = weights.sum()
        if total == 0:
            raise ValueError("empty density")
        return float(np.sum(self.bin_centers * weights) / total)


def empirical_density(
    samples: Sequence[float],
    bins: int = 30,
    range_: Optional[Tuple[float, float]] = None,
) -> EmpiricalDensity:
    """Estimate an :class:`EmpiricalDensity` from raw samples."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    if np.any(~np.isfinite(data)):
        raise ValueError("samples must be finite")
    density, edges = np.histogram(data, bins=bins, range=range_, density=True)
    return EmpiricalDensity(bin_edges=edges, density=density, n_samples=int(data.size))


def histogram_pdf(
    samples: Sequence[float], bins: int = 30
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper returning ``(bin centres, density)`` arrays."""
    estimate = empirical_density(samples, bins=bins)
    return estimate.bin_centers, estimate.density
