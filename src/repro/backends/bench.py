"""Benchmark harness: time execution backends against each other.

The harness takes Monte-Carlo scenarios from the registry (``mc_point``
kind — the ``mc-scaling`` throughput workload, ``smoke``, the
failure-sweep/multinode/churn family points, …), runs every requested
backend on each, and reports

* **throughput** — wall-clock seconds and realisations/second per backend,
* **speed-up** — each backend's wall time relative to ``reference``, and
* **statistical parity** — a two-sample Kolmogorov–Smirnov test between
  the reference backend's completion-time sample and every other
  backend's: an optimised kernel that drifts from the reference
  distribution is a bug, however fast it is.

Results serialize to a machine-readable ``BENCH_results.json`` (see
:meth:`BenchmarkReport.to_dict` for the schema), which is what CI uploads
as the perf-trajectory artefact.  The harness deliberately bypasses the
scenario result cache: it measures computation, not disk reads.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._version import __version__
from repro.scenarios.spec import PolicySpec, ScenarioSpec

#: JSON schema version of ``BENCH_results.json``.
BENCH_SCHEMA_VERSION = 1

#: Default significance level of the parity gate.  Scenario seeds are
#: fixed, so a pass/fail verdict is deterministic, not flaky.
DEFAULT_ALPHA = 0.01

#: Backends timed when none are requested explicitly.
DEFAULT_BACKENDS = ("reference", "vectorized")

#: Scenarios benchmarked by ``--quick`` (the CI smoke set).
QUICK_SCENARIOS = ("mc-scaling", "smoke", "churn/paper")


def bench_scenario_names() -> Tuple[str, ...]:
    """Every registry point the harness can time (``mc_point`` kind).

    Named scenarios come first, then family points in expansion order.
    """
    from repro.scenarios import registry

    names: List[str] = [
        name
        for name in registry.scenario_names()
        if registry.get_entry(name).spec.kind == "mc_point"
    ]
    for family_name in registry.family_names():
        for spec in registry.get_family(family_name).expand(quick=False):
            if spec.kind == "mc_point":
                names.append(spec.name)
    return tuple(names)


@dataclass
class BackendTiming:
    """Wall-clock measurement of one backend on one scenario."""

    backend: str
    wall_seconds: float
    realisations: int
    mean_completion_time: float
    std_completion_time: float

    @property
    def throughput(self) -> float:
        """Realisations per second."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.realisations / self.wall_seconds

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["throughput"] = self.throughput
        return payload


@dataclass
class ParityCheck:
    """KS-test verdict between a backend's sample and the reference's."""

    backend: str
    ks_statistic: float
    ks_pvalue: float
    alpha: float

    @property
    def passed(self) -> bool:
        """Whether the sample is statistically indistinguishable."""
        return self.ks_pvalue > self.alpha

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["passed"] = self.passed
        return payload


@dataclass
class ScenarioBenchmark:
    """All measurements for one scenario."""

    name: str
    policy: str
    workload: Tuple[int, ...]
    realisations: int
    seed: int
    timings: Dict[str, BackendTiming] = field(default_factory=dict)
    parity: Dict[str, ParityCheck] = field(default_factory=dict)

    def speedup(self, backend: str) -> Optional[float]:
        """Wall-time ratio ``reference / backend`` (None without both)."""
        reference = self.timings.get("reference")
        other = self.timings.get(backend)
        if reference is None or other is None or other.wall_seconds <= 0.0:
            return None
        return reference.wall_seconds / other.wall_seconds

    @property
    def parity_passed(self) -> bool:
        """Whether every non-reference backend matched the reference."""
        return all(check.passed for check in self.parity.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "policy": self.policy,
            "workload": list(self.workload),
            "realisations": self.realisations,
            "seed": self.seed,
            "timings": {k: v.to_dict() for k, v in self.timings.items()},
            "speedup_vs_reference": {
                backend: self.speedup(backend)
                for backend in self.timings
                if backend != "reference"
            },
            "parity": {k: v.to_dict() for k, v in self.parity.items()},
        }


@dataclass
class BenchmarkReport:
    """The harness's full output: per-scenario measurements plus verdicts."""

    scenarios: List[ScenarioBenchmark]
    backends: Tuple[str, ...]
    quick: bool
    alpha: float
    repeats: int
    repro_version: str = __version__

    @property
    def all_parity_passed(self) -> bool:
        """Whether every benchmarked scenario passed its parity gate."""
        return all(s.parity_passed for s in self.scenarios)

    def min_speedup(self, backend: str) -> Optional[float]:
        """Worst-case speed-up of ``backend`` across the scenarios."""
        values = [s.speedup(backend) for s in self.scenarios]
        values = [v for v in values if v is not None]
        return min(values) if values else None

    def to_dict(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "all_parity_passed": self.all_parity_passed,
        }
        for backend in self.backends:
            if backend == "reference":
                continue
            summary[f"min_speedup_{backend}"] = self.min_speedup(backend)
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "repro_version": self.repro_version,
            "quick": self.quick,
            "alpha": self.alpha,
            "repeats": self.repeats,
            "backends": list(self.backends),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "summary": summary,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        """Write ``BENCH_results.json`` (returns the path written)."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    def render(self) -> str:
        """Human-readable comparison table."""
        from repro.analysis.reporting import format_table
        from repro.analysis.tables import Table

        table = Table(
            [
                "scenario",
                "backend",
                "realisations",
                "wall (s)",
                "real/s",
                "speedup",
                "KS p",
                "parity",
            ],
            title="Execution-backend benchmark",
        )
        for scenario in self.scenarios:
            for backend in self.backends:
                timing = scenario.timings.get(backend)
                if timing is None:
                    continue
                speedup = scenario.speedup(backend)
                check = scenario.parity.get(backend)
                table.add_row(
                    {
                        "scenario": scenario.name,
                        "backend": backend,
                        "realisations": timing.realisations,
                        "wall (s)": timing.wall_seconds,
                        "real/s": timing.throughput,
                        "speedup": "" if speedup is None else f"{speedup:.1f}x",
                        "KS p": "" if check is None else f"{check.ks_pvalue:.3f}",
                        "parity": ""
                        if check is None
                        else ("ok" if check.passed else "FAIL"),
                    }
                )
        lines = [format_table(table, float_format="{:.2f}")]
        verdict = "passed" if self.all_parity_passed else "FAILED"
        lines.append(f"parity gate (KS p > {self.alpha:g}): {verdict}")
        return "\n".join(lines)


def _resolve_bench_spec(
    scenario: Union[str, ScenarioSpec], quick: bool
) -> ScenarioSpec:
    from repro.scenarios import registry

    spec = (
        registry.resolve(scenario, quick=quick)
        if isinstance(scenario, str)
        else scenario
    )
    if spec.kind != "mc_point":
        raise ValueError(
            f"scenario {spec.name!r} has kind {spec.kind!r}; the benchmark "
            "harness times mc_point scenarios (see bench_scenario_names())"
        )
    return spec


def benchmark_scenario(
    scenario: Union[str, ScenarioSpec],
    backends: Sequence[str] = DEFAULT_BACKENDS,
    quick: bool = False,
    seed: Optional[int] = None,
    alpha: float = DEFAULT_ALPHA,
    repeats: int = 1,
) -> ScenarioBenchmark:
    """Time every backend on one scenario and KS-test parity.

    ``repeats`` re-runs each backend and keeps the best wall time (the
    completion-time sample is identical across repeats — same seed).
    """
    from scipy import stats

    from repro.montecarlo.engine import EngineRequest, run_engine

    spec = _resolve_bench_spec(scenario, quick)
    if seed is not None:
        spec = spec.with_(seed=int(seed))
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")

    params = spec.system.to_parameters()
    policy = (spec.policy or PolicySpec()).build(params, spec.workload)

    result = ScenarioBenchmark(
        name=spec.name,
        policy=policy.name,
        workload=tuple(spec.workload),
        realisations=spec.mc_realisations,
        seed=spec.seed,
    )
    samples: Dict[str, "object"] = {}
    for backend in backends:
        best = float("inf")
        estimate = None
        for _ in range(repeats):
            started = perf_counter()
            # The harness measures computation, not disk: engine run with
            # the block cache off (store=None is the default).
            estimate = run_engine(
                EngineRequest(spec=spec.with_(backend=backend, shards=0))
            ).estimate
            best = min(best, perf_counter() - started)
        assert estimate is not None
        samples[backend] = estimate.completion_times
        result.timings[backend] = BackendTiming(
            backend=backend,
            wall_seconds=best,
            realisations=spec.mc_realisations,
            mean_completion_time=float(estimate.summary.mean),
            std_completion_time=float(estimate.summary.std),
        )

    reference_sample = samples.get("reference")
    if reference_sample is not None:
        for backend, sample in samples.items():
            if backend == "reference":
                continue
            ks = stats.ks_2samp(reference_sample, sample)
            result.parity[backend] = ParityCheck(
                backend=backend,
                ks_statistic=float(ks.statistic),
                ks_pvalue=float(ks.pvalue),
                alpha=alpha,
            )
    return result


def run_benchmark(
    scenarios: Optional[Sequence[Union[str, ScenarioSpec]]] = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    quick: bool = False,
    seed: Optional[int] = None,
    alpha: float = DEFAULT_ALPHA,
    repeats: int = 1,
) -> BenchmarkReport:
    """Benchmark ``backends`` across ``scenarios`` and collect a report.

    ``scenarios`` defaults to the CI smoke set under ``quick`` and to every
    benchable registry point otherwise.
    """
    if scenarios is None:
        scenarios = QUICK_SCENARIOS if quick else bench_scenario_names()
    results = [
        benchmark_scenario(
            scenario,
            backends=backends,
            quick=quick,
            seed=seed,
            alpha=alpha,
            repeats=repeats,
        )
        for scenario in scenarios
    ]
    report = BenchmarkReport(
        scenarios=results,
        backends=tuple(backends),
        quick=quick,
        alpha=alpha,
        repeats=repeats,
    )
    _record_bench_history(report)
    return report


def write_benchmark_results(
    path: Union[str, Path] = "BENCH_results.json", **kwargs
) -> BenchmarkReport:
    """Run :func:`run_benchmark` and persist the report to ``path``."""
    report = run_benchmark(**kwargs)
    report.save(path)
    return report


# ---------------------------------------------------------------------------
# Distributed scaling benchmark (wall-clock vs worker count)
# ---------------------------------------------------------------------------

#: JSON schema version of ``BENCH_distributed.json``.
#:
#: History: 2 — per-worker-count ``breakdown`` section (dispatch overhead
#: vs block compute vs merge, from the engine's phase timings).
#: 3 — ``breakdown.attribution`` overhead ledger (wall-equivalent
#: wire/deserialize/compute/dispatch/idle seconds from stitched
#: cross-process spans; see ``docs/observability.md``).
#: 4 — per-timing ``skipped`` flag (worker count exceeded the effective
#: CPU budget — the measurement timeshares cores and its speedup is
#: physically meaningless); ``summary.speedups`` covers only non-skipped
#: counts and ``summary.skipped_counts`` lists the rest.
DISTRIBUTED_BENCH_SCHEMA_VERSION = 4

#: Process-pool sizes timed by default.
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: Pool sizes of the committed strong-scaling curve (``BENCH_scaling.json``).
SCALING_WORKER_COUNTS = (1, 2, 4, 8, 16)


def effective_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Containers and CI runners routinely pin processes to a subset of the
    host's cores; ``os.cpu_count()`` reports the host and would let a
    speedup gate demand parallel speedups the scheduler physically cannot
    deliver.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def speedup_gate_problems(
    report: "DistributedBenchmarkReport",
    minimum: float,
    effective_cpus: Optional[int] = None,
) -> Tuple[List[str], List[int]]:
    """Apply a minimum-speedup gate; returns ``(problems, skipped_counts)``.

    The gate demands ``speedup(count) > minimum`` for every timed worker
    count that the machine can genuinely parallelize (``count <=
    effective_cpus``).  Counts beyond the effective CPU budget are
    *skipped*, not failed — a 2-worker pool on a 1-CPU container
    timeshares one core and a >1.0 speedup there is physically impossible;
    gating on it would only teach people to delete the gate.  Callers must
    surface the skips loudly so a misconfigured CI runner (affinity-pinned
    to one core) cannot silently pass.
    """
    if effective_cpus is None:
        effective_cpus = effective_cpu_count()
    problems: List[str] = []
    skipped: List[int] = []
    for timing in report.timings:
        count = timing.worker_count
        if count <= 1:
            continue
        if count > effective_cpus:
            skipped.append(count)
            continue
        speedup = report.speedup(count)
        if speedup is None:
            problems.append(
                f"speedup at {count} workers cannot be computed (no "
                f"1-worker baseline timing in the report)"
            )
        elif speedup <= minimum:
            problems.append(
                f"speedup at {count} workers is {speedup:.2f}x, required "
                f"> {minimum:g}x on {effective_cpus} effective CPUs — "
                f"distribution is not paying for its overhead"
            )
    return problems, skipped


@dataclass
class DistributedTiming:
    """One sharded run of the scenario at a given worker count."""

    worker_count: int
    wall_seconds: float
    realisations: int
    mean_completion_time: float
    std_completion_time: float
    #: The engine's phase breakdown for this run (``plan_seconds``,
    #: ``execute_seconds``, ``merge_seconds``, ``block_compute_seconds``,
    #: ``dispatch_overhead_seconds``) — where the wall-clock went.  Since
    #: schema 3 it also carries a nested ``attribution`` dict: the overhead
    #: ledger from stitched cross-process spans, whose wall-equivalent
    #: components (plan + wire + deserialize + compute + dispatch + idle +
    #: merge) sum to roughly the measured wall time.
    breakdown: Dict[str, object] = field(default_factory=dict)
    #: True when this worker count exceeded the machine's effective CPU
    #: budget at measurement time: the pool timeshared cores, so the wall
    #: time is an honest measurement but the *speedup* is meaningless.
    #: Skipped timings stay in the report (they still feed the
    #: merge-invariance gate) but are excluded from ``summary.speedups``.
    skipped: bool = False

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.realisations / self.wall_seconds

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["throughput"] = self.throughput
        return payload


@dataclass
class DistributedBenchmarkReport:
    """Scaling curve of the sharded runner over a process-pool fleet.

    Two verdicts ride on it: the wall-clock trajectory (informational — CI
    gates it with a *loose* throughput tolerance because runner hardware
    varies) and the merged-statistics check (hard — the merged mean/std
    must be identical at every worker count, and identical to the
    committed baseline, because sharded sampling is deterministic).
    """

    scenario: str
    backend: str
    shards: int
    shard_block: int
    realisations: int
    seed: int
    quick: bool
    timings: List[DistributedTiming] = field(default_factory=list)
    repro_version: str = __version__
    #: CPUs the benchmark process could actually run on — context for the
    #: speedup numbers (a 4-worker pool on 1 effective CPU timeshares).
    #: Summary-only: machine-dependent, so never part of the baseline
    #: configuration comparison.
    effective_cpus: int = 0

    @property
    def merge_invariant(self) -> bool:
        """Whether every worker count produced the same merged moments."""
        if not self.timings:
            return True
        first = self.timings[0]
        return all(
            t.mean_completion_time == first.mean_completion_time
            and t.std_completion_time == first.std_completion_time
            for t in self.timings
        )

    def speedup(self, worker_count: int) -> Optional[float]:
        """Wall-time ratio of the 1-worker run to ``worker_count``'s."""
        base = next((t for t in self.timings if t.worker_count == 1), None)
        other = next(
            (t for t in self.timings if t.worker_count == worker_count), None
        )
        if base is None or other is None or other.wall_seconds <= 0.0:
            return None
        return base.wall_seconds / other.wall_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": DISTRIBUTED_BENCH_SCHEMA_VERSION,
            "repro_version": self.repro_version,
            "scenario": self.scenario,
            "backend": self.backend,
            "shards": self.shards,
            "shard_block": self.shard_block,
            "realisations": self.realisations,
            "seed": self.seed,
            "quick": self.quick,
            "timings": [t.to_dict() for t in self.timings],
            "summary": {
                "merge_invariant": self.merge_invariant,
                "effective_cpus": self.effective_cpus,
                "speedups": {
                    str(t.worker_count): self.speedup(t.worker_count)
                    for t in self.timings
                    if t.worker_count != 1 and not t.skipped
                },
                "skipped_counts": [
                    t.worker_count for t in self.timings if t.skipped
                ],
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    def render(self) -> str:
        from repro.analysis.reporting import format_table
        from repro.analysis.tables import Table

        table = Table(
            ["workers", "wall (s)", "real/s", "speedup", "merged mean"],
            title=f"Sharded Monte-Carlo scaling — {self.scenario} "
            f"({self.shards} shards, block {self.shard_block})",
        )
        for timing in self.timings:
            speedup = self.speedup(timing.worker_count)
            table.add_row(
                {
                    "workers": timing.worker_count,
                    "wall (s)": timing.wall_seconds,
                    "real/s": timing.throughput,
                    "speedup": "skipped"
                    if timing.skipped
                    else ("" if speedup is None else f"{speedup:.1f}x"),
                    "merged mean": timing.mean_completion_time,
                }
            )
        lines = [format_table(table, float_format="{:.2f}")]
        for timing in self.timings:
            b = timing.breakdown
            if not b:
                continue
            lines.append(
                f"  {timing.worker_count} workers: "
                f"compute {b.get('block_compute_seconds', 0.0):.2f}s "
                f"(across slots), dispatch overhead "
                f"{b.get('dispatch_overhead_seconds', 0.0):.2f}s, "
                f"merge {b.get('merge_seconds', 0.0):.3f}s"
            )
        attribution_table = self._render_attribution()
        if attribution_table:
            lines.append(attribution_table)
        verdict = "identical" if self.merge_invariant else "DIVERGED"
        lines.append(f"merged statistics across worker counts: {verdict}")
        if self.effective_cpus:
            lines.append(
                f"effective CPUs during measurement: {self.effective_cpus} "
                f"(speedups above this worker count timeshare cores)"
            )
        return "\n".join(lines)

    #: Ledger components shown by the "why is speedup < 1" table, in
    #: display order.  Together they sum (roughly) to the wall time;
    #: ``queue_wait_seconds`` is deliberately absent — it overlaps
    #: slot-busy time and would double-count.
    _ATTRIBUTION_COLUMNS = (
        ("plan", "plan_seconds"),
        ("wire", "wire_seconds"),
        ("deser", "deserialize_seconds"),
        ("compute", "compute_seconds"),
        ("dispatch", "dispatch_seconds"),
        ("idle", "idle_seconds"),
        ("merge", "merge_seconds"),
    )

    def _render_attribution(self) -> str:
        """The overhead ledger as a table — why is speedup < linear?

        Each row is one worker count; each cell is wall-equivalent seconds
        (per-shard sums divided by the effective slot count) with its share
        of the measured wall time, so a glance shows whether the scaling
        ceiling is wire serialization, worker deserialize, dispatch
        book-keeping or plain slot idleness rather than compute.
        """
        from repro.analysis.reporting import format_table
        from repro.analysis.tables import Table

        rows = []
        for timing in self.timings:
            ledger = timing.breakdown.get("attribution")
            if not isinstance(ledger, dict) or timing.wall_seconds <= 0.0:
                continue
            row = {"workers": timing.worker_count}
            for label, key in self._ATTRIBUTION_COLUMNS:
                seconds = float(ledger.get(key, 0.0))
                share = 100.0 * seconds / timing.wall_seconds
                row[label] = f"{seconds:.2f}s {share:3.0f}%"
            rows.append(row)
        if not rows:
            return ""
        table = Table(
            ["workers"] + [label for label, _ in self._ATTRIBUTION_COLUMNS],
            title="Where the wall time went (why is speedup < linear?)",
        )
        for row in rows:
            table.add_row(row)
        return format_table(table)


def run_distributed_benchmark(
    scenario: Union[str, ScenarioSpec] = "mc-scaling",
    quick: bool = False,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    shards: Optional[int] = None,
    seed: Optional[int] = None,
    tracer=None,
) -> DistributedBenchmarkReport:
    """Time the sharded runner at several process-pool sizes.

    Shard caching is disabled (the harness measures computation) and every
    run reuses the same spec, so the merged statistics must agree exactly
    across worker counts — a free determinism gate on top of the timing
    curve.  Each run's engine phase timings land in the report as a
    dispatch/compute/merge ``breakdown`` with a nested ``attribution``
    overhead ledger; pass a :class:`repro.obs.trace.Tracer` to also keep
    the full span log (the CI bench job uploads it as an artifact).  When
    no tracer is passed one is created internally anyway — trace
    propagation is what feeds the ledger, so the ``attribution`` section
    must not depend on the caller wanting the NDJSON.
    """
    from repro.distributed.executors import ProcessShardExecutor
    from repro.distributed.runner import run_sharded_spec
    from repro.obs import trace as obs_trace

    spec = _resolve_bench_spec(scenario, quick)
    if seed is not None:
        spec = spec.with_(seed=int(seed))
    if shards is not None:
        spec = spec.with_(shards=int(shards))
    elif spec.shards < 1:
        spec = spec.with_(shards=2 * max(worker_counts))

    report = DistributedBenchmarkReport(
        scenario=spec.name,
        backend=spec.backend,
        shards=spec.shards,
        shard_block=spec.shard_block,
        realisations=spec.mc_realisations,
        seed=spec.seed,
        quick=quick,
        effective_cpus=effective_cpu_count(),
    )
    active_tracer = tracer if tracer is not None else obs_trace.Tracer()
    with active_tracer.activate():
        for count in worker_counts:
            if count < 1:
                raise ValueError(f"worker counts must be >= 1, got {count!r}")
            with obs_trace.span("bench.distributed", workers=int(count)):
                with ProcessShardExecutor(count) as executor:
                    executor.warm()  # time computation, not process start-up
                    run = run_sharded_spec(
                        spec, executor=executor, use_store=False
                    )
            breakdown: Dict[str, object] = dict(run.timings)
            breakdown["attribution"] = dict(run.attribution)
            report.timings.append(
                DistributedTiming(
                    worker_count=int(count),
                    wall_seconds=run.wall_seconds,
                    realisations=spec.mc_realisations,
                    mean_completion_time=float(run.estimate.summary.mean),
                    std_completion_time=float(run.estimate.summary.std),
                    breakdown=breakdown,
                    # Timeshared measurement: still timed (the merged
                    # statistics must agree regardless), but its speedup
                    # is meaningless and must not enter baselines as one.
                    skipped=int(count) > report.effective_cpus,
                )
            )
    _record_bench_history(report)
    return report


def _record_bench_history(report) -> None:
    """Append a report's timings to the run-history ledger (best-effort).

    The appended records land on the report as ``history_records`` so the
    CLI's ``--check-regression`` can evaluate exactly these records (their
    ids excluded from their own baselines) without re-querying by time.
    """
    try:
        from repro.obs import history

        if isinstance(report, DistributedBenchmarkReport):
            records = history.record_distributed_report(report.to_dict())
        else:
            records = history.record_backend_report(report.to_dict())
        report.history_records = records
    except Exception:
        report.history_records = []


def compare_distributed_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 10.0,
) -> List[str]:
    """Problems in ``current`` measured against a committed ``baseline``.

    Configuration fields and the merged statistics must match exactly
    (sharded sampling is deterministic — a drifted mean is a correctness
    bug, not noise); throughput may regress by at most ``tolerance``×
    (a deliberately loose gate, CI hardware being what it is).
    """
    problems: List[str] = []
    for field_name in (
        "schema_version",
        "scenario",
        "backend",
        "shards",
        "shard_block",
        "realisations",
        "seed",
        "quick",
    ):
        if current.get(field_name) != baseline.get(field_name):
            problems.append(
                f"configuration drift in {field_name!r}: baseline "
                f"{baseline.get(field_name)!r} vs current "
                f"{current.get(field_name)!r} (regenerate the baseline "
                f"when the benchmark setup changes)"
            )
    if problems:
        return problems

    baseline_timings = {
        int(t["worker_count"]): t for t in baseline.get("timings", [])
    }
    current_timings = {
        int(t["worker_count"]): t for t in current.get("timings", [])
    }
    if set(baseline_timings) != set(current_timings):
        problems.append(
            f"worker counts differ: baseline {sorted(baseline_timings)} vs "
            f"current {sorted(current_timings)}"
        )
        return problems

    for count in sorted(baseline_timings):
        base, cur = baseline_timings[count], current_timings[count]
        for stat in ("mean_completion_time", "std_completion_time"):
            b, c = float(base[stat]), float(cur[stat])
            if abs(b - c) > 1e-9 * max(1.0, abs(b)):
                problems.append(
                    f"{stat} diverged at {count} workers: baseline {b!r} vs "
                    f"current {c!r} — sharded sampling is deterministic, "
                    f"this is a correctness regression"
                )
        base_throughput = float(base["throughput"])
        cur_throughput = float(cur["throughput"])
        if cur_throughput < base_throughput / tolerance:
            problems.append(
                f"throughput at {count} workers regressed beyond "
                f"{tolerance:g}x: baseline {base_throughput:.1f} real/s vs "
                f"current {cur_throughput:.1f} real/s"
            )
    return problems


# ---------------------------------------------------------------------------
# Serialization microbenchmark: binary wire frames vs the JSON wire
# ---------------------------------------------------------------------------

#: JSON schema version of ``BENCH_serialization.json``.
SERIALIZATION_SCHEMA_VERSION = 1

#: The gates CI applies to the gate case (the protocol-2 result batch):
#: frames must be at least this much smaller than the JSON wire rendering
#: and decode at least this much faster.
DEFAULT_MIN_SIZE_RATIO = 3.0
DEFAULT_MIN_DECODE_SPEEDUP = 5.0


@dataclass
class SerializationCase:
    """One payload shape timed under both encodings.

    The JSON side is the *actual* pre-frames wire rendering
    (``Response.json``: sorted keys, ``indent=1``, trailing newline), so
    the ratios measure the real tax the frame format removes, not a
    strawman compact encoding.
    """

    label: str
    gate: bool
    json_bytes: int
    frame_bytes: int
    json_decode_seconds: float
    frame_decode_seconds: float
    json_encode_seconds: float
    frame_encode_seconds: float

    @property
    def size_ratio(self) -> float:
        return self.json_bytes / self.frame_bytes

    @property
    def decode_speedup(self) -> float:
        return self.json_decode_seconds / self.frame_decode_seconds

    @property
    def encode_speedup(self) -> float:
        return self.json_encode_seconds / self.frame_encode_seconds

    def to_dict(self) -> Dict[str, Union[str, bool, int, float]]:
        payload = asdict(self)
        payload["size_ratio"] = self.size_ratio
        payload["decode_speedup"] = self.decode_speedup
        payload["encode_speedup"] = self.encode_speedup
        return payload


@dataclass
class SerializationBenchmarkReport:
    """Machine-readable output of :func:`run_serialization_benchmark`."""

    cases: List[SerializationCase]
    rounds: int
    schema_version: int = SERIALIZATION_SCHEMA_VERSION
    repro_version: str = __version__

    @property
    def gate_case(self) -> SerializationCase:
        for case in self.cases:
            if case.gate:
                return case
        raise ValueError("report contains no gate case")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "repro_version": self.repro_version,
            "rounds": self.rounds,
            "cases": [case.to_dict() for case in self.cases],
        }

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path


def _serialization_payloads() -> List[Tuple[str, bool, Dict[str, object]]]:
    """Representative worker-wire payloads: ``(label, is_gate, payload)``.

    The gate case is the protocol-2 result batch exactly as the committed
    distributed benchmark produces it — 8 single-block work items of
    250-sample blocks posted in one ``/results`` round-trip.  The smaller
    shapes are reported for context only: their decode cost is dominated
    by fixed per-call overhead (~10 µs) that no encoding removes, so
    gating them would measure the floor, not the format.
    """
    import numpy as np

    from repro.montecarlo.statistics import RunningStatistics

    rng = np.random.default_rng(1234)

    def block(index: int, samples: int) -> Dict[str, object]:
        times = [float(t) for t in rng.normal(115.8, 38.6, samples)]
        return {
            "index": index,
            "start": index * samples,
            "stop": (index + 1) * samples,
            "policy": "LBP1",
            "completion_times": times,
            "stats": RunningStatistics.from_values(times).to_dict(),
            "wall_seconds": 0.12345678901234567,
        }

    def item(index: int, blocks: int, samples: int) -> Dict[str, object]:
        return {
            "id": f"it-{index}",
            "task": "abcd1234",
            "shard": index,
            "blocks": [
                block(8 * index + b, samples) for b in range(blocks)
            ],
            "wall_seconds": 0.5,
        }

    return [
        (
            "result-batch-8x1x250",
            True,
            {"results": [item(i, blocks=1, samples=250) for i in range(8)]},
        ),
        ("single-item-4x250", False, item(0, blocks=4, samples=250)),
        ("single-item-1x250", False, item(0, blocks=1, samples=250)),
    ]


def _interleaved_best(fn_a, arg_a, fn_b, arg_b, rounds: int) -> Tuple[float, float]:
    """Best-of-``rounds`` wall times with *interleaved* sampling.

    Timing the two sides in separate windows lets a scheduler hiccup land
    entirely on one of them and swing the ratio by 30%+ on a busy 1-CPU
    container; alternating per round makes noise hit both sides equally,
    so the minima — and therefore the ratio — are stable run to run.
    Within a round each side runs three times and keeps its fastest: the
    first repetition absorbs the cache/allocator state the *other* side
    left behind, so the minima measure each codec warm rather than the
    crossover penalty.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        for _rep in range(3):
            started = perf_counter()
            fn_a(arg_a)
            best_a = min(best_a, perf_counter() - started)
        for _rep in range(3):
            started = perf_counter()
            fn_b(arg_b)
            best_b = min(best_b, perf_counter() - started)
    return best_a, best_b


def run_serialization_benchmark(rounds: int = 120) -> SerializationBenchmarkReport:
    """Time frame vs JSON encode/decode over representative wire payloads."""
    from repro.distributed.frames import decode_frame, encode_frame

    def json_wire(payload) -> bytes:
        # Byte-for-byte the service's Response.json rendering.
        return (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()

    cases: List[SerializationCase] = []
    for label, gate, payload in _serialization_payloads():
        json_bytes = json_wire(payload)
        frame_bytes = encode_frame(payload)
        if decode_frame(frame_bytes) != payload:
            raise AssertionError(
                f"frame round-trip of case {label!r} is not identity"
            )
        json_decode, frame_decode = _interleaved_best(
            json.loads, json_bytes, decode_frame, frame_bytes, rounds
        )
        json_encode, frame_encode = _interleaved_best(
            json_wire, payload, encode_frame, payload, rounds
        )
        cases.append(
            SerializationCase(
                label=label,
                gate=gate,
                json_bytes=len(json_bytes),
                frame_bytes=len(frame_bytes),
                json_decode_seconds=json_decode,
                frame_decode_seconds=frame_decode,
                json_encode_seconds=json_encode,
                frame_encode_seconds=frame_encode,
            )
        )
    return SerializationBenchmarkReport(cases=cases, rounds=rounds)


def serialization_gate_problems(
    report: SerializationBenchmarkReport,
    min_size_ratio: float = DEFAULT_MIN_SIZE_RATIO,
    min_decode_speedup: float = DEFAULT_MIN_DECODE_SPEEDUP,
) -> List[str]:
    """Apply the frame-format gates to the report's gate case.

    Size is deterministic (pure byte counts); decode is timing and noisy,
    which is why the gate case is the large batched-result payload where
    the measured margin is widest — smaller payloads sit on fixed per-call
    overhead and are reported, not gated.
    """
    problems: List[str] = []
    try:
        case = report.gate_case
    except ValueError as error:
        return [str(error)]
    if case.size_ratio < min_size_ratio:
        problems.append(
            f"frame size ratio on {case.label} is {case.size_ratio:.2f}x "
            f"({case.json_bytes}B JSON vs {case.frame_bytes}B frame), "
            f"required >= {min_size_ratio:g}x"
        )
    if case.decode_speedup < min_decode_speedup:
        problems.append(
            f"frame decode speedup on {case.label} is "
            f"{case.decode_speedup:.2f}x "
            f"({case.json_decode_seconds * 1e6:.1f}us JSON vs "
            f"{case.frame_decode_seconds * 1e6:.1f}us frame), "
            f"required >= {min_decode_speedup:g}x"
        )
    return problems
