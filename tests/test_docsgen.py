"""The generated-documentation subsystem: catalog page + link checker."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

from repro.docsgen import (
    CATALOG_RELPATH,
    catalog_markdown,
    check_catalog,
    check_links,
    heading_anchors,
    markdown_links,
    write_catalog,
)
from repro.scenarios import resolve

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestCatalogGeneration:
    def test_output_is_deterministic(self):
        assert catalog_markdown() == catalog_markdown()

    def test_covers_registry(self):
        page = catalog_markdown()
        for name in ("fig1", "fig3", "table3", "smoke", "mc-scaling"):
            assert f"`{name}`" in page
        for family in ("delay-sweep", "failure-sweep", "multinode", "churn"):
            assert f"### `{family}`" in page
        # Content hashes anchor the docs to the specs byte-for-byte.
        assert resolve("fig3").content_hash[:12] in page
        assert resolve("fig3", quick=True).content_hash[:12] in page

    def test_write_then_check_roundtrip(self, tmp_path):
        path, changed = write_catalog(tmp_path)
        assert changed
        assert path == tmp_path / CATALOG_RELPATH
        assert check_catalog(tmp_path) is None
        _, changed_again = write_catalog(tmp_path)
        assert not changed_again

    def test_check_detects_missing_and_stale(self, tmp_path):
        assert "missing" in check_catalog(tmp_path)
        path, _ = write_catalog(tmp_path)
        path.write_text(path.read_text() + "\nmanual edit\n")
        assert "stale" in check_catalog(tmp_path)

    def test_committed_catalog_is_current(self):
        # The acceptance gate CI runs: the committed page must match the
        # registry exactly.
        assert check_catalog(REPO) is None

    def test_generation_is_numpy_free(self):
        import os

        code = (
            "import sys\n"
            "from repro.docsgen import catalog_markdown\n"
            "catalog_markdown()\n"
            "assert 'numpy' not in sys.modules\n"
            "assert 'scipy' not in sys.modules\n"
        )
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        subprocess.run([sys.executable, "-c", code], check=True, env=env)


class TestLinkChecker:
    def test_extracts_links_with_line_numbers(self):
        text = "intro\nsee [a](x.md) and [b](y.md#frag)\n[c](#local)\n"
        assert markdown_links(text) == [
            (2, "x.md"), (2, "y.md#frag"), (3, "#local"),
        ]

    def test_heading_anchors_follow_github_slugs(self):
        text = "# Result caching\n## From spec to content hash\n### `churn`\n"
        anchors = heading_anchors(text)
        assert "result-caching" in anchors
        assert "from-spec-to-content-hash" in anchors
        assert "churn" in anchors

    def test_flags_broken_file_links_and_anchors(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text(
            "# Alpha\n[ok](b.md)\n[gone](missing.md)\n"
            "[bad anchor](b.md#nope)\n[ok anchor](b.md#beta)\n"
            "[local bad](#nothing)\n[external](https://example.com/x)\n"
        )
        (docs / "b.md").write_text("# Beta\n")
        (tmp_path / "README.md").write_text("[into docs](docs/a.md)\n")
        problems = check_links(tmp_path)
        assert len(problems) == 3
        assert any("missing.md" in p for p in problems)
        assert any("b.md#nope" in p for p in problems)
        assert any("#nothing" in p for p in problems)

    def test_repo_markdown_has_no_broken_links(self):
        assert check_links(REPO) == []


class TestDocsCLI:
    def test_docs_check_and_links_pass_on_repo(self, capsys):
        from repro.__main__ import main

        assert main(["docs", "--check", "--check-links", "--root", str(REPO)]) == 0
        output = capsys.readouterr().out
        assert "up to date" in output
        assert "links OK" in output

    def test_docs_check_fails_on_stale_copy(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["docs", "--root", str(tmp_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        page = tmp_path / CATALOG_RELPATH
        page.write_text(page.read_text() + "\nstale\n")
        assert main(["docs", "--check", "--root", str(tmp_path)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_docs_check_links_fails_on_broken_link(self, tmp_path, capsys):
        from repro.__main__ import main

        (tmp_path / "README.md").write_text("[broken](nope.md)\n")
        assert main(["docs", "--check-links", "--root", str(tmp_path)]) == 1
        assert "broken link" in capsys.readouterr().err

    def test_docs_rewrite_is_idempotent(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["docs", "--root", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["docs", "--root", str(tmp_path)]) == 0
        assert "unchanged" in capsys.readouterr().out
