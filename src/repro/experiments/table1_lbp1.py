"""Table 1 — LBP-1: optimal gains and completion times for five workloads.

For every initial workload of the table the paper (i) computes the optimal
gain and sender/receiver pair from the regeneration model, (ii) reports the
model's predicted mean completion time, (iii) reports the measured mean over
20 wireless-LAN experiments using that gain, and (iv) lists the theoretical
completion time of the no-failure case for reference.

This driver reproduces all four columns: the "experiment" column comes from
the test-bed emulation, everything else from the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.completion_time import CompletionTimeSolver
from repro.core.optimize import GainOptimizationResult, optimal_gain_lbp1
from repro.core.parameters import SystemParameters
from repro.core.policies.lbp1 import LBP1
from repro.experiments import common
from repro.sim.rng import spawn_seeds
from repro.testbed.experiment import TestbedExperiment


@dataclass
class Table1Row:
    """One row of Table 1."""

    workload: Tuple[int, int]
    optimal_gain: float
    sender: int
    receiver: int
    theory_with_failure: float
    experiment_with_failure: float
    theory_no_failure: float
    paper_gain: Optional[float] = None
    paper_theory: Optional[float] = None


@dataclass
class Table1Result:
    """All rows of Table 1."""

    rows: List[Table1Row]

    def as_table(self) -> Table:
        table = Table(
            [
                "workload",
                "optimal_gain",
                "sender",
                "theory",
                "experiment",
                "no_failure_theory",
                "paper_gain",
                "paper_theory",
            ],
            title="Table 1 — LBP-1 with the model-optimal gain",
        )
        for row in self.rows:
            table.add_row(
                {
                    "workload": f"({row.workload[0]},{row.workload[1]})",
                    "optimal_gain": row.optimal_gain,
                    "sender": f"node {row.sender + 1}",
                    "theory": row.theory_with_failure,
                    "experiment": row.experiment_with_failure,
                    "no_failure_theory": row.theory_no_failure,
                    "paper_gain": row.paper_gain if row.paper_gain is not None else float("nan"),
                    "paper_theory": row.paper_theory if row.paper_theory is not None else float("nan"),
                }
            )
        return table

    def render(self) -> str:
        return format_table(self.as_table(), float_format="{:.2f}")


def run(
    params: Optional[SystemParameters] = None,
    workloads: Sequence[Tuple[int, int]] = common.TABLE_WORKLOADS,
    experiment_realisations: int = common.PAPER_EXPERIMENT_REALISATIONS_TABLE1,
    gains: Optional[Sequence[float]] = None,
    seed: int = 606,
) -> Table1Result:
    """Regenerate Table 1."""
    params = params if params is not None else common.default_parameters()
    gain_grid = np.asarray(gains if gains is not None else common.GAIN_GRID, dtype=float)
    solver = CompletionTimeSolver(params)
    nf_solver = CompletionTimeSolver(params.without_failures())
    seeds = spawn_seeds(seed, len(workloads))

    rows: List[Table1Row] = []
    for index, workload in enumerate(workloads):
        workload_t = (int(workload[0]), int(workload[1]))
        optimum: GainOptimizationResult = optimal_gain_lbp1(
            params, workload_t, gains=gain_grid, solver=solver
        )

        nf_optimum = optimal_gain_lbp1(
            params.without_failures(), workload_t, gains=gain_grid, solver=nf_solver
        )

        policy = LBP1(optimum.optimal_gain, sender=optimum.sender, receiver=optimum.receiver)
        campaign = TestbedExperiment.run_many(
            params,
            policy,
            workload_t,
            num_realisations=experiment_realisations,
            seed=seeds[index],
        )

        reference = common.PAPER_TABLE1.get(workload_t, {})
        rows.append(
            Table1Row(
                workload=workload_t,
                optimal_gain=optimum.optimal_gain,
                sender=optimum.sender,
                receiver=optimum.receiver,
                theory_with_failure=optimum.optimal_mean,
                experiment_with_failure=campaign.mean_completion_time,
                theory_no_failure=nf_optimum.optimal_mean,
                paper_gain=reference.get("gain"),
                paper_theory=reference.get("theory"),
            )
        )
    return Table1Result(rows=rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run(experiment_realisations=5).render())
