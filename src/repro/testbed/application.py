"""The application layer: randomised matrix-row multiplication tasks.

In the paper "one task is defined as the multiplication of one row by a
static matrix duplicated on all nodes", and the arithmetic precision of each
row element is drawn from an exponential distribution so that task sizes —
and therefore per-task execution times — are random (Section 3, Fig. 1).

The emulation keeps the same structure:

* :class:`MatrixWorkloadGenerator` creates tasks whose ``size`` (abstract
  work units) is exponential with mean 1;
* a node with service rate ``λ_d`` executes a task of size ``s`` in
  ``s / λ_d`` simulated seconds, so the per-task execution time is
  exponential with rate ``λ_d`` — exactly the law the paper fits in Fig. 1;
* optionally, :meth:`ApplicationLayer.execute_real` really multiplies a row
  by a static matrix (NumPy) with a row length proportional to the task
  size, which the calibration example uses to demonstrate the full
  measurement-to-model pipeline on genuine computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.task import Task
from repro.sim.distributions import Exponential


@dataclass(frozen=True)
class TaskExecution:
    """Record of one executed task."""

    task_id: int
    node: int
    size: float
    execution_time: float


class MatrixWorkloadGenerator:
    """Generates matrix-row tasks with exponentially distributed sizes.

    Parameters
    ----------
    mean_size:
        Mean abstract size of a task (the unit in which node service rates
        are expressed: a node with ``λ_d`` tasks/s processes ``λ_d`` units of
        mean-size work per second).
    base_row_length:
        Row length corresponding to a task of size 1 when materialising real
        matrix rows (only used by the real-execution path).
    """

    def __init__(self, mean_size: float = 1.0, base_row_length: int = 256) -> None:
        if mean_size <= 0:
            raise ValueError(f"mean_size must be positive, got {mean_size!r}")
        if base_row_length < 1:
            raise ValueError(f"base_row_length must be >= 1, got {base_row_length!r}")
        self.mean_size = float(mean_size)
        self.base_row_length = int(base_row_length)
        self._size_distribution = Exponential.from_mean(mean_size)

    def generate(
        self, counts: Sequence[int], rng: np.random.Generator
    ) -> Dict[int, List[Task]]:
        """Create tasks for every node according to the initial ``counts``."""
        tasks: Dict[int, List[Task]] = {}
        task_id = 0
        for node, count in enumerate(counts):
            if count < 0:
                raise ValueError("task counts must be non-negative")
            node_tasks = []
            for _ in range(int(count)):
                size = max(self._size_distribution.sample(rng), 1e-9)
                node_tasks.append(Task(task_id=task_id, origin=node, size=size))
                task_id += 1
            tasks[node] = node_tasks
        return tasks

    def row_length(self, task: Task) -> int:
        """Row length used when actually materialising the task's data."""
        return max(1, int(round(task.size * self.base_row_length)))


class ApplicationLayer:
    """Executes tasks on behalf of one emulated node.

    Parameters
    ----------
    node_index:
        Index of the node this layer runs on.
    service_rate:
        The node's processing speed ``λ_d`` in tasks (of mean size) per
        second.
    generator:
        The workload generator (defines how abstract size maps to real rows).
    matrix_size:
        Number of columns of the static matrix used by the real execution
        path.
    """

    def __init__(
        self,
        node_index: int,
        service_rate: float,
        generator: Optional[MatrixWorkloadGenerator] = None,
        matrix_size: int = 64,
    ) -> None:
        if service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {service_rate!r}")
        self.node_index = node_index
        self.service_rate = float(service_rate)
        self.generator = generator or MatrixWorkloadGenerator()
        self.matrix_size = int(matrix_size)
        self._static_matrix: Optional[np.ndarray] = None
        self.executions: List[TaskExecution] = []

    # -- simulated execution -----------------------------------------------------

    def execution_time(self, task: Task) -> float:
        """Simulated execution time of ``task`` on this node.

        A task of size ``s`` (exponential with mean ``mean_size``) takes
        ``s / (mean_size · λ_d)`` seconds, so the per-task execution time is
        exponential with rate ``λ_d`` — the behaviour measured in Fig. 1 of
        the paper.
        """
        return task.size / (self.service_rate * self.generator.mean_size)

    def record_execution(self, task: Task, execution_time: float) -> TaskExecution:
        """Store the execution record (used for calibration histograms)."""
        record = TaskExecution(
            task_id=task.task_id,
            node=self.node_index,
            size=task.size,
            execution_time=float(execution_time),
        )
        self.executions.append(record)
        return record

    @property
    def measured_times(self) -> np.ndarray:
        """All recorded per-task execution times."""
        return np.array([record.execution_time for record in self.executions])

    # -- real execution ---------------------------------------------------------------

    def _matrix(self, rng: np.random.Generator) -> np.ndarray:
        if self._static_matrix is None:
            # The static matrix is duplicated on all nodes in the paper; its
            # content is irrelevant to timing, only its shape matters.
            self._static_matrix = rng.standard_normal(
                (self.matrix_size, self.matrix_size)
            )
        return self._static_matrix

    def execute_real(self, task: Task, rng: np.random.Generator) -> np.ndarray:
        """Actually multiply a random row block by the static matrix.

        The result is returned so callers can verify the computation; the
        wall-clock duration is *not* used for simulation timing (the DES
        clock is), this path exists to exercise a genuine computation in the
        calibration example.
        """
        matrix = self._matrix(rng)
        rows = max(1, self.generator.row_length(task) // self.matrix_size)
        block = rng.standard_normal((rows, self.matrix_size))
        return block @ matrix
