"""Tests for the Resource and Store primitives."""

import pytest

from repro.sim.exceptions import SimulationError
from repro.sim.resources import Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_when_free(self, env):
        resource = Resource(env, capacity=1)
        log = []

        def user(env, resource):
            request = resource.request()
            yield request
            log.append(env.now)
            request.release()

        env.process(user(env, resource))
        env.run()
        assert log == [0.0]
        assert resource.count == 0

    def test_fifo_queueing(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def user(env, resource, name, hold):
            request = resource.request()
            yield request
            order.append((name, env.now))
            yield env.timeout(hold)
            request.release()

        env.process(user(env, resource, "a", 2.0))
        env.process(user(env, resource, "b", 1.0))
        env.process(user(env, resource, "c", 1.0))
        env.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_capacity_two_allows_two_users(self, env):
        resource = Resource(env, capacity=2)
        starts = []

        def user(env, resource):
            request = resource.request()
            yield request
            starts.append(env.now)
            yield env.timeout(1.0)
            request.release()

        for _ in range(3):
            env.process(user(env, resource))
        env.run()
        assert starts == [0.0, 0.0, 1.0]

    def test_context_manager_releases(self, env):
        resource = Resource(env, capacity=1)

        def user(env, resource):
            with resource.request() as request:
                yield request
                yield env.timeout(1.0)
            return resource.count

        process = env.process(user(env, resource))
        env.run()
        assert process.value == 0

    def test_queue_length_reported(self, env):
        resource = Resource(env, capacity=1)

        def holder(env, resource):
            request = resource.request()
            yield request
            yield env.timeout(5.0)
            request.release()

        def waiter(env, resource):
            request = resource.request()
            yield request
            request.release()

        env.process(holder(env, resource))
        env.process(waiter(env, resource))
        env.run(until=1.0)
        assert resource.queue_length == 1
        env.run()
        assert resource.queue_length == 0

    def test_release_of_unknown_request_raises(self, env):
        r1 = Resource(env, capacity=1)
        r2 = Resource(env, capacity=1)
        request = r1.request()
        with pytest.raises(SimulationError):
            r2._on_release(request)

    def test_cancel_queued_request(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert resource.queue_length == 1
        second.release()  # cancel while still waiting
        assert resource.queue_length == 0
        first.release()
        assert resource.count == 0


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("item")

        def getter(env, store):
            item = yield store.get()
            return item

        process = env.process(getter(env, store))
        env.run()
        assert process.value == "item"

    def test_get_waits_for_put(self, env):
        store = Store(env)

        def getter(env, store):
            item = yield store.get()
            return (item, env.now)

        def putter(env, store):
            yield env.timeout(2.0)
            store.put("late")

        get_proc = env.process(getter(env, store))
        env.process(putter(env, store))
        env.run()
        assert get_proc.value == ("late", 2.0)

    def test_fifo_order(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        results = []

        def getter(env, store):
            results.append((yield store.get()))
            results.append((yield store.get()))

        env.process(getter(env, store))
        env.run()
        assert results == [1, 2]

    def test_len_and_items(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.items == ("a", "b")
