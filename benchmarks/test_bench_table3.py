"""Benchmark: regenerate Table 3 (LBP-1 vs LBP-2 across per-task delays)."""

import pytest

from repro.experiments import common
from repro.experiments.table3_delay_crossover import run as run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_delay_crossover(benchmark, bench_once):
    result = bench_once(benchmark, run_table3, mc_realisations=300, seed=808)
    print()
    print(result.render())

    rows = result.sweep.as_rows()
    by_delay = {row["delay_per_task"]: row for row in rows}

    # Shape checks against the paper's Table 3:
    #  * at 0.01 s/task LBP-2 is at least as good as LBP-1;
    #  * at 3 s/task LBP-1 is clearly better (and at 2 s/task at least
    #    competitive within Monte-Carlo noise);
    #  * the ranking crosses over somewhere at or below 2 s/task (the paper
    #    places the flip between 0.5 s and 1 s);
    #  * both columns grow with the delay.
    assert by_delay[0.01]["lbp2"] <= by_delay[0.01]["lbp1"] + 1.5
    assert by_delay[2.0]["lbp1"] < by_delay[2.0]["lbp2"] + 2.0
    assert by_delay[3.0]["lbp1"] < by_delay[3.0]["lbp2"]
    assert result.crossover_delay is not None
    assert result.crossover_delay <= 2.0 + 1e-9
    assert by_delay[3.0]["lbp1"] > by_delay[0.01]["lbp1"]
    assert by_delay[3.0]["lbp2"] > by_delay[0.01]["lbp2"]
