"""Tests for the n-node generalisation of the completion-time analysis."""

import numpy as np
import pytest

from repro.core.completion_time import CompletionTimeSolver
from repro.core.multinode import (
    build_multinode_chain,
    completion_time_cdf_multinode,
    expected_completion_time_multinode,
)
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.core.policies import LBP1, LBP2, NoBalancing, Transfer


class TestConsistencyWithTwoNodeSolver:
    @pytest.mark.parametrize("workload,gain", [((12, 8), 0.5), ((10, 0), 0.3)])
    def test_matches_regeneration_solver(self, paper_params, workload, gain):
        policy = LBP1(gain, sender=0, receiver=1)
        multi = expected_completion_time_multinode(paper_params, workload, policy=policy)
        two_node = CompletionTimeSolver(paper_params).lbp1(
            workload, gain, sender=0, receiver=1
        )
        assert multi.mean == pytest.approx(two_node.mean, rel=1e-8)

    def test_no_balancing_matches(self, paper_params):
        multi = expected_completion_time_multinode(
            paper_params, (9, 7), policy=NoBalancing()
        )
        direct = CompletionTimeSolver(paper_params).mean_completion_time((9, 7))
        assert multi.mean == pytest.approx(direct, rel=1e-8)


class TestThreeNodeBehaviour:
    def test_balancing_beats_hoarding(self, three_node_params):
        hoard = expected_completion_time_multinode(
            three_node_params, (24, 2, 2), policy=NoBalancing()
        )
        spread = expected_completion_time_multinode(
            three_node_params, (24, 2, 2), policy=LBP1(0.6)
        )
        assert spread.mean < hoard.mean

    def test_explicit_transfers_accepted(self, three_node_params):
        prediction = expected_completion_time_multinode(
            three_node_params,
            (20, 0, 0),
            transfers=[Transfer(0, 1, 6), Transfer(0, 2, 4)],
        )
        assert prediction.mean > 0
        assert sum(t.num_tasks for t in prediction.transfers) == 10

    def test_transfers_capped_by_source_load(self, three_node_params):
        prediction = expected_completion_time_multinode(
            three_node_params, (5, 0, 0), transfers=[Transfer(0, 1, 50)]
        )
        assert sum(t.num_tasks for t in prediction.transfers) == 5

    def test_policy_and_transfers_mutually_exclusive(self, three_node_params):
        with pytest.raises(ValueError):
            expected_completion_time_multinode(
                three_node_params, (5, 5, 5), policy=NoBalancing(), transfers=[]
            )
        with pytest.raises(ValueError):
            expected_completion_time_multinode(three_node_params, (5, 5, 5))

    def test_state_count_reported(self, three_node_params):
        prediction = expected_completion_time_multinode(
            three_node_params, (4, 3, 2), policy=NoBalancing()
        )
        # 2^3 work states are reachable, loads bounded by (4,3,2).
        assert prediction.num_states <= 8 * 5 * 4 * 3
        assert prediction.num_states > 0

    def test_more_initial_batches_grow_the_chain(self, three_node_params):
        one = build_multinode_chain(
            three_node_params, (10, 0, 0), transfers=[Transfer(0, 1, 3)]
        )
        two = build_multinode_chain(
            three_node_params,
            (10, 0, 0),
            transfers=[Transfer(0, 1, 3), Transfer(0, 2, 3)],
        )
        assert two.chain.num_states > one.chain.num_states


class TestMultinodeCDF:
    def test_cdf_monotone(self, three_node_params):
        times = np.linspace(0, 120, 50)
        cdf = completion_time_cdf_multinode(
            three_node_params, (6, 3, 3), times, policy=NoBalancing()
        )
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] > 0.9

    def test_cdf_mean_consistent_with_expectation(self, three_node_params):
        times = np.linspace(0, 600, 1500)
        cdf = completion_time_cdf_multinode(
            three_node_params, (5, 2, 2), times, policy=NoBalancing()
        )
        mean_from_cdf = np.trapezoid(1.0 - cdf, times)
        exact = expected_completion_time_multinode(
            three_node_params, (5, 2, 2), policy=NoBalancing()
        ).mean
        assert mean_from_cdf == pytest.approx(exact, rel=5e-3)

    def test_requires_policy_or_transfers(self, three_node_params):
        with pytest.raises(ValueError):
            completion_time_cdf_multinode(three_node_params, (2, 2, 2), [1.0])


class TestZeroDelayGuard:
    def test_instantaneous_batches_rejected_with_clear_error(self):
        params = SystemParameters(
            nodes=(NodeParameters(1.0), NodeParameters(1.0), NodeParameters(1.0)),
            delay=TransferDelayModel(0.0),
        )
        with pytest.raises(ValueError):
            build_multinode_chain(params, (9, 0, 0), transfers=[Transfer(0, 1, 3)])
