"""Fig. 4 — queue-length trajectories under LBP-1 and LBP-2.

The paper shows one experimental realisation of both nodes' queues for each
policy, pointing out (i) the long flat segments where a node is down and its
queue frozen, and (ii) the downward/upward jumps at failure instants under
LBP-2, caused by the compensation transfers.  This driver produces the same
trajectories from traced simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.cluster.system import DistributedSystem, SimulationResult
from repro.core.parameters import SystemParameters
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2
from repro.experiments import common


@dataclass
class Fig4Result:
    """Traced realisations of LBP-1 and LBP-2 on the same workload."""

    lbp1_result: SimulationResult
    lbp2_result: SimulationResult
    workload: tuple

    def queue_series(self, policy: str, node: int) -> tuple:
        """``(times, queue lengths)`` for one curve of the figure."""
        result = self.lbp1_result if policy.lower() in ("lbp1", "lbp-1") else self.lbp2_result
        assert result.trace is not None
        return result.trace.queues[node].as_series()

    def sampled_table(self, num_points: int = 30) -> Table:
        """All four curves sampled on a common regular time grid."""
        horizon = max(self.lbp1_result.completion_time, self.lbp2_result.completion_time)
        grid = np.linspace(0.0, horizon, num_points)
        table = Table(
            ["time", "lbp1_node1", "lbp1_node2", "lbp2_node1", "lbp2_node2"],
            title=f"Fig. 4 — queue trajectories, workload {self.workload}",
        )
        assert self.lbp1_result.trace is not None and self.lbp2_result.trace is not None
        series = {
            "lbp1_node1": self.lbp1_result.trace.queues[0],
            "lbp1_node2": self.lbp1_result.trace.queues[1],
            "lbp2_node1": self.lbp2_result.trace.queues[0],
            "lbp2_node2": self.lbp2_result.trace.queues[1],
        }
        for t in grid:
            row = {"time": float(t)}
            for name, trace in series.items():
                values = trace.values
                times = trace.times
                if t >= times[0]:
                    row[name] = float(trace.value_at(min(t, times[-1])))
                else:
                    row[name] = float(values[0])
            table.add_row(row)
        return table

    def flat_segment_durations(self) -> Dict[str, float]:
        """Longest flat (frozen-queue) segment per curve — the recovery plateaus."""
        assert self.lbp1_result.trace is not None and self.lbp2_result.trace is not None
        return {
            "lbp1_node1": self.lbp1_result.trace.queues[0].longest_flat_segment(),
            "lbp1_node2": self.lbp1_result.trace.queues[1].longest_flat_segment(),
            "lbp2_node1": self.lbp2_result.trace.queues[0].longest_flat_segment(),
            "lbp2_node2": self.lbp2_result.trace.queues[1].longest_flat_segment(),
        }

    def render(self, num_points: int = 30) -> str:
        """Plain-text rendering of the sampled trajectories."""
        lines = [format_table(self.sampled_table(num_points), float_format="{:.1f}"), ""]
        lines.append(
            "completion times: "
            f"LBP-1 {self.lbp1_result.completion_time:.1f} s, "
            f"LBP-2 {self.lbp2_result.completion_time:.1f} s"
        )
        lines.append(
            "LBP-2 compensation transfers: "
            f"{sum(1 for r in self.lbp2_result.transfer_records if r.reason == 'failure-compensation')}"
        )
        return "\n".join(lines)


def run(
    params: Optional[SystemParameters] = None,
    workload: Sequence[int] = common.PRIMARY_WORKLOAD,
    lbp1_gain: float = common.PAPER_FIG3_OPTIMAL_GAIN_FAILURE,
    lbp2_gain: float = 1.0,
    seed: int = 404,
) -> Fig4Result:
    """Produce one traced realisation of each policy (the two panels of Fig. 4)."""
    params = params if params is not None else common.default_parameters()
    workload_t = tuple(int(m) for m in workload)

    lbp1_system = DistributedSystem(
        params,
        LBP1(lbp1_gain, sender=0, receiver=1),
        workload_t,
        seed=seed,
        record_trace=True,
    )
    lbp1_result = lbp1_system.run()

    lbp2_system = DistributedSystem(
        params, LBP2(lbp2_gain), workload_t, seed=seed, record_trace=True
    )
    lbp2_result = lbp2_system.run()

    return Fig4Result(
        lbp1_result=lbp1_result, lbp2_result=lbp2_result, workload=workload_t
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().render())
