"""Wire-format compatibility matrix: frame-speaking and JSON-only peers
in every pairing, against a live in-process results service.

The negotiation contract (mirroring the claim-protocol discipline):

* the client *advertises* frames via ``Accept`` but only upgrades its own
  request bodies after the board has answered in frames once;
* the board answers in frames only when it is frame-enabled *and* the
  request advertised or spoke frames;
* therefore any JSON-only peer — old worker, old board, or an operator
  pinning ``--wire json`` — keeps the whole conversation in JSON, and the
  computed statistics are identical either way.
"""

from __future__ import annotations

import threading

import pytest

from repro.distributed.worker import run_worker
from repro.service.client import ServiceClient


def _quiet(*args, **kwargs):
    pass


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _start_worker(url: str, name: str, wire: str) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker,
        args=(url,),
        kwargs=dict(name=name, max_idle=60, wire=wire, log=_quiet),
        daemon=True,
    )
    thread.start()
    return thread


def _run_smoke(service, wire: str) -> float:
    client = ServiceClient(service.url, timeout=30.0)
    _start_worker(service.url, f"w-{wire}", wire)
    job = client.submit(scenario="smoke", shards=2, executor="workers")
    view = client.wait(job.id, timeout=120)
    assert view.state == "done"
    fetched = client.result(view.content_hashes[0])
    return fetched.scalars["mean_completion_time"]


class TestNegotiation:
    def test_auto_client_upgrades_against_a_frame_board(self, background_service):
        with background_service() as service:
            client = ServiceClient(service.url, timeout=30.0, wire="auto")
            worker_id = client.register_worker("nego-auto")
            assert not client._peer_speaks_frames
            claim = client.claim_work_batch(worker_id, batch=2, token="t-1")
            # The board answered the advertised Accept in frames.
            assert client._peer_speaks_frames
            assert claim["items"] == []
            # Subsequent request *bodies* now travel as frames too.
            assert client.claim_work_batch(worker_id, batch=2, token="t-2") == claim

    def test_json_pinned_client_never_upgrades(self, background_service):
        with background_service() as service:
            client = ServiceClient(service.url, timeout=30.0, wire="json")
            worker_id = client.register_worker("nego-json")
            assert client.claim_work_batch(worker_id)["items"] == []
            assert not client._peer_speaks_frames

    def test_auto_client_against_a_json_only_board(self, background_service):
        """An old board ignores the Accept header: the client keeps
        speaking JSON forever and everything still works."""
        with background_service(frame_wire=False) as service:
            client = ServiceClient(service.url, timeout=30.0, wire="auto")
            worker_id = client.register_worker("nego-old-board")
            assert client.claim_work_batch(worker_id)["items"] == []
            assert not client._peer_speaks_frames

    def test_invalid_wire_mode_is_rejected(self):
        with pytest.raises(ValueError, match="wire"):
            ServiceClient("http://127.0.0.1:1", wire="carrier-pigeon")

    def test_board_rejects_a_torn_frame_body(self, background_service):
        from repro.distributed.frames import encode_frame

        with background_service() as service:
            client = ServiceClient(service.url, timeout=30.0)
            worker_id = client.register_worker("torn")
            frame = encode_frame({"token": "x", "batch": 1})
            status, _headers, _raw = client._exchange(
                "POST",
                f"/v1/workers/{worker_id}/claim",
                frame[: len(frame) - 4],
                headers={"Content-Type": "application/x-repro-frame"},
            )
            assert status == 400


class TestWireMatrix:
    """JSON-only worker x frame board and the reverse compute the same
    statistics as a frame-frame fleet."""

    def test_json_worker_against_frame_board(self, background_service):
        with background_service() as frame_board:
            frame_mean = _run_smoke(frame_board, wire="auto")
        with background_service() as frame_board:
            json_worker_mean = _run_smoke(frame_board, wire="json")
        assert json_worker_mean == frame_mean

    def test_frame_worker_against_json_board(self, background_service):
        with background_service() as frame_board:
            frame_mean = _run_smoke(frame_board, wire="auto")
        with background_service(frame_wire=False) as json_board:
            json_board_mean = _run_smoke(json_board, wire="auto")
        assert json_board_mean == frame_mean
