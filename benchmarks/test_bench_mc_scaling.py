"""Ablation/scaling: Monte-Carlo realisation counts and parallel execution."""

import pytest

from repro.core.parameters import paper_parameters
from repro.core.policies import LBP2
from repro.montecarlo.parallel import run_monte_carlo_parallel
from repro.montecarlo.runner import run_monte_carlo

WORKLOAD = (100, 60)


@pytest.mark.benchmark(group="mc-scaling")
@pytest.mark.parametrize("realisations", [100, 500])
def test_serial_monte_carlo(benchmark, bench_once, realisations):
    estimate = bench_once(
        benchmark,
        run_monte_carlo,
        paper_parameters(),
        LBP2(1.0),
        WORKLOAD,
        realisations,
        seed=111,
    )
    assert estimate.num_realisations == realisations
    assert estimate.mean_completion_time == pytest.approx(112.43, rel=0.08)


@pytest.mark.benchmark(group="mc-scaling")
def test_parallel_monte_carlo(benchmark, bench_once):
    estimate = bench_once(
        benchmark,
        run_monte_carlo_parallel,
        paper_parameters(),
        LBP2(1.0),
        WORKLOAD,
        500,
        seed=111,
        max_workers=4,
    )
    assert estimate.num_realisations == 500
    assert estimate.mean_completion_time == pytest.approx(112.43, rel=0.08)
