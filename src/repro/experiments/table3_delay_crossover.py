"""Table 3 — LBP-1 vs LBP-2 across per-task network delays.

The paper's headline comparison: for per-task delays of 0.01 and 0.5 s the
reactive LBP-2 yields the smaller mean completion time, but once the delay
reaches about 1 s per task the ranking crosses over and the preemptive LBP-1
wins, because LBP-2's transfers at every failure instant now waste time
comparable to the recovery periods they compensate for.

This driver reproduces the table for the (100, 60) workload: LBP-1's column
is the model-optimal value (re-optimising the gain at every delay, as the
paper does), LBP-2's column is a Monte-Carlo estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.parameters import SystemParameters
from repro.experiments import common
from repro.montecarlo.sweep import DelaySweepResult, delay_sweep


@dataclass
class Table3Result:
    """All rows of Table 3 plus the crossover summary."""

    sweep: DelaySweepResult

    @property
    def crossover_delay(self) -> Optional[float]:
        """First swept delay at which LBP-1 beats LBP-2."""
        return self.sweep.crossover_delay

    def as_table(self) -> Table:
        table = Table(
            ["delay_per_task", "lbp1", "lbp2", "lbp1_theory", "paper_lbp1", "paper_lbp2"],
            title="Table 3 — LBP-1 vs LBP-2 across per-task delays",
        )
        for row in self.sweep.as_rows():
            delay = row["delay_per_task"]
            reference = common.PAPER_TABLE3.get(delay, {})
            table.add_row(
                {
                    "delay_per_task": delay,
                    "lbp1": row["lbp1"],
                    "lbp2": row["lbp2"],
                    "lbp1_theory": row.get("lbp1_theory", float("nan")),
                    "paper_lbp1": reference.get("lbp1", float("nan")),
                    "paper_lbp2": reference.get("lbp2", float("nan")),
                }
            )
        return table

    def render(self) -> str:
        lines = [format_table(self.as_table(), float_format="{:.2f}"), ""]
        crossover = self.crossover_delay
        if crossover is None:
            lines.append("LBP-2 won at every swept delay (no crossover observed).")
        else:
            lines.append(f"LBP-1 first wins at a per-task delay of {crossover:g} s.")
        return "\n".join(lines)


def run(
    params: Optional[SystemParameters] = None,
    workload: Sequence[int] = common.PRIMARY_WORKLOAD,
    delays: Sequence[float] = common.TABLE3_DELAYS,
    mc_realisations: int = 300,
    lbp2_gain: Optional[float] = None,
    seed: int = 808,
    workers: Optional[int] = None,
    executor=None,
    store=None,
    refresh: bool = False,
) -> Table3Result:
    """Regenerate Table 3.

    ``lbp2_gain=None`` (the default) re-optimises LBP-2's initial gain at
    every delay with the no-failure model, mirroring the paper's procedure;
    pass an explicit value to pin it instead.  ``workers``/``executor``
    parallelise the Monte-Carlo estimates through the unified engine
    (bit-identical results) and ``store`` adds block-level caching.
    """
    params = params if params is not None else common.default_parameters()
    sweep = delay_sweep(
        params,
        tuple(int(m) for m in workload),
        delays_per_task=delays,
        lbp2_gain=lbp2_gain,
        num_realisations=mc_realisations,
        seed=seed,
        workers=workers,
        executor=executor,
        store=store,
        refresh=refresh,
    )
    return Table3Result(sweep=sweep)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run(mc_realisations=100).render())
