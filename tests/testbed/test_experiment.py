"""Tests for the end-to-end test-bed experiment orchestration."""

import numpy as np
import pytest

from repro.core.completion_time import CompletionTimeSolver
from repro.core.policies import LBP1, LBP2, NoBalancing
from repro.testbed.experiment import TestbedCampaign, TestbedConfig, TestbedExperiment


class TestTestbedConfig:
    def test_defaults_valid(self):
        config = TestbedConfig()
        assert config.state_delay_mean >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TestbedConfig(state_loss_probability=1.5)
        with pytest.raises(ValueError):
            TestbedConfig(per_transfer_overhead=-1.0)
        with pytest.raises(ValueError):
            TestbedConfig(sync_wait=-0.1)
        with pytest.raises(ValueError):
            TestbedConfig(mean_task_size=0.0)


class TestSingleExperiment:
    def test_completes_all_tasks(self, fast_params):
        experiment = TestbedExperiment(fast_params, NoBalancing(), (15, 10), seed=0)
        result = experiment.run()
        assert sum(result.tasks_completed_per_node) == 25
        assert result.completion_time > 0
        assert result.policy_name == "no-balancing"

    def test_workload_mismatch_rejected(self, fast_params):
        with pytest.raises(ValueError):
            TestbedExperiment(fast_params, NoBalancing(), (5, 5, 5), seed=0)

    def test_empty_workload(self, fast_params):
        experiment = TestbedExperiment(fast_params, NoBalancing(), (0, 0), seed=0)
        assert experiment.run().completion_time == 0.0

    def test_reproducible(self, fast_params):
        a = TestbedExperiment(fast_params, LBP1(0.4), (20, 10), seed=4).run()
        b = TestbedExperiment(fast_params, LBP1(0.4), (20, 10), seed=4).run()
        assert a.completion_time == b.completion_time

    def test_message_traffic_recorded(self, fast_params):
        experiment = TestbedExperiment(
            fast_params, LBP1(0.5, sender=0, receiver=1), (20, 0), seed=1
        )
        result = experiment.run()
        assert result.message_log.state_messages_sent > 0
        assert result.message_log.data_messages_sent == 1
        assert result.message_log.data_tasks_sent == 10

    def test_execution_times_collected_per_node(self, fast_params):
        experiment = TestbedExperiment(fast_params, NoBalancing(), (8, 5), seed=2)
        result = experiment.run()
        assert len(result.execution_times_per_node[0]) == 8
        assert len(result.execution_times_per_node[1]) == 5

    def test_horizon_guard(self, fast_params):
        experiment = TestbedExperiment(fast_params, NoBalancing(), (500, 500), seed=0)
        with pytest.raises(RuntimeError):
            experiment.run(horizon=0.001)


class TestCampaigns:
    def test_run_many_aggregates(self, fast_params):
        campaign = TestbedExperiment.run_many(
            fast_params, LBP1(0.5), (20, 5), num_realisations=5, seed=1
        )
        assert isinstance(campaign, TestbedCampaign)
        assert len(campaign.results) == 5
        assert len(campaign.completion_times) == 5
        assert campaign.mean_completion_time == pytest.approx(
            campaign.completion_times.mean()
        )

    def test_run_many_validation(self, fast_params):
        with pytest.raises(ValueError):
            TestbedExperiment.run_many(fast_params, NoBalancing(), (5, 5), 0)

    def test_realisations_differ(self, fast_params):
        campaign = TestbedExperiment.run_many(
            fast_params, NoBalancing(), (20, 20), num_realisations=6, seed=2
        )
        assert len(np.unique(campaign.completion_times)) > 1


class TestAgreementWithModel:
    def test_emulated_experiment_tracks_analytical_prediction(self, paper_params):
        """The 'Exp.' column must land near the model, as in the paper's Table 1."""
        solver = CompletionTimeSolver(paper_params)
        predicted = solver.lbp1((100, 60), 0.35, sender=0, receiver=1).mean
        campaign = TestbedExperiment.run_many(
            paper_params,
            LBP1(0.35, sender=0, receiver=1),
            (100, 60),
            num_realisations=15,
            seed=6,
        )
        assert campaign.mean_completion_time == pytest.approx(predicted, rel=0.15)
