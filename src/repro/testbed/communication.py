"""The communication layer: UDP state exchange and TCP data transfer.

The paper's communication layer (Section 3) uses

* **UDP** for small state-information packets (20–34 bytes: current queue
  size, computational power, policy-specific fields) exchanged among the
  nodes, and
* **TCP** for the actual task data, whose transfer time depends on the
  number of tasks and the random realisation of their sizes (Fig. 2).

The emulation reproduces both paths on a single shared *wireless medium*:
state messages are small, fast and occasionally lost; data transfers hold
the medium for a load-dependent random time (which also creates contention
between simultaneous transfers, something the clean Monte-Carlo model of
:mod:`repro.cluster` ignores — one of the reasons experimental and MC
columns differ slightly in the paper's tables and here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.network import sample_batch_delay
from repro.cluster.task import Task
from repro.core.parameters import SystemParameters
from repro.sim.engine import Environment
from repro.sim.resources import Resource


@dataclass(frozen=True)
class StateInfoMessage:
    """A UDP state-information packet (20–34 bytes in the paper)."""

    sender: int
    queue_size: int
    service_rate: float
    timestamp: float
    sequence: int

    @property
    def size_bytes(self) -> int:
        """Wire size of the packet, kept inside the paper's 20–34 byte range."""
        return 20 + 2 * 7  # header + two 7-byte fields (queue size, speed)


@dataclass(frozen=True)
class DataMessage:
    """A TCP data transfer carrying a batch of tasks."""

    sender: int
    receiver: int
    num_tasks: int
    total_size: float
    reason: str = "initial"


@dataclass
class MessageLog:
    """Counters describing the traffic generated during one experiment."""

    state_messages_sent: int = 0
    state_messages_lost: int = 0
    data_messages_sent: int = 0
    data_tasks_sent: int = 0
    data_transfer_time: float = 0.0


class WirelessChannel:
    """A single shared 802.11-style medium.

    Data transfers acquire the medium exclusively; state packets are assumed
    small enough not to contend (their delay is drawn independently), which
    matches the relative packet sizes in the paper.
    """

    def __init__(
        self,
        env: Environment,
        params: SystemParameters,
        rng: np.random.Generator,
        state_delay_mean: float = 0.002,
        state_loss_probability: float = 0.005,
        per_transfer_overhead: float = 0.0,
    ) -> None:
        if not 0.0 <= state_loss_probability < 1.0:
            raise ValueError("state_loss_probability must lie in [0, 1)")
        if state_delay_mean < 0 or per_transfer_overhead < 0:
            raise ValueError("delays must be non-negative")
        self.env = env
        self.params = params
        self.rng = rng
        self.state_delay_mean = float(state_delay_mean)
        self.state_loss_probability = float(state_loss_probability)
        self.per_transfer_overhead = float(per_transfer_overhead)
        self.medium = Resource(env, capacity=1)
        self.log = MessageLog()

    # -- UDP path -------------------------------------------------------------

    def send_state(
        self,
        message: StateInfoMessage,
        destination: int,
        deliver: Callable[[int, StateInfoMessage], None],
    ) -> None:
        """Send a state packet; it may be lost and arrives after a small delay."""
        self.log.state_messages_sent += 1
        if self.rng.random() < self.state_loss_probability:
            self.log.state_messages_lost += 1
            return
        delay = float(self.rng.exponential(self.state_delay_mean)) if self.state_delay_mean > 0 else 0.0
        self.env.process(self._deliver_state(delay, destination, message, deliver))

    def _deliver_state(self, delay, destination, message, deliver):
        yield self.env.timeout(delay)
        deliver(destination, message)

    # -- TCP path --------------------------------------------------------------

    def send_data(
        self,
        source: int,
        destination: int,
        tasks: Sequence[Task],
        deliver: Callable[[int, List[Task]], None],
        reason: str = "initial",
    ) -> DataMessage:
        """Transfer a batch of tasks, holding the shared medium while sending."""
        batch = list(tasks)
        if not batch:
            raise ValueError("cannot send an empty data message")
        message = DataMessage(
            sender=source,
            receiver=destination,
            num_tasks=len(batch),
            total_size=float(sum(task.size for task in batch)),
            reason=reason,
        )
        for task in batch:
            task.mark_in_transit()
        self.log.data_messages_sent += 1
        self.log.data_tasks_sent += len(batch)
        self.env.process(self._send_data(message, batch, deliver))
        return message

    def _send_data(self, message: DataMessage, batch: List[Task], deliver):
        request = self.medium.request()
        yield request
        try:
            model = self.params.delay_model(message.sender, message.receiver)
            delay = self.per_transfer_overhead + sample_batch_delay(
                model, message.num_tasks, self.rng
            )
            self.log.data_transfer_time += delay
            yield self.env.timeout(delay)
        finally:
            request.release()
        deliver(message.receiver, batch)


class CommunicationLayer:
    """Per-node communication endpoint.

    Keeps the node's view of its peers' state up to date (from received UDP
    packets) and provides the send primitives used by the balancer layer.
    """

    def __init__(
        self,
        env: Environment,
        node_index: int,
        channel: WirelessChannel,
        num_nodes: int,
    ) -> None:
        self.env = env
        self.node_index = node_index
        self.channel = channel
        self.num_nodes = num_nodes
        self._sequence = 0
        #: Last received state message per peer (includes self-reports).
        self.peer_state: Dict[int, StateInfoMessage] = {}
        self._deliver_data: Optional[Callable[[int, List[Task]], None]] = None
        self._dispatch_state: Optional[Callable[[int, StateInfoMessage], None]] = None

    def bind_data_handler(self, handler: Callable[[int, List[Task]], None]) -> None:
        """Register the dispatcher ``f(destination, tasks)`` for delivered batches."""
        self._deliver_data = handler

    def bind_state_dispatcher(
        self, dispatcher: Callable[[int, "StateInfoMessage"], None]
    ) -> None:
        """Register the dispatcher ``f(destination, message)`` for state packets."""
        self._dispatch_state = dispatcher

    # -- state information -----------------------------------------------------------

    def broadcast_state(self, queue_size: int, service_rate: float) -> StateInfoMessage:
        """Send this node's state to every peer (and record it locally)."""
        if self._dispatch_state is None:
            raise RuntimeError(
                "bind_state_dispatcher must be called before broadcasting state"
            )
        self._sequence += 1
        message = StateInfoMessage(
            sender=self.node_index,
            queue_size=int(queue_size),
            service_rate=float(service_rate),
            timestamp=self.env.now,
            sequence=self._sequence,
        )
        self.peer_state[self.node_index] = message
        for peer in range(self.num_nodes):
            if peer == self.node_index:
                continue
            self.channel.send_state(message, peer, self._dispatch_state)
        return message

    def receive_state(self, message: StateInfoMessage) -> None:
        """Store a state packet received from a peer (newest sequence wins)."""
        current = self.peer_state.get(message.sender)
        if current is None or message.sequence >= current.sequence:
            self.peer_state[message.sender] = message

    def known_queue_sizes(self, default: int = 0) -> List[int]:
        """The queue sizes this node currently believes its peers have."""
        return [
            self.peer_state[peer].queue_size if peer in self.peer_state else default
            for peer in range(self.num_nodes)
        ]

    def has_full_view(self) -> bool:
        """Whether state information from every peer has been received."""
        return len(self.peer_state) == self.num_nodes

    # -- data ----------------------------------------------------------------------------

    def send_tasks(
        self, destination: int, tasks: Sequence[Task], reason: str = "initial"
    ) -> DataMessage:
        """Ship a batch of tasks to ``destination`` over the TCP-like path."""
        if self._deliver_data is None:
            raise RuntimeError("bind_data_handler must be called before sending tasks")
        return self.channel.send_data(
            self.node_index, destination, tasks, self._deliver_data, reason=reason
        )
