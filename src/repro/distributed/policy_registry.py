"""Named, wire-safe policy constructors for ad-hoc work items.

Ad-hoc engine runs carry live policy *instances*, which historically
meant they could only move by reference (inline executor) or by pickle
(process pools) — never across a JSON transport such as the remote
worker board.  This registry closes that gap without reintroducing
pickle on the wire: a policy travels as a tiny *reference document*

``{"name": "<registered builder>", "kwargs": {...json-safe...}}``

and the receiving worker rebuilds the instance by calling the named
builder with ``(params, workload, **kwargs)``.  Only code already
present (and registered) on the worker can run — the wire carries data,
never behaviour.

Two ways a policy becomes wire-safe:

* **built-ins** need nothing: :func:`policy_wire_ref` folds any built-in
  policy instance through
  :func:`~repro.distributed.work.policy_spec_of` into the pre-registered
  ``"spec"`` builder (``PolicySpec(**kwargs).build(params, workload)``);
* **customs** register a builder with :func:`register_policy` and tag
  instances with :func:`wire_ref` (stored as ``__wire_ref__``), e.g.::

      @register_policy("my-threshold")
      def _build(params, workload, *, threshold):
          return MyThresholdPolicy(threshold)

      policy = MyThresholdPolicy(0.25)
      policy.__wire_ref__ = wire_ref("my-threshold", threshold=0.25)

Unregistered policies simply yield no reference (``policy_wire_ref``
returns ``None``) and the engine falls back to its JSON-transport
refusal, exactly as before.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple

#: Builder signature: ``builder(params, workload, **kwargs) -> policy``.
PolicyBuilder = Callable[..., Any]

_BUILDERS: Dict[str, PolicyBuilder] = {}


def register_policy(
    name: str, builder: Optional[PolicyBuilder] = None
) -> Callable[[PolicyBuilder], PolicyBuilder]:
    """Register ``builder`` under ``name``; usable as a decorator.

    Re-registering a name replaces the previous builder (latest wins),
    which keeps interactive sessions and test reloads painless.
    """

    def _register(fn: PolicyBuilder) -> PolicyBuilder:
        if not callable(fn):
            raise TypeError(f"policy builder for {name!r} must be callable")
        _BUILDERS[str(name)] = fn
        return fn

    if builder is None:
        return _register
    return _register(builder)


def registered_policies() -> Tuple[str, ...]:
    """The sorted names currently registered (for diagnostics)."""
    return tuple(sorted(_BUILDERS))


def wire_ref(name: str, **kwargs: Any) -> Dict[str, Any]:
    """A validated reference document for a registered builder.

    Attach the result to a policy instance as ``__wire_ref__`` so
    :func:`policy_wire_ref` can ship it.  Raises immediately on an
    unregistered name or non-JSON kwargs — at tagging time, not at
    dispatch time.
    """
    if name not in _BUILDERS:
        raise ValueError(
            f"no policy builder registered under {name!r}; "
            f"known: {registered_policies()}"
        )
    try:
        json.dumps(kwargs)
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"wire_ref kwargs for {name!r} must be JSON-safe: {error}"
        ) from error
    return {"name": name, "kwargs": kwargs}


def policy_wire_ref(policy: Any) -> Optional[Dict[str, Any]]:
    """The wire reference for ``policy``, or ``None`` if it has none.

    Prefers an explicit ``__wire_ref__`` tag; built-in policies fall
    back to a ``"spec"`` reference derived via
    :func:`~repro.distributed.work.policy_spec_of`.
    """
    ref = getattr(policy, "__wire_ref__", None)
    if isinstance(ref, dict):
        name = ref.get("name")
        kwargs = ref.get("kwargs") or {}
        if name in _BUILDERS and isinstance(kwargs, dict):
            try:
                json.dumps(kwargs)
            except (TypeError, ValueError):
                return None
            return {"name": name, "kwargs": dict(kwargs)}
        return None
    from dataclasses import asdict

    from repro.distributed.work import policy_spec_of

    try:
        spec = policy_spec_of(policy)
    except ValueError:
        return None
    return {"name": "spec", "kwargs": asdict(spec)}


def resolve_policy_ref(
    ref: Dict[str, Any], params: Any, workload: Tuple[int, ...]
) -> Any:
    """Rebuild a policy instance from its wire reference (worker side)."""
    name = ref.get("name") if isinstance(ref, dict) else None
    builder = _BUILDERS.get(name)  # type: ignore[arg-type]
    if builder is None:
        raise ValueError(
            f"work item references unknown policy builder {name!r}; "
            "register it with register_policy() in the worker process "
            f"(known: {registered_policies()})"
        )
    kwargs = ref.get("kwargs") or {}
    if not isinstance(kwargs, dict):
        raise ValueError(f"malformed policy reference kwargs: {kwargs!r}")
    return builder(params, workload, **kwargs)


def _build_from_spec(params: Any, workload: Tuple[int, ...], **kwargs: Any):
    """The pre-registered builder covering every built-in policy kind."""
    from repro.scenarios.spec import PolicySpec

    return PolicySpec(**kwargs).build(params, workload)


register_policy("spec", _build_from_spec)
