"""Vectorized kernel: determinism, capability gating, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.base import BackendUnsupportedError, get_backend
from repro.backends.vectorized import simulate_completion_times
from repro.cluster.system import IncompleteSimulationError
from repro.core.parameters import (
    NodeParameters,
    SystemParameters,
    TransferDelayModel,
)
from repro.core.policies.base import LoadBalancingPolicy
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2


class TestDeterminism:
    def test_same_seed_reproduces_the_sample(self, fast_params):
        policy = LBP1(0.35)
        first = simulate_completion_times(fast_params, policy, (20, 12), 50, seed=7)
        second = simulate_completion_times(fast_params, policy, (20, 12), 50, seed=7)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self, fast_params):
        policy = LBP1(0.35)
        first = simulate_completion_times(fast_params, policy, (20, 12), 50, seed=7)
        second = simulate_completion_times(fast_params, policy, (20, 12), 50, seed=8)
        assert not np.array_equal(first, second)

    def test_completion_times_are_positive_and_finite(self, fast_params):
        times = simulate_completion_times(fast_params, LBP2(1.0), (20, 12), 80, seed=3)
        assert times.shape == (80,)
        assert np.all(times > 0.0)
        assert np.all(np.isfinite(times))


class TestValidation:
    def test_rejects_zero_realisations(self, fast_params):
        with pytest.raises(ValueError, match="num_realisations"):
            simulate_completion_times(fast_params, LBP1(0.35), (20, 12), 0)

    def test_horizon_overrun_raises_incomplete(self, fast_params):
        with pytest.raises(IncompleteSimulationError):
            simulate_completion_times(
                fast_params, LBP1(0.35), (200, 120), 10, seed=1, horizon=0.01
            )

    def test_rejects_deterministic_delay(self):
        params = SystemParameters(
            nodes=(
                NodeParameters(service_rate=5.0, failure_rate=0.1, recovery_rate=0.5),
                NodeParameters(service_rate=8.0, failure_rate=0.1, recovery_rate=0.4),
            ),
            delay=TransferDelayModel(kind="deterministic", mean_delay_per_task=0.5),
        )
        backend = get_backend("vectorized")
        with pytest.raises(BackendUnsupportedError, match="deterministic"):
            backend.ensure_supported(params, LBP1(0.35), (10, 6))

    def test_public_sampler_rejects_deterministic_delay(self):
        # simulate_completion_times is re-exported: it must refuse what it
        # cannot sample instead of treating the delay as exponential.
        params = SystemParameters(
            nodes=(
                NodeParameters(service_rate=5.0, failure_rate=0.1, recovery_rate=0.5),
                NodeParameters(service_rate=8.0, failure_rate=0.1, recovery_rate=0.4),
            ),
            delay=TransferDelayModel(kind="deterministic", mean_delay_per_task=0.5),
        )
        with pytest.raises(BackendUnsupportedError, match="deterministic"):
            simulate_completion_times(params, LBP1(0.35), (10, 6), 5, seed=1)

    def test_rejects_trace_recording(self, fast_params):
        backend = get_backend("vectorized")
        with pytest.raises(BackendUnsupportedError, match="trace"):
            backend.run_batch(
                fast_params, LBP1(0.35), (10, 6), 5, seed=1, record_trace=True
            )

    def test_rejects_unknown_system_kwargs(self, fast_params):
        backend = get_backend("vectorized")
        with pytest.raises(BackendUnsupportedError, match="exotic_option"):
            backend.run_batch(
                fast_params, LBP1(0.35), (10, 6), 5, seed=1, exotic_option=True
            )

    def test_rejects_policies_with_custom_failure_hooks(self, fast_params):
        class Custom(LoadBalancingPolicy):
            name = "custom"

            def initial_transfers(self, workload, params):  # pragma: no cover
                return []

            def on_failure(self, *args, **kwargs):  # pragma: no cover
                return []

        backend = get_backend("vectorized")
        with pytest.raises(BackendUnsupportedError, match="on_failure"):
            backend.ensure_supported(fast_params, Custom(), (10, 6))


class TestEstimate:
    def test_run_batch_returns_full_estimate(self, fast_params):
        backend = get_backend("vectorized")
        estimate = backend.run_batch(fast_params, LBP1(0.35), (20, 12), 60, seed=5)
        assert estimate.policy_name == LBP1(0.35).name
        assert estimate.workload == (20, 12)
        assert estimate.completion_times.shape == (60,)
        assert estimate.summary.n == 60
        assert estimate.summary.mean == pytest.approx(
            float(estimate.completion_times.mean())
        )
        # The vectorized backend aggregates internally: no per-run results.
        assert estimate.results == []

    def test_no_failure_mean_tracks_workload_service_time(self):
        # With failures off, no balancing and an instantaneous single node
        # dominated by service, the mean completion time approaches the sum
        # of the service times: workload / rate.
        params = SystemParameters(
            nodes=(
                NodeParameters(service_rate=4.0, failure_rate=0.0, recovery_rate=1.0),
                NodeParameters(service_rate=4.0, failure_rate=0.0, recovery_rate=1.0),
            ),
            delay=TransferDelayModel(mean_delay_per_task=0.01),
        )
        from repro.core.policies.baselines import NoBalancing

        times = simulate_completion_times(
            params, NoBalancing(), (40, 40), 400, seed=11
        )
        # Each node serves 40 tasks at rate 4 -> Erlang(40, 4) with mean 10;
        # the completion time is the max of the two nodes (≈ 11 ± 1).
        assert 9.5 < times.mean() < 13.0
