"""Sensitivity study: how churn intensity shapes the optimal balancing gain.

The conclusion of the paper states the observation this driver quantifies:
"under LBP-1, as the failure rates of nodes increase (while holding other
parameters fixed), the minimum achievable average overall completion time is
obtained by reducing the strength of balancing", and likewise that the
presence of uncertainty (failure/recovery *or* random delay) "calls for an
attenuation in the level of load-balancing action".

Two sweeps are provided:

* :func:`failure_rate_sweep` — scale both nodes' failure rates and track the
  optimal LBP-1 gain and its achieved mean completion time;
* :func:`delay_sensitivity_sweep` — the same for the per-task transfer delay
  (the earlier-work effect, visible here in the no-failure model).

Both are purely analytical (regeneration model), so they run in seconds and
are exercised directly by the test suite and an ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.optimize import default_gain_grid, optimal_gain_lbp1
from repro.core.parameters import NodeParameters, SystemParameters
from repro.experiments import common


@dataclass
class SensitivityResult:
    """Optimal gain and completion time along a swept parameter."""

    parameter_name: str
    values: np.ndarray
    optimal_gains: np.ndarray
    optimal_means: np.ndarray
    workload: tuple

    def as_table(self) -> Table:
        table = Table(
            [self.parameter_name, "optimal_gain", "optimal_mean_completion_time"],
            title=f"Sensitivity of the optimal LBP-1 gain, workload {self.workload}",
        )
        for value, gain, mean in zip(self.values, self.optimal_gains, self.optimal_means):
            table.add_row(
                {
                    self.parameter_name: float(value),
                    "optimal_gain": float(gain),
                    "optimal_mean_completion_time": float(mean),
                }
            )
        return table

    def render(self) -> str:
        return format_table(self.as_table(), float_format="{:.3f}")

    @property
    def gain_is_non_increasing(self) -> bool:
        """Whether the optimal gain never increases along the sweep."""
        return bool(np.all(np.diff(self.optimal_gains) <= 1e-12))


def failure_rate_sweep(
    failure_rate_scales: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    workload: Sequence[int] = common.PRIMARY_WORKLOAD,
    base: Optional[SystemParameters] = None,
    gains: Optional[Sequence[float]] = None,
) -> SensitivityResult:
    """Optimal LBP-1 gain as the failure rates scale up (recovery rates fixed).

    ``failure_rate_scales`` multiply the paper's baseline failure rate
    (1/20 s⁻¹); a scale of 0 is the no-failure case.
    """
    base = base if base is not None else common.default_parameters()
    grid = np.asarray(gains if gains is not None else default_gain_grid(), dtype=float)
    workload_t = tuple(int(m) for m in workload)

    scales = np.asarray(failure_rate_scales, dtype=float)
    if np.any(scales < 0):
        raise ValueError("failure-rate scales must be non-negative")

    optimal_gains = np.empty_like(scales)
    optimal_means = np.empty_like(scales)
    for index, scale in enumerate(scales):
        nodes = []
        for node in base.nodes:
            failure_rate = node.failure_rate * scale
            nodes.append(
                NodeParameters(
                    service_rate=node.service_rate,
                    failure_rate=failure_rate,
                    recovery_rate=node.recovery_rate if failure_rate > 0 else 0.0,
                    name=node.name,
                )
            )
        params = base.with_nodes(nodes)
        optimum = optimal_gain_lbp1(params, workload_t, gains=grid, sender=0, receiver=1)
        optimal_gains[index] = optimum.optimal_gain
        optimal_means[index] = optimum.optimal_mean

    return SensitivityResult(
        parameter_name="failure_rate_scale",
        values=scales,
        optimal_gains=optimal_gains,
        optimal_means=optimal_means,
        workload=workload_t,
    )


def delay_sensitivity_sweep(
    delays_per_task: Sequence[float] = (0.0, 0.02, 0.1, 0.5, 1.0, 2.0),
    workload: Sequence[int] = common.PRIMARY_WORKLOAD,
    base: Optional[SystemParameters] = None,
    gains: Optional[Sequence[float]] = None,
    with_failures: bool = True,
) -> SensitivityResult:
    """Optimal LBP-1 gain as the per-task transfer delay grows."""
    base = base if base is not None else common.default_parameters(
        with_failures=with_failures
    )
    grid = np.asarray(gains if gains is not None else default_gain_grid(), dtype=float)
    workload_t = tuple(int(m) for m in workload)
    delays = np.asarray(delays_per_task, dtype=float)
    if np.any(delays < 0):
        raise ValueError("delays must be non-negative")

    optimal_gains = np.empty_like(delays)
    optimal_means = np.empty_like(delays)
    for index, delay in enumerate(delays):
        params = base.with_delay_per_task(float(delay))
        optimum = optimal_gain_lbp1(params, workload_t, gains=grid, sender=0, receiver=1)
        optimal_gains[index] = optimum.optimal_gain
        optimal_means[index] = optimum.optimal_mean

    return SensitivityResult(
        parameter_name="delay_per_task",
        values=delays,
        optimal_gains=optimal_gains,
        optimal_means=optimal_means,
        workload=workload_t,
    )


def run(**kwargs) -> SensitivityResult:
    """Default entry point: the failure-rate sweep of the paper's conclusion."""
    return failure_rate_sweep(**kwargs)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(failure_rate_sweep().render())
    print()
    print(delay_sensitivity_sweep().render())
