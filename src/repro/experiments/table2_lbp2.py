"""Table 2 — LBP-2: Monte-Carlo and experimental completion times.

For the same five workloads as Table 1 the paper runs LBP-2 with the initial
gain selected by the *no-failure* model, estimating the mean completion time
by Monte-Carlo simulation (500 realisations) and by wireless-LAN experiments
(up to 60 realisations).  The paper's observation is that LBP-2 beats LBP-1
for every workload at the test-bed's small per-task delay.

This driver reproduces both columns: "MC" from the Monte-Carlo harness,
"experiment" from the test-bed emulation, with the initial gain coming from
:func:`repro.core.optimize.optimal_gain_lbp2_initial`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.optimize import optimal_gain_lbp2_initial
from repro.core.parameters import SystemParameters
from repro.core.policies.lbp2 import LBP2
from repro.experiments import common
from repro.montecarlo.engine import EngineRequest, run_engine
from repro.sim.rng import spawn_seeds
from repro.testbed.experiment import TestbedExperiment


@dataclass
class Table2Row:
    """One row of Table 2."""

    workload: Tuple[int, int]
    initial_gain: float
    monte_carlo: float
    experiment: float
    paper_gain: Optional[float] = None
    paper_mc: Optional[float] = None
    paper_experiment: Optional[float] = None


@dataclass
class Table2Result:
    """All rows of Table 2."""

    rows: List[Table2Row]

    def as_table(self) -> Table:
        table = Table(
            [
                "workload",
                "initial_gain",
                "monte_carlo",
                "experiment",
                "paper_gain",
                "paper_mc",
                "paper_experiment",
            ],
            title="Table 2 — LBP-2 with the no-failure-optimal initial gain",
        )
        for row in self.rows:
            table.add_row(
                {
                    "workload": f"({row.workload[0]},{row.workload[1]})",
                    "initial_gain": row.initial_gain,
                    "monte_carlo": row.monte_carlo,
                    "experiment": row.experiment,
                    "paper_gain": row.paper_gain if row.paper_gain is not None else float("nan"),
                    "paper_mc": row.paper_mc if row.paper_mc is not None else float("nan"),
                    "paper_experiment": row.paper_experiment
                    if row.paper_experiment is not None
                    else float("nan"),
                }
            )
        return table

    def render(self) -> str:
        return format_table(self.as_table(), float_format="{:.2f}")


def run(
    params: Optional[SystemParameters] = None,
    workloads: Sequence[Tuple[int, int]] = common.TABLE_WORKLOADS,
    mc_realisations: int = 300,
    experiment_realisations: int = common.PAPER_EXPERIMENT_REALISATIONS_LBP2,
    gains: Optional[Sequence[float]] = None,
    seed: int = 707,
) -> Table2Result:
    """Regenerate Table 2."""
    params = params if params is not None else common.default_parameters()
    gain_grid = np.asarray(gains if gains is not None else common.GAIN_GRID, dtype=float)
    seeds = spawn_seeds(seed, 2 * len(workloads))

    rows: List[Table2Row] = []
    for index, workload in enumerate(workloads):
        workload_t = (int(workload[0]), int(workload[1]))
        optimum = optimal_gain_lbp2_initial(params, workload_t, gains=gain_grid)
        policy = LBP2(optimum.optimal_gain)

        mc = run_engine(
            EngineRequest(
                params=params,
                policy=policy,
                workload=workload_t,
                num_realisations=mc_realisations,
                seed=seeds[2 * index],
            )
        ).estimate
        campaign = TestbedExperiment.run_many(
            params,
            policy,
            workload_t,
            num_realisations=experiment_realisations,
            seed=seeds[2 * index + 1],
        )

        reference = common.PAPER_TABLE2.get(workload_t, {})
        rows.append(
            Table2Row(
                workload=workload_t,
                initial_gain=optimum.optimal_gain,
                monte_carlo=mc.mean_completion_time,
                experiment=campaign.mean_completion_time,
                paper_gain=reference.get("gain"),
                paper_mc=reference.get("mc"),
                paper_experiment=reference.get("experiment"),
            )
        )
    return Table2Result(rows=rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run(mc_realisations=100, experiment_realisations=10).render())
