"""Named catalog of scenarios and scenario families.

The registry maps human-facing names to :class:`ScenarioSpec`s.  It is
pre-populated with

* every artefact of the paper's evaluation (``fig1``–``fig5``,
  ``table1``–``table3``), each with a full-fidelity spec and a reduced
  ``quick`` variant,
* a tiny ``smoke`` scenario for CI and tests,
* the ``mc-scaling`` throughput workload used by the benchmark harness
  (``python -m repro bench``), and
* *families* — parameterised sets of scenarios expanded on demand
  (``delay-sweep``, ``failure-sweep``, ``multinode``, ``churn``,
  ``gain-sweep``) whose points are individually content-addressed, so a
  sweep only computes the points missing from the cache.  ``gain-sweep``
  points carry a shard configuration and exercise the distributed runner
  (:mod:`repro.distributed`).

Family points are addressable as ``<family>/<label>`` (e.g.
``delay-sweep/d=0.5``) anywhere a scenario name is accepted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, Tuple

from repro.experiments import common
from repro.scenarios.spec import (
    DelaySpec,
    NodeSpec,
    PolicySpec,
    ScenarioSpec,
    SystemSpec,
)

#: Names of the paper's artefacts (all resolvable through the registry).
PAPER_ARTEFACTS = (
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "table2",
    "table3",
)


@dataclass(frozen=True)
class ScenarioEntry:
    """One named scenario: full-fidelity spec, quick variant, description."""

    spec: ScenarioSpec
    quick: ScenarioSpec
    description: str
    tags: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ScenarioFamily:
    """A parameterised set of scenarios expanded on demand.

    ``build(quick)`` returns the family's points as fully-named specs
    (``<family>/<label>``); each point is content-addressed independently.
    """

    name: str
    description: str
    build: Callable[[bool], Tuple[ScenarioSpec, ...]]

    def expand(self, quick: bool = False) -> Tuple[ScenarioSpec, ...]:
        return self.build(quick)


_SCENARIOS: Dict[str, ScenarioEntry] = {}
_FAMILIES: Dict[str, ScenarioFamily] = {}


def register(name: str, entry: ScenarioEntry) -> None:
    """Add (or replace) a named scenario."""
    _SCENARIOS[name] = entry


def register_family(family: ScenarioFamily) -> None:
    """Add (or replace) a scenario family."""
    _FAMILIES[family.name] = family


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def family_names() -> Tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def get_entry(name: str) -> ScenarioEntry:
    """The :class:`ScenarioEntry` for ``name`` (raises ``KeyError``)."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def get_family(name: str) -> ScenarioFamily:
    """The :class:`ScenarioFamily` for ``name`` (raises ``KeyError``)."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {name!r}; known: {', '.join(family_names())}"
        ) from None


def resolve(name: str, quick: bool = False) -> ScenarioSpec:
    """Resolve a scenario name — or a ``family/label`` point — to a spec."""
    if name in _SCENARIOS:
        entry = _SCENARIOS[name]
        return entry.quick if quick else entry.spec
    if "/" in name:
        family_name = name.split("/", 1)[0]
        if family_name in _FAMILIES:
            for spec in _FAMILIES[family_name].expand(quick):
                if spec.name == name:
                    return spec
            raise KeyError(
                f"family {family_name!r} has no point named {name!r}; points: "
                f"{', '.join(s.name for s in _FAMILIES[family_name].expand(quick))}"
            )
    raise KeyError(
        f"unknown scenario {name!r}; known scenarios: "
        f"{', '.join(scenario_names())}; families: {', '.join(family_names())}"
    )


# ---------------------------------------------------------------------------
# Paper artefacts
# ---------------------------------------------------------------------------

_PAPER_SYSTEM = SystemSpec.paper()


def _register_paper_artefacts() -> None:
    fig1 = ScenarioSpec(
        name="fig1",
        kind="fig1",
        system=_PAPER_SYSTEM,
        seed=101,
        options=(("tasks_per_node", 2000),),
    )
    register(
        "fig1",
        ScenarioEntry(
            spec=fig1,
            quick=fig1.with_options(tasks_per_node=500),
            description="Fig. 1 — per-task processing-time pdfs + exponential fits",
            tags=("paper", "calibration"),
        ),
    )

    fig2 = ScenarioSpec(
        name="fig2",
        kind="fig2",
        system=_PAPER_SYSTEM,
        seed=202,
        options=(("probes_per_size", 30),),
    )
    register(
        "fig2",
        ScenarioEntry(
            spec=fig2,
            quick=fig2.with_options(probes_per_size=15),
            description="Fig. 2 — transfer-delay pdf and mean delay vs batch size",
            tags=("paper", "calibration"),
        ),
    )

    fig3 = ScenarioSpec(
        name="fig3",
        kind="fig3",
        system=_PAPER_SYSTEM,
        workload=common.PRIMARY_WORKLOAD,
        gains=tuple(float(g) for g in common.GAIN_GRID),
        mc_realisations=200,
        experiment_realisations=20,
        seed=303,
    )
    register(
        "fig3",
        ScenarioEntry(
            spec=fig3,
            quick=fig3.with_(mc_realisations=40, experiment_realisations=5),
            description="Fig. 3 — mean completion time vs gain K under LBP-1",
            tags=("paper", "sweep"),
        ),
    )

    fig4 = ScenarioSpec(
        name="fig4",
        kind="fig4",
        system=_PAPER_SYSTEM,
        workload=common.PRIMARY_WORKLOAD,
        seed=404,
        options=(
            ("lbp1_gain", common.PAPER_FIG3_OPTIMAL_GAIN_FAILURE),
            ("lbp2_gain", 1.0),
        ),
    )
    register(
        "fig4",
        ScenarioEntry(
            spec=fig4,
            # The quick variant traces a genuinely smaller workload (same
            # gain settings), not a byte-identical re-run of the full one.
            quick=fig4.with_(workload=(50, 30)).with_options(sample_points=15),
            description="Fig. 4 — queue-length trajectories under LBP-1 and LBP-2",
            tags=("paper", "trace"),
        ),
    )

    fig5 = ScenarioSpec(
        name="fig5",
        kind="fig5",
        system=_PAPER_SYSTEM,
        mc_realisations=300,
        seed=505,
        options=(
            ("workloads", common.CDF_WORKLOADS),
            ("with_monte_carlo", True),
        ),
    )
    register(
        "fig5",
        ScenarioEntry(
            spec=fig5,
            quick=fig5.with_options(with_monte_carlo=False),
            description="Fig. 5 — completion-time CDFs (failure vs no failure)",
            tags=("paper", "cdf"),
        ),
    )

    table1 = ScenarioSpec(
        name="table1",
        kind="table1",
        system=_PAPER_SYSTEM,
        experiment_realisations=common.PAPER_EXPERIMENT_REALISATIONS_TABLE1,
        seed=606,
        options=(("workloads", common.TABLE_WORKLOADS),),
    )
    register(
        "table1",
        ScenarioEntry(
            spec=table1,
            quick=table1.with_(experiment_realisations=5),
            description="Table 1 — LBP-1 optimal gains and completion times",
            tags=("paper", "table"),
        ),
    )

    table2 = ScenarioSpec(
        name="table2",
        kind="table2",
        system=_PAPER_SYSTEM,
        mc_realisations=500,
        experiment_realisations=common.PAPER_EXPERIMENT_REALISATIONS_LBP2,
        seed=707,
        options=(("workloads", common.TABLE_WORKLOADS),),
    )
    register(
        "table2",
        ScenarioEntry(
            spec=table2,
            quick=table2.with_(mc_realisations=80, experiment_realisations=10),
            description="Table 2 — LBP-2 gains and completion times",
            tags=("paper", "table"),
        ),
    )

    table3 = ScenarioSpec(
        name="table3",
        kind="table3",
        system=_PAPER_SYSTEM,
        workload=common.PRIMARY_WORKLOAD,
        delays=common.TABLE3_DELAYS,
        mc_realisations=300,
        seed=808,
    )
    register(
        "table3",
        ScenarioEntry(
            spec=table3,
            quick=table3.with_(mc_realisations=80),
            description="Table 3 — LBP-1 vs LBP-2 across per-task delays",
            tags=("paper", "table", "sweep"),
        ),
    )


def _register_smoke() -> None:
    smoke = ScenarioSpec(
        name="smoke",
        kind="mc_point",
        system=_PAPER_SYSTEM,
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=5,
        seed=1,
    )
    register(
        "smoke",
        ScenarioEntry(
            spec=smoke,
            quick=smoke,
            description="Tiny LBP-1 Monte-Carlo run for CI and cache smoke tests",
            tags=("ci",),
        ),
    )


def _register_mc_scaling() -> None:
    # The throughput workload of the benchmark harness (`python -m repro
    # bench`): a large batch of realisations of the paper's primary
    # scenario, where per-event interpreter overhead — not the model —
    # dominates the reference backend.  The gain is pinned so the run
    # measures simulation throughput, not the optimiser.
    mc_scaling = ScenarioSpec(
        name="mc-scaling",
        kind="mc_point",
        system=_PAPER_SYSTEM,
        workload=common.PRIMARY_WORKLOAD,
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=2000,
        seed=1234,
    )
    register(
        "mc-scaling",
        ScenarioEntry(
            spec=mc_scaling,
            quick=mc_scaling.with_(mc_realisations=400),
            description="Monte-Carlo throughput workload for `repro bench` "
            "(LBP-1, paper system, 2000 realisations)",
            tags=("bench",),
        ),
    )


# ---------------------------------------------------------------------------
# Scenario families beyond the paper
# ---------------------------------------------------------------------------

def _delay_sweep(quick: bool) -> Tuple[ScenarioSpec, ...]:
    """LBP-1 vs LBP-2 crossover, point by point over per-task delays."""
    delays = (0.01, 0.1, 0.5, 1.0, 2.0, 3.0, 5.0)
    realisations = 40 if quick else 300
    return tuple(
        ScenarioSpec(
            name=f"delay-sweep/d={delay:g}",
            kind="delay_point",
            system=_PAPER_SYSTEM.with_delay_per_task(delay),
            workload=common.PRIMARY_WORKLOAD,
            mc_realisations=realisations,
            seed=808,
        )
        for delay in delays
    )


def _failure_sweep(quick: bool) -> Tuple[ScenarioSpec, ...]:
    """Optimal LBP-1 performance as node reliability degrades."""
    mean_failure_times = (math.inf, 80.0, 40.0, 20.0, 10.0, 5.0)
    realisations = 30 if quick else 200
    specs = []
    for mttf in mean_failure_times:
        failure_rate = 0.0 if math.isinf(mttf) else 1.0 / mttf
        nodes = tuple(
            replace(
                node,
                failure_rate=failure_rate,
                recovery_rate=node.recovery_rate if failure_rate else 0.0,
            )
            for node in _PAPER_SYSTEM.nodes
        )
        label = "inf" if math.isinf(mttf) else f"{mttf:g}"
        specs.append(
            ScenarioSpec(
                name=f"failure-sweep/mttf={label}",
                kind="mc_point",
                system=SystemSpec(nodes=nodes, delay=_PAPER_SYSTEM.delay),
                workload=common.PRIMARY_WORKLOAD,
                policy=PolicySpec(kind="lbp1", gain=None),
                mc_realisations=realisations,
                seed=909,
            )
        )
    return tuple(specs)


def _multinode(quick: bool) -> Tuple[ScenarioSpec, ...]:
    """Heterogeneous N-node clusters with churn, beyond the paper's pair."""
    realisations = 25 if quick else 150
    specs = []
    for num_nodes in (3, 4, 6):
        nodes = tuple(
            NodeSpec(
                service_rate=1.5 - 0.2 * (i % 3),
                failure_rate=0.05,
                recovery_rate=0.1,
                name=f"node-{i}",
            )
            for i in range(num_nodes)
        )
        # All load starts on the slowest node: the worst case for one-shot
        # balancing and the regime where policy choice matters most.
        workload = tuple(
            10 * num_nodes if i == num_nodes - 1 else 0 for i in range(num_nodes)
        )
        system = SystemSpec(nodes=nodes, delay=DelaySpec(mean_delay_per_task=0.05))
        for policy_kind, gain in (("lbp1", 0.8), ("proportional", None)):
            specs.append(
                ScenarioSpec(
                    name=f"multinode/n={num_nodes},policy={policy_kind}",
                    kind="mc_point",
                    system=system,
                    workload=workload,
                    policy=PolicySpec(kind=policy_kind, gain=gain),
                    mc_realisations=realisations,
                    seed=110,
                )
            )
    return tuple(specs)


def _churn(quick: bool) -> Tuple[ScenarioSpec, ...]:
    """Recovery-speed study: the paper's system from calm to violent churn."""
    realisations = 30 if quick else 200
    specs = []
    for label, scale in (("calm", 0.25), ("paper", 1.0), ("fast", 4.0)):
        nodes = tuple(
            replace(
                node,
                failure_rate=node.failure_rate * scale,
                recovery_rate=node.recovery_rate * scale,
            )
            for node in _PAPER_SYSTEM.nodes
        )
        specs.append(
            ScenarioSpec(
                name=f"churn/{label}",
                kind="mc_point",
                system=SystemSpec(nodes=nodes, delay=_PAPER_SYSTEM.delay),
                workload=common.PRIMARY_WORKLOAD,
                policy=PolicySpec(kind="lbp2", gain=1.0),
                mc_realisations=realisations,
                seed=111,
            )
        )
    return tuple(specs)


def _gain_sweep(quick: bool) -> Tuple[ScenarioSpec, ...]:
    """Fig. 3's Monte-Carlo gain curve as *sharded* mc_point scenarios.

    Each gain is its own content-addressed point running through the
    distributed runner (``shards``/``shard_block`` set), so the sweep is
    the canonical end-to-end workload for the shard scheduler, the
    shard-level cache and the ``repro worker`` fleet; the merged means
    trace the same curve as the fig3 artefact's Monte-Carlo series.
    """
    gains = (0.25, 0.35, 0.45) if quick else (0.15, 0.25, 0.35, 0.45, 0.55, 0.65)
    realisations = 24 if quick else 160
    shards = 2 if quick else 4
    shard_block = 8 if quick else 32
    return tuple(
        ScenarioSpec(
            name=f"gain-sweep/K={gain:g}",
            kind="mc_point",
            system=_PAPER_SYSTEM,
            workload=common.PRIMARY_WORKLOAD,
            policy=PolicySpec(kind="lbp1", gain=gain, sender=0, receiver=1),
            mc_realisations=realisations,
            seed=313,
            shards=shards,
            shard_block=shard_block,
        )
        for gain in gains
    )


def _register_families() -> None:
    register_family(
        ScenarioFamily(
            name="delay-sweep",
            description="LBP-1 vs LBP-2 crossover across per-task transfer delays",
            build=_delay_sweep,
        )
    )
    register_family(
        ScenarioFamily(
            name="failure-sweep",
            description="optimal LBP-1 completion time as node MTTF degrades",
            build=_failure_sweep,
        )
    )
    register_family(
        ScenarioFamily(
            name="multinode",
            description="heterogeneous 3/4/6-node clusters, LBP-1 vs proportional",
            build=_multinode,
        )
    )
    register_family(
        ScenarioFamily(
            name="churn",
            description="failure/recovery tempo study on the paper's system (LBP-2)",
            build=_churn,
        )
    )
    register_family(
        ScenarioFamily(
            name="gain-sweep",
            description="Fig. 3's LBP-1 Monte-Carlo gain curve, sharded "
            "(the distributed-execution showcase)",
            build=_gain_sweep,
        )
    )


_register_paper_artefacts()
_register_smoke()
_register_mc_scaling()
_register_families()
