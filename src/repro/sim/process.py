"""Generator-backed simulation processes.

A :class:`Process` drives a Python generator: whenever the generator yields
an :class:`~repro.sim.events.Event`, the process suspends until that event is
processed, at which point the generator is resumed with the event's value (or
the event's exception is thrown into it).  A process is itself an event that
triggers when its generator returns, so processes can wait for one another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import PENDING, URGENT, Event
from repro.sim.exceptions import Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

ProcessGenerator = Generator[Event, Any, Any]


class _Initialize(Event):
    """Bootstrap event that starts the generator of a new process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env.schedule(self, priority=URGENT)


class _Interruption(Event):
    """Immediate event delivering an :class:`Interrupt` into a process."""

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [self._deliver]
        self.env.schedule(self, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        # The process may have terminated in the meantime (e.g. the node
        # finished its queue in the same time step as the failure signal).
        if process.triggered:
            return
        # Unsubscribe the process from the event it is currently waiting on
        # so it is not resumed twice.
        if process._target is not None and process._target.callbacks is not None:
            try:
                process._target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    Parameters
    ----------
    env:
        The owning environment.
    generator:
        A generator that yields events.  Its return value becomes the value
        of the process event.
    name:
        Optional human-readable name used in ``repr`` and error messages.
    """

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", type(self).__name__)
        _Initialize(env, self)

    # -- introspection ----------------------------------------------------

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (if suspended)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is PENDING

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "alive" if self.is_alive else "terminated"
        return f"<Process {self.name!r} {state}>"

    # -- control ----------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process as soon as possible.

        The interrupt is delivered as an *urgent* event at the current
        simulation time; the interrupted process sees an
        :class:`~repro.sim.exceptions.Interrupt` exception raised at its
        current ``yield`` statement.
        """
        _Interruption(self, cause)

    # -- execution ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator after ``event`` has been processed."""
        self.env._active_process = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # Mark the failure as handled: the generator gets a
                    # chance to deal with (or re-raise) it.
                    event.defuse()
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event"
                )
                self._ok = False
                self._value = error
                self.env.schedule(self)
                break

            if next_event.callbacks is not None:
                # The event has not been processed yet: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # The event was already processed; feed its value straight back.
            event = next_event

        self.env._active_process = None
