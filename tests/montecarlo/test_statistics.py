"""Tests for Monte-Carlo summary statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.montecarlo.statistics import (
    SummaryStatistics,
    empirical_cdf,
    evaluate_empirical_cdf,
    summarize,
)


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.n == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_invalid_confidence_level(self):
        with pytest.raises(ValueError):
            summarize([1.0], confidence_level=1.0)

    def test_single_observation(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.half_width == 0.0

    def test_interval_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(size=20))
        large = summarize(rng.normal(size=2000))
        assert large.half_width < small.half_width

    def test_contains_helper(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.contains(summary.mean)
        assert not summary.contains(100.0)

    def test_coverage_of_true_mean(self):
        """A 95 % interval over repeated experiments should cover ~95 % of the time."""
        rng = np.random.default_rng(1)
        covered = 0
        trials = 200
        for _ in range(trials):
            sample = rng.exponential(2.0, size=40)
            if summarize(sample).contains(2.0):
                covered += 1
        assert 0.88 <= covered / trials <= 0.99

    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_mean_within_min_max(self, values):
        summary = summarize(values)
        assert summary.minimum - 1e-9 <= summary.mean <= summary.maximum + 1e-9


class TestEmpiricalCDF:
    def test_sorted_output(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_evaluate_on_grid(self):
        values = [1.0, 2.0, 3.0, 4.0]
        grid = [0.5, 1.0, 2.5, 10.0]
        assert list(evaluate_empirical_cdf(values, grid)) == [0.0, 0.25, 0.5, 1.0]

    def test_evaluate_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_empirical_cdf([], [1.0])

    @given(values=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_cdf_is_monotone_and_ends_at_one(self, values):
        xs, ps = empirical_cdf(values)
        assert np.all(np.diff(ps) >= 0)
        assert ps[-1] == pytest.approx(1.0)
