"""End-to-end acceptance: `repro serve` in its own process.

The flow the service exists for — submit the fig3 gain sweep, poll to
completion, fetch the result by content hash, then prove that a *fresh*
server process answers the same submission from the cache without ever
importing numpy or scipy.  Import isolation is observable because each
server is a separate interpreter whose ``/healthz`` reports loaded heavy
modules.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient

REPO = pathlib.Path(__file__).resolve().parents[2]


class ServeProcess:
    """`python -m repro serve --port 0` with an isolated cache dir."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.proc = None
        self.url = None

    def __enter__(self) -> "ServeProcess":
        env = dict(
            os.environ,
            PYTHONPATH=str(REPO / "src"),
            REPRO_CACHE_DIR=self.cache_dir,
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = self.proc.stdout.readline()
        assert "listening on http://" in line, f"unexpected serve output: {line!r}"
        self.url = line.rsplit(" ", 1)[-1].strip()
        return self

    def __exit__(self, *exc_info) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_fig3_sweep_submit_poll_fetch_then_cached_without_numpy(cache_dir):
    # ---- phase 1: a fresh service computes the fig3 sweep -----------------
    with ServeProcess(cache_dir) as server:
        client = ServiceClient(server.url, timeout=60.0)

        before = client.health()
        assert before["heavy_modules"] == {"numpy": False, "scipy": False}

        job = client.submit(scenario="fig3", quick=True)
        done = client.wait(job.id, timeout=300, interval=0.5)
        assert done.state == "done"
        (point,) = done.results
        assert point["from_cache"] is False
        content_hash = point["content_hash"]

        result = client.result(content_hash)
        assert result.kind == "fig3"
        assert "gain" in result.rendered.lower()
        assert "monte_carlo" in result.arrays
        etag = result.etag

        # Executing the sweep legitimately loaded the numerical stack.
        after = client.health()
        assert after["heavy_modules"]["numpy"] is True

    # ---- phase 2: a fresh process serves the same submission from cache --
    with ServeProcess(cache_dir) as server:
        client = ServiceClient(server.url, timeout=60.0)

        resubmit = client.submit(scenario="fig3", quick=True)
        # The fully cached job is terminal at submission time.
        assert resubmit.state == "done"
        (point,) = resubmit.results
        assert point["from_cache"] is True
        assert point["content_hash"] == content_hash
        assert point["headline"] == done.results[0]["headline"]

        # Fetch by content hash: same payload, same ETag, and 304 on replay.
        replay = client.result(content_hash)
        assert replay.etag == etag
        assert replay.rendered == result.rendered
        assert replay.scalars == result.scalars
        assert client.result(content_hash, etag=etag) is None

        # The entire request path ran without the numerical stack.
        health = client.health()
        assert health["jobs"]["done"] == 1
        assert health["heavy_modules"] == {"numpy": False, "scipy": False}


def test_serve_help_does_not_require_numerical_stack(cache_dir):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    out = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--help"],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    assert "results service" in out.stdout
