"""Tests for workload construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.workload import (
    PAPER_CDF_WORKLOADS,
    PAPER_PRIMARY_WORKLOAD,
    PAPER_TABLE_WORKLOADS,
    Workload,
    generate_workload,
)
from repro.sim.distributions import Exponential


class TestWorkload:
    def test_basic_accessors(self):
        workload = Workload((100, 60))
        assert workload.num_nodes == 2
        assert workload.total == 160
        assert workload.count(0) == 100
        assert workload[1] == 60
        assert list(workload) == [100, 60]
        assert len(workload) == 2

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            Workload((10, -1))

    def test_rejects_non_integer_counts(self):
        with pytest.raises(ValueError):
            Workload((10.5, 2))

    def test_swapped(self):
        assert tuple(Workload((100, 60)).swapped()) == (60, 100)

    def test_materialise_counts_and_origins(self):
        workload = Workload((3, 2))
        tasks = workload.materialise()
        assert len(tasks[0]) == 3
        assert len(tasks[1]) == 2
        assert all(task.origin == 0 for task in tasks[0])
        assert all(task.origin == 1 for task in tasks[1])

    def test_materialise_unique_ids(self):
        tasks = Workload((5, 5)).materialise()
        ids = [task.task_id for node in tasks.values() for task in node]
        assert len(set(ids)) == 10

    def test_materialise_with_size_distribution(self):
        rng = np.random.default_rng(0)
        tasks = Workload((50, 0)).materialise(
            rng=rng, size_distribution=Exponential(1.0)
        )
        sizes = [task.size for task in tasks[0]]
        assert len(set(sizes)) > 1  # genuinely random sizes

    def test_materialise_default_unit_sizes(self):
        tasks = Workload((4, 0)).materialise()
        assert all(task.size == 1.0 for task in tasks[0])

    def test_generate_workload_helper(self):
        workload, tasks = generate_workload([2, 3])
        assert workload.total == 5
        assert len(tasks[1]) == 3

    def test_empty_workload(self):
        workload = Workload((0, 0))
        assert workload.total == 0
        assert workload.materialise() == {0: [], 1: []}


class TestPaperWorkloads:
    def test_primary_workload_matches_paper(self):
        assert tuple(PAPER_PRIMARY_WORKLOAD) == (100, 60)

    def test_table_workloads_match_paper(self):
        assert [tuple(w) for w in PAPER_TABLE_WORKLOADS] == [
            (200, 200),
            (200, 100),
            (100, 200),
            (200, 50),
            (50, 200),
        ]

    def test_cdf_workloads_match_paper(self):
        assert [tuple(w) for w in PAPER_CDF_WORKLOADS] == [(50, 0), (25, 50)]


class TestWorkloadProperties:
    @given(counts=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_total_is_sum(self, counts):
        assert Workload(tuple(counts)).total == sum(counts)

    @given(counts=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_materialise_preserves_counts(self, counts):
        tasks = Workload(tuple(counts)).materialise()
        assert [len(tasks[i]) for i in range(len(counts))] == list(counts)

    @given(counts=st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_swapped_is_involution(self, counts):
        workload = Workload(tuple(counts))
        assert tuple(workload.swapped().swapped()) == tuple(workload)
