"""The ``auto`` backend: the fastest kernel the configuration supports.

Block execution — in a pool slot or a remote ``repro worker`` — should not
force the operator to know which configurations fit the vectorized CTMC
kernel.  ``backend="auto"`` resolves that question per configuration, at
the moment a block runs: the vectorized batch kernel where
:meth:`~repro.backends.vectorized.VectorizedBackend.ensure_supported`
accepts the configuration, the reference event simulator everywhere else.

The choice depends only on the configuration itself (parameters, policy,
workload, system options) — never on the machine or the executor — so a
serial run, a process pool and a worker fleet executing the same spec all
pick the same kernel and merged statistics stay bit-identical across
execution modes.  ``auto`` is its own cache identity: the spec's content
hash and the shard store's plan key salt with the literal backend name, so
``auto`` blocks never alias ``reference`` or ``vectorized`` blocks.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.backends.base import ExecutionBackend, get_backend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.parameters import SystemParameters
    from repro.core.policies.base import LoadBalancingPolicy
    from repro.core.workload import Workload
    from repro.montecarlo.runner import MonteCarloEstimate
    from repro.sim.rng import SeedLike


class AutoBackend(ExecutionBackend):
    """Delegate to the vectorized kernel where supported, else reference."""

    name = "auto"

    def select(
        self,
        params: "SystemParameters",
        policy: "LoadBalancingPolicy",
        workload: Union["Workload", Sequence[int]],
        **system_kwargs,
    ) -> ExecutionBackend:
        """The concrete backend this configuration resolves to."""
        fast = get_backend("vectorized")
        if fast.supports(params, policy, workload, **system_kwargs):
            return fast
        return get_backend("reference")

    # Everything is supported: the reference backend is the total fallback,
    # so the inherited accept-all ``ensure_supported`` is correct.

    def run_batch(
        self,
        params: "SystemParameters",
        policy: "LoadBalancingPolicy",
        workload: Union["Workload", Sequence[int]],
        num_realisations: int,
        seed: "SeedLike" = None,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        **system_kwargs,
    ) -> "MonteCarloEstimate":
        backend = self.select(params, policy, workload, **system_kwargs)
        return backend.run_batch(
            params,
            policy,
            workload,
            num_realisations,
            seed=seed,
            horizon=horizon,
            confidence_level=confidence_level,
            workers=workers,
            executor=executor,
            **system_kwargs,
        )


register_backend(AutoBackend())
