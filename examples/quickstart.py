#!/usr/bin/env python
"""Quickstart: churn-aware load balancing on the paper's two-node system.

This example walks through the core API in a few steps:

1. describe the distributed system (node speeds, failure/recovery rates,
   transfer delays) with :func:`repro.paper_parameters`;
2. find the optimal LBP-1 gain with the regeneration model — with node
   failures it is smaller than without (the paper's central observation);
3. simulate the system under the tuned LBP-1 and under LBP-2 and compare
   the Monte-Carlo estimates with the analytical prediction.

Run it with ``python examples/quickstart.py``.
"""

from repro import (
    LBP1,
    LBP2,
    optimal_gain_lbp1,
    optimal_gain_no_failure,
    paper_parameters,
    run_monte_carlo,
)


def main() -> None:
    # 1. The system of the paper: a 1.08 tasks/s node and a 1.86 tasks/s node,
    #    both failing on average every 20 s, recovering in 10 s / 20 s, with a
    #    0.02 s per-task transfer delay.
    params = paper_parameters()
    workload = (100, 60)

    # 2. Choose the LBP-1 gain with and without failure awareness.
    with_failure = optimal_gain_lbp1(params, workload)
    without_failure = optimal_gain_no_failure(params, workload)
    print("Optimal LBP-1 gain")
    print(f"  accounting for failures : K = {with_failure.optimal_gain:.2f} "
          f"(predicted mean completion {with_failure.optimal_mean:.1f} s)")
    print(f"  ignoring failures       : K = {without_failure.optimal_gain:.2f} "
          f"(predicted mean completion {without_failure.optimal_mean:.1f} s)")
    print("  -> uncertainty about the receiver's availability reduces the "
          "amount of load worth transferring.\n")

    # 3. Validate the prediction by simulation and compare with LBP-2.
    lbp1 = LBP1(with_failure.optimal_gain,
                sender=with_failure.sender, receiver=with_failure.receiver)
    lbp2 = LBP2(gain=1.0)

    mc_lbp1 = run_monte_carlo(params, lbp1, workload, num_realisations=200, seed=1)
    mc_lbp2 = run_monte_carlo(params, lbp2, workload, num_realisations=200, seed=2)

    print("Monte-Carlo estimates (200 realisations each)")
    print(f"  LBP-1 (K={lbp1.gain:.2f}) : {mc_lbp1.mean_completion_time:7.1f} s "
          f"(model predicted {with_failure.optimal_mean:.1f} s)")
    print(f"  LBP-2 (K=1.00) : {mc_lbp2.mean_completion_time:7.1f} s")
    print("\nAt the paper's small per-task delay (0.02 s) the reactive LBP-2 "
          "edges out the preemptive LBP-1, matching Table 2 of the paper; "
          "run examples/policy_crossover_study.py to see the ranking flip "
          "once transfers become expensive.")


if __name__ == "__main__":
    main()
