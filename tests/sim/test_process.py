"""Tests for generator-backed processes and interrupts."""

import pytest

from repro.sim.engine import Environment
from repro.sim.exceptions import Interrupt, SimulationError


class TestProcessBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return 99

        process = env.process(proc(env))
        env.run()
        assert process.value == 99

    def test_process_is_alive_until_generator_ends(self, env):
        def proc(env):
            yield env.timeout(1.0)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_process_can_wait_for_another_process(self, env):
        def child(env):
            yield env.timeout(2.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return f"got {result}"

        parent_proc = env.process(parent(env))
        env.run()
        assert parent_proc.value == "got child-result"
        assert env.now == pytest.approx(2.0)

    def test_yielding_non_event_fails_the_process(self, env):
        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_inside_process_propagates(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("inside")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_exception_can_be_caught_by_waiter(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child failed")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as error:
                return f"handled: {error}"

        parent_proc = env.process(parent(env))
        env.run()
        assert parent_proc.value == "handled: child failed"

    def test_process_name_defaults_to_generator_name(self, env):
        def my_worker(env):
            yield env.timeout(1.0)

        process = env.process(my_worker(env))
        assert "my_worker" in process.name or process.name

    def test_zero_duration_process(self, env):
        def proc(env):
            return "instant"
            yield  # pragma: no cover - makes this a generator

        process = env.process(proc(env))
        env.run()
        assert process.value == "instant"
        assert env.now == 0.0

    def test_already_processed_event_resumes_immediately(self, env):
        done = env.event()
        done.succeed("ready")

        def proc(env, done):
            yield env.timeout(1.0)
            value = yield done  # already processed by then
            return value

        process = env.process(proc(env, done))
        env.run()
        assert process.value == "ready"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                return interrupt.cause

        def attacker(env, victim_proc):
            yield env.timeout(1.0)
            victim_proc.interrupt({"reason": "failure"})

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        env.run()
        assert victim_proc.value == {"reason": "failure"}
        assert env.now >= 1.0

    def test_interrupt_happens_at_current_time(self, env):
        times = []

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt:
                times.append(env.now)

        def attacker(env, victim_proc):
            yield env.timeout(2.5)
            victim_proc.interrupt()

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        env.run()
        assert times == [pytest.approx(2.5)]

    def test_interrupted_process_can_continue(self, env):
        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            return env.now

        def attacker(env, victim_proc):
            yield env.timeout(2.0)
            victim_proc.interrupt()

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        env.run()
        assert victim_proc.value == pytest.approx(3.0)

    def test_interrupting_terminated_process_raises(self, env):
        def quick(env):
            yield env.timeout(0.5)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_process_cannot_interrupt_itself(self, env):
        def selfish(env):
            process = env.active_process
            process.interrupt()
            yield env.timeout(1.0)

        env.process(selfish(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_unhandled_interrupt_propagates(self, env):
        def victim(env):
            yield env.timeout(10.0)

        def attacker(env, victim_proc):
            yield env.timeout(1.0)
            victim_proc.interrupt("boom")

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        with pytest.raises(Interrupt):
            env.run()

    def test_interrupt_cause_repr(self):
        assert "cause" in repr(Interrupt("x"))

    def test_target_event_unsubscribed_after_interrupt(self, env):
        """The original wait target must not resume the process a second time."""
        resumed = []

        def victim(env):
            try:
                yield env.timeout(5.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(10.0)
            resumed.append("second-wait")

        def attacker(env, victim_proc):
            yield env.timeout(1.0)
            victim_proc.interrupt()

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        env.run()
        assert resumed == ["interrupt", "second-wait"]
