"""Fig. 1 — empirical pdfs of the per-task processing time, per node.

The paper estimates the processing-time pdf of each node from measurements
of the matrix-multiplication application and overlays the exponential
approximation whose rates (1.08 and 1.86 tasks/s) parameterise the model.
This driver repeats the measurement on the emulated test-bed and reports,
per node, the histogram series plus the fitted exponential rate and its
Kolmogorov–Smirnov goodness of fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.empirical import EmpiricalDensity
from repro.analysis.fitting import ExponentialFit
from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.parameters import SystemParameters
from repro.experiments import common
from repro.testbed.calibration import estimate_processing_rates


@dataclass
class Fig1Result:
    """Per-node histogram and exponential fit (the two panels of Fig. 1)."""

    fits: Dict[int, ExponentialFit]
    densities: Dict[int, EmpiricalDensity]
    true_rates: tuple

    def summary_table(self) -> Table:
        """One row per node: true rate, fitted rate, KS check."""
        table = Table(
            ["node", "true_rate", "fitted_rate", "fitted_mean", "ks_pvalue", "accepted"],
            title="Fig. 1 — per-task processing time: exponential fits",
        )
        for node in sorted(self.fits):
            fit = self.fits[node]
            table.add_row(
                {
                    "node": node + 1,
                    "true_rate": self.true_rates[node],
                    "fitted_rate": fit.rate,
                    "fitted_mean": fit.mean,
                    "ks_pvalue": fit.ks_pvalue,
                    "accepted": fit.acceptable,
                }
            )
        return table

    def density_series(self, node: int) -> tuple:
        """``(bin centres, empirical density, fitted density)`` for one panel."""
        density = self.densities[node]
        centers = density.bin_centers
        return centers, density.density, self.fits[node].pdf(centers)

    def render(self) -> str:
        """Plain-text rendering of the figure's content."""
        return format_table(self.summary_table(), float_format="{:.4f}")


def run(
    params: Optional[SystemParameters] = None,
    tasks_per_node: int = 2000,
    seed: int = 101,
) -> Fig1Result:
    """Regenerate Fig. 1 on the emulated test-bed."""
    params = params if params is not None else common.default_parameters()
    fits, densities = estimate_processing_rates(
        params, tasks_per_node=tasks_per_node, seed=seed
    )
    return Fig1Result(
        fits=fits, densities=densities, true_rates=params.service_rates
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().render())
