"""Tests for the simulation environment (clock, scheduling, run loop)."""

import pytest

from repro.sim.engine import Environment
from repro.sim.exceptions import EmptySchedule, SimulationError


class TestClock:
    def test_initial_time_defaults_to_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_configurable(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_peek_empty_schedule_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == pytest.approx(2.0)

    def test_queue_size_counts_scheduled_events(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.queue_size == 2

    def test_clock_never_runs_backwards(self, env):
        times = []

        def proc(env):
            for delay in (1.0, 0.5, 2.0):
                yield env.timeout(delay)
                times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == sorted(times)


class TestScheduling:
    def test_negative_delay_rejected(self, env):
        event = env.event()
        event._value = None  # pretend triggered
        with pytest.raises(ValueError):
            env.schedule(event, delay=-0.1)

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_step_processes_one_event(self, env):
        first = env.timeout(1.0)
        second = env.timeout(2.0)
        env.step()
        assert first.processed
        assert not second.processed


class TestRun:
    def test_run_until_none_exhausts_schedule(self, env):
        env.timeout(1.0)
        env.timeout(5.0)
        env.run()
        assert env.now == pytest.approx(5.0)
        assert env.queue_size == 0

    def test_run_until_number_stops_at_that_time(self, env):
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == pytest.approx(4.0)

    def test_run_until_past_time_rejected(self, env):
        env.timeout(1.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=0.5)

    def test_run_until_event_returns_its_value(self, env):
        def proc(env):
            yield env.timeout(2.0)
            return "payload"

        process = env.process(proc(env))
        assert env.run(until=process) == "payload"
        assert env.now == pytest.approx(2.0)

    def test_run_until_already_processed_event(self, env):
        timeout = env.timeout(1.0, value="done")
        env.run()
        assert env.run(until=timeout) == "done"

    def test_run_until_event_that_never_triggers_raises(self, env):
        pending = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=pending)

    def test_run_until_event_does_not_overrun(self, env):
        late = env.timeout(100.0)

        def proc(env):
            yield env.timeout(1.0)
            return True

        process = env.process(proc(env))
        env.run(until=process)
        assert env.now == pytest.approx(1.0)
        assert not late.processed

    def test_run_is_resumable(self, env):
        env.timeout(1.0)
        env.timeout(3.0)
        env.run(until=2.0)
        assert env.now == pytest.approx(2.0)
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_active_process_is_none_outside_steps(self, env):
        assert env.active_process is None
        env.timeout(1.0)
        env.run()
        assert env.active_process is None


class TestDeterminism:
    def test_same_program_same_schedule(self):
        def build_and_run():
            env = Environment()
            log = []

            def worker(env, name, delay):
                yield env.timeout(delay)
                log.append((name, env.now))

            for i, delay in enumerate([0.5, 0.25, 0.75, 0.25]):
                env.process(worker(env, f"w{i}", delay))
            env.run()
            return log

        assert build_and_run() == build_and_run()
