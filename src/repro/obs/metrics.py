"""Process-local metrics: counters, gauges and histograms with labels.

A deliberately small, stdlib-only cousin of ``prometheus_client`` — the
container ships no metrics library, and the service's request path must
stay numpy-free *and* dependency-free.  One :class:`MetricsRegistry` holds
metric *families* (a name, a kind, a help string and a fixed label-name
tuple); each family holds one series per distinct label-value combination.
Everything is guarded by a single registry lock: increments are a dict
update under an uncontended lock, which is cheap enough for the hot paths
instrumented here (block dispatch, cache lookups, HTTP requests).

Three verbs cover the repo's needs:

* :meth:`MetricsRegistry.render` — the Prometheus text-exposition format
  (``# HELP``/``# TYPE`` plus one line per series), served by the results
  service's ``GET /metrics``;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge` — a
  JSON-safe dump and its additive inverse, so worker processes can ship
  their registries to an aggregator;
* :meth:`MetricsRegistry.reset` — drop every series (tests isolate on it).

Declaring a family is idempotent: several modules may declare
``repro_cache_requests_total`` (the result cache and the shard store both
do) and share the family, but re-declaring with a different kind or label
set is a programming error and raises.

The module-level :data:`REGISTRY` is the process default — instrumented
modules declare their families against it at import time.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets (seconds): spans microbenchmark-ish cache
#: reads up to minute-scale shard executions.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Kinds a family may have (mirrors the Prometheus TYPE line).
KINDS = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    """Render a sample the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def histogram_quantile(
    buckets: Sequence[Any], counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate a quantile from histogram buckets, Prometheus-style.

    ``buckets`` are upper bounds (``math.inf`` or the string ``"+Inf"``
    for the last one, so both live families and JSON snapshots work);
    ``counts`` are per-bucket (non-cumulative) observation counts.
    Linear interpolation inside the winning bucket; the first bucket
    interpolates from 0.  A quantile landing in the +Inf bucket returns
    the highest finite bound — the honest answer for unbounded tails.
    ``None`` when there are no observations.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    bounds = [math.inf if b == "+Inf" else float(b) for b in buckets]
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for i, (bound, count) in enumerate(zip(bounds, counts)):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if bound == math.inf:
                finite = [b for b in bounds[:i] if b != math.inf]
                return finite[-1] if finite else None
            lower = bounds[i - 1] if i > 0 else 0.0
            if lower == math.inf:  # malformed, but stay defensive
                return bound
            fraction = (rank - previous) / count if count else 0.0
            return lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
    return None


class _Series:
    """One label-value combination of a counter or gauge family."""

    __slots__ = ("_family", "_key", "value")

    def __init__(self, family: "MetricFamily", key: Tuple[str, ...]) -> None:
        self._family = family
        self._key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self._family.kind == "counter" and amount < 0:
            raise ValueError(f"counters only go up, got inc({amount!r})")
        with self._family._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._family.kind != "gauge":
            raise ValueError(f"{self._family.kind} metrics cannot dec()")
        with self._family._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        if self._family.kind != "gauge":
            raise ValueError(f"{self._family.kind} metrics cannot set()")
        with self._family._lock:
            self.value = float(value)

    def get(self) -> float:
        with self._family._lock:
            return self.value


class _HistogramSeries:
    """One label-value combination of a histogram family."""

    __slots__ = ("_family", "_key", "counts", "sum", "count")

    def __init__(self, family: "MetricFamily", key: Tuple[str, ...]) -> None:
        self._family = family
        self._key = key
        self.counts = [0] * len(family.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._family._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self._family.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    break

    def get(self) -> Dict[str, Any]:
        with self._family._lock:
            return {
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile from bucket counts (see
        :func:`histogram_quantile`)."""
        with self._family._lock:
            return histogram_quantile(self._family.buckets, self.counts, q)


class MetricFamily:
    """A named metric plus every labelled series under it."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self._lock = registry._lock
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        #: Histogram bucket upper bounds; always ends with +Inf.
        self.buckets = buckets
        self._series: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labels: str) -> Any:
        """The series for this exact label-value combination (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = (
                    _HistogramSeries(self, key)
                    if self.kind == "histogram"
                    else _Series(self, key)
                )
                self._series[key] = series
            return series

    # Unlabelled families read naturally: family.inc() / .set() / .observe().
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Estimate the q-quantile of one histogram series.

        ``None`` when the series has no observations yet.  Only valid on
        histogram families; pass the full label set, as for
        :meth:`labels`.
        """
        if self.kind != "histogram":
            raise ValueError(f"{self.kind} metric {self.name!r} has no quantiles")
        return self.labels(**labels).quantile(q)

    def _series_view(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._series.items())


class MetricsRegistry:
    """Holds metric families; renders, snapshots, merges and resets them."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}

    # -- declaration (idempotent) ------------------------------------------

    def _declare(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Tuple[float, ...] = (),
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already declared as {family.kind} "
                        f"with labels {family.labelnames!r}; cannot redeclare "
                        f"as {kind} with labels {labelnames!r}"
                    )
                return family
            family = MetricFamily(self, name, help, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """A monotonically increasing count (``*_total`` by convention)."""
        return self._declare(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """A value that can go up and down (queue depth, fleet size)."""
        return self._declare(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """A distribution of observations (latencies, sizes)."""
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if bounds[-1] != math.inf:
            bounds.append(math.inf)
        return self._declare(name, help, "histogram", labelnames, tuple(bounds))

    def families(self) -> Tuple[MetricFamily, ...]:
        with self._lock:
            return tuple(self._families[name] for name in sorted(self._families))

    # -- snapshot / merge / reset ------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe dump of every family and series."""
        out: Dict[str, Any] = {}
        for family in self.families():
            series = []
            for key, value in family._series_view():
                entry: Dict[str, Any] = {
                    "labels": dict(zip(family.labelnames, key))
                }
                if family.kind == "histogram":
                    entry.update(value.get())
                else:
                    entry["value"] = value.get()
                series.append(entry)
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            }
            if family.kind == "histogram":
                out[family.name]["buckets"] = [
                    "+Inf" if b == math.inf else b for b in family.buckets
                ]
        return out

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histograms are additive; gauges take the incoming
        value (last writer wins — a gauge is a statement of current state,
        not a tally).  Families absent here are declared on the fly, which
        is how a fresh aggregator absorbs worker snapshots.
        """
        for name, payload in snapshot.items():
            kind = payload["kind"]
            labelnames = tuple(payload.get("labelnames", ()))
            if kind == "histogram":
                buckets = tuple(
                    math.inf if b == "+Inf" else float(b)
                    for b in payload["buckets"]
                )
                family = self._declare(
                    name, payload.get("help", ""), kind, labelnames, buckets
                )
                if family.buckets != buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch; cannot merge"
                    )
            else:
                family = self._declare(
                    name, payload.get("help", ""), kind, labelnames
                )
            for entry in payload["series"]:
                series = family.labels(**entry["labels"])
                if kind == "histogram":
                    with self._lock:
                        for i, count in enumerate(entry["counts"]):
                            series.counts[i] += int(count)
                        series.sum += float(entry["sum"])
                        series.count += int(entry["count"])
                elif kind == "gauge":
                    series.set(float(entry["value"]))
                else:
                    with self._lock:
                        series.value += float(entry["value"])

    def reset(self) -> None:
        """Drop every series (families stay declared)."""
        with self._lock:
            for family in self._families.values():
                family._series.clear()

    # -- Prometheus text exposition ----------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text-exposition format (v0.0.4)."""
        return render_many(self)


def _family_sample_lines(family: MetricFamily) -> List[str]:
    """The sample lines (no HELP/TYPE header) for one family."""
    lines: List[str] = []
    for key, series in family._series_view():
        labels = dict(zip(family.labelnames, key))
        if family.kind == "histogram":
            state = series.get()
            cumulative = 0
            for bound, count in zip(family.buckets, state["counts"]):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                lines.append(
                    f"{family.name}_bucket{_render_labels(bucket_labels)}"
                    f" {cumulative}"
                )
            lines.append(
                f"{family.name}_sum{_render_labels(labels)}"
                f" {_format_value(state['sum'])}"
            )
            lines.append(
                f"{family.name}_count{_render_labels(labels)}"
                f" {state['count']}"
            )
        else:
            lines.append(
                f"{family.name}{_render_labels(labels)}"
                f" {_format_value(series.get())}"
            )
    return lines


def render_many(*registries: "MetricsRegistry") -> str:
    """Several registries as one Prometheus text exposition.

    The fleet scrape path: the service's own registry and the aggregated
    worker-labelled registry both carry (say) ``repro_cache_requests_total``
    with *different* label sets — illegal inside one registry, fine on the
    wire as long as each family name gets exactly one ``HELP``/``TYPE``
    header.  Families with the same name across registries must at least
    agree on kind; series lines are concatenated in registry order.
    """
    lines: List[str] = []
    seen_kinds: Dict[str, str] = {}
    emitted: List[Tuple[str, List[str]]] = []
    by_name: Dict[str, int] = {}
    for registry in registries:
        for family in registry.families():
            kind = seen_kinds.get(family.name)
            if kind is None:
                seen_kinds[family.name] = family.kind
                by_name[family.name] = len(emitted)
                emitted.append((
                    family.name,
                    [
                        f"# HELP {family.name} {family.help}",
                        f"# TYPE {family.name} {family.kind}",
                    ],
                ))
            elif kind != family.kind:
                raise ValueError(
                    f"metric {family.name!r} rendered as both {kind} and "
                    f"{family.kind}; cannot merge expositions"
                )
            emitted[by_name[family.name]][1].extend(_family_sample_lines(family))
    for _, family_lines in sorted(emitted):
        lines.extend(family_lines)
    return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


#: The process-default registry every instrumented module declares against.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry`."""
    return REGISTRY
