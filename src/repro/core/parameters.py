"""Parameterisation of the distributed computing system.

The paper (Section 2) characterises every node ``i`` by three exponential
rates:

* ``λ_di`` — the service rate (tasks completed per second while the node is
  up),
* ``λ_fi`` — the failure rate (inverse of the mean time to failure while
  up), and
* ``λ_ri`` — the recovery rate (inverse of the mean down time),

and models the delay of transferring a batch of ``L`` tasks between nodes as
an exponential random variable whose rate ``λ_ji`` depends on the batch
size.  The experiments of Section 4 show the mean delay grows linearly with
``L`` at roughly 0.02 s per task, so the batch rate used throughout is
``λ_ji = 1 / (d * L)`` with ``d`` the mean per-task delay.

:class:`NodeParameters` and :class:`SystemParameters` capture exactly this
parameterisation and are shared by the analytical solvers
(:mod:`repro.core.completion_time`), the policies
(:mod:`repro.core.policies`), the simulator (:mod:`repro.cluster`) and the
test-bed emulation (:mod:`repro.testbed`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Tuple

#: Mean per-task transfer delay measured on the paper's wireless test-bed
#: (Section 4, Fig. 2): approximately 0.02 seconds per task.
PAPER_MEAN_DELAY_PER_TASK = 0.02

#: Processing rates measured in the paper (Fig. 1): 1.08 tasks/s for the
#: 1 GHz Transmeta Crusoe node and 1.86 tasks/s for the 2.66 GHz P4 node.
PAPER_SERVICE_RATES = (1.08, 1.86)

#: Mean failure time for both nodes in the paper's experiments: 20 s.
PAPER_MEAN_FAILURE_TIME = 20.0

#: Mean recovery times in the paper's experiments: 10 s (node 1), 20 s (node 2).
PAPER_MEAN_RECOVERY_TIMES = (10.0, 20.0)


@dataclass(frozen=True)
class NodeParameters:
    """Stochastic description of one computing element.

    Parameters
    ----------
    service_rate:
        ``λ_d`` — mean number of tasks processed per unit time while up.
    failure_rate:
        ``λ_f`` — rate of the exponential time-to-failure.  ``0`` means the
        node never fails.
    recovery_rate:
        ``λ_r`` — rate of the exponential recovery (down) time.  ``0`` means
        a failed node never recovers (only meaningful together with
        ``failure_rate == 0`` or in pathological studies).
    initially_up:
        Whether the node is in the working state at ``t = 0``.
    name:
        Optional human-readable label (e.g. ``"crusoe"`` / ``"p4"``).
    """

    service_rate: float
    failure_rate: float = 0.0
    recovery_rate: float = 0.0
    initially_up: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if self.service_rate <= 0 or not math.isfinite(self.service_rate):
            raise ValueError(
                f"service_rate must be positive and finite, got {self.service_rate!r}"
            )
        if self.failure_rate < 0 or not math.isfinite(self.failure_rate):
            raise ValueError(
                f"failure_rate must be >= 0 and finite, got {self.failure_rate!r}"
            )
        if self.recovery_rate < 0 or not math.isfinite(self.recovery_rate):
            raise ValueError(
                f"recovery_rate must be >= 0 and finite, got {self.recovery_rate!r}"
            )
        if self.failure_rate > 0 and self.recovery_rate == 0:
            raise ValueError(
                "a node with a positive failure rate needs a positive recovery "
                "rate, otherwise the workload may never complete"
            )
        if not self.initially_up and self.recovery_rate == 0:
            raise ValueError("a node that starts down needs a positive recovery rate")

    # -- derived quantities ------------------------------------------------

    @property
    def mean_service_time(self) -> float:
        """Mean execution time per task (``1 / λ_d``)."""
        return 1.0 / self.service_rate

    @property
    def mean_time_to_failure(self) -> float:
        """Mean up time before a failure (``inf`` if the node never fails)."""
        if self.failure_rate == 0:
            return math.inf
        return 1.0 / self.failure_rate

    @property
    def mean_recovery_time(self) -> float:
        """Mean down time after a failure (``0`` if the node never fails)."""
        if self.recovery_rate == 0:
            return 0.0 if self.failure_rate == 0 else math.inf
        return 1.0 / self.recovery_rate

    @property
    def can_fail(self) -> bool:
        """Whether this node is subject to random failures."""
        return self.failure_rate > 0

    @property
    def availability(self) -> float:
        """Steady-state probability of being up, ``λ_r / (λ_f + λ_r)``.

        This is the factor used by eq. (8) of the paper to discount the
        compensation transfer sent to a potentially unreliable receiver.
        """
        if self.failure_rate == 0:
            return 1.0
        return self.recovery_rate / (self.failure_rate + self.recovery_rate)

    def without_failures(self) -> "NodeParameters":
        """A copy of this node with failures switched off (no-failure case)."""
        return replace(self, failure_rate=0.0, recovery_rate=0.0, initially_up=True)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe description; inverse of :meth:`from_dict`."""
        return {
            "service_rate": self.service_rate,
            "failure_rate": self.failure_rate,
            "recovery_rate": self.recovery_rate,
            "initially_up": self.initially_up,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeParameters":
        return cls(
            service_rate=float(data["service_rate"]),
            failure_rate=float(data.get("failure_rate", 0.0)),
            recovery_rate=float(data.get("recovery_rate", 0.0)),
            initially_up=bool(data.get("initially_up", True)),
            name=str(data.get("name", "")),
        )


@dataclass(frozen=True)
class TransferDelayModel:
    """Model of the random delay of transferring a batch of tasks.

    The paper's analysis treats the delay of a batch of ``L`` tasks as a
    single exponential random variable with mean ``mean_delay_per_task * L``
    (plus an optional fixed overhead representing connection set-up, which
    the paper absorbs into the exponential parameter).  The simulator can
    alternatively draw the batch delay as an Erlang sum of per-task
    exponentials (``kind="erlang"``), which has the same mean but a smaller
    variance and matches the measured per-task delay histogram more closely.
    """

    mean_delay_per_task: float = PAPER_MEAN_DELAY_PER_TASK
    fixed_overhead: float = 0.0
    kind: str = "exponential"

    _KINDS = ("exponential", "erlang", "deterministic")

    def __post_init__(self) -> None:
        if self.mean_delay_per_task < 0 or not math.isfinite(self.mean_delay_per_task):
            raise ValueError(
                f"mean_delay_per_task must be >= 0, got {self.mean_delay_per_task!r}"
            )
        if self.fixed_overhead < 0:
            raise ValueError(f"fixed_overhead must be >= 0, got {self.fixed_overhead!r}")
        if self.kind not in self._KINDS:
            raise ValueError(f"kind must be one of {self._KINDS}, got {self.kind!r}")

    def mean_delay(self, num_tasks: int) -> float:
        """Mean transfer delay of a batch of ``num_tasks`` tasks."""
        if num_tasks < 0:
            raise ValueError(f"num_tasks must be >= 0, got {num_tasks!r}")
        if num_tasks == 0:
            return 0.0
        return self.fixed_overhead + self.mean_delay_per_task * num_tasks

    def batch_rate(self, num_tasks: int) -> float:
        """Exponential rate ``λ_ji`` for a batch of ``num_tasks`` tasks.

        This is the rate the analytical model of Section 2 plugs into the
        regeneration equations; ``inf`` for an empty or instantaneous batch.
        """
        mean = self.mean_delay(num_tasks)
        if mean == 0.0:
            return math.inf
        return 1.0 / mean

    def with_mean_delay_per_task(self, mean_delay_per_task: float) -> "TransferDelayModel":
        """Copy of the model with a different per-task mean delay."""
        return replace(self, mean_delay_per_task=mean_delay_per_task)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe description; inverse of :meth:`from_dict`."""
        return {
            "mean_delay_per_task": self.mean_delay_per_task,
            "fixed_overhead": self.fixed_overhead,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransferDelayModel":
        return cls(
            mean_delay_per_task=float(
                data.get("mean_delay_per_task", PAPER_MEAN_DELAY_PER_TASK)
            ),
            fixed_overhead=float(data.get("fixed_overhead", 0.0)),
            kind=str(data.get("kind", "exponential")),
        )


@dataclass(frozen=True)
class SystemParameters:
    """Full stochastic description of the distributed system.

    Parameters
    ----------
    nodes:
        One :class:`NodeParameters` per computing element.
    delay:
        The :class:`TransferDelayModel` of the interconnect.  A single model
        is shared by all ordered node pairs, matching the paper's single
        wireless channel; per-pair heterogeneous delays can be expressed by
        :meth:`with_pairwise_delays`.
    pairwise_delay_overrides:
        Optional mapping ``(src, dst) -> TransferDelayModel`` for
        heterogeneous links.
    """

    nodes: Tuple[NodeParameters, ...]
    delay: TransferDelayModel = field(default_factory=TransferDelayModel)
    pairwise_delay_overrides: Tuple[Tuple[Tuple[int, int], TransferDelayModel], ...] = ()

    def __post_init__(self) -> None:
        nodes = tuple(self.nodes)
        object.__setattr__(self, "nodes", nodes)
        if len(nodes) < 1:
            raise ValueError("a system needs at least one node")
        for node in nodes:
            if not isinstance(node, NodeParameters):
                raise TypeError(f"expected NodeParameters, got {type(node).__name__}")
        overrides = tuple(self.pairwise_delay_overrides)
        object.__setattr__(self, "pairwise_delay_overrides", overrides)
        for (src, dst), model in overrides:
            self._check_index(src)
            self._check_index(dst)
            if src == dst:
                raise ValueError("a delay override cannot map a node to itself")
            if not isinstance(model, TransferDelayModel):
                raise TypeError("override values must be TransferDelayModel instances")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.nodes):
            raise IndexError(
                f"node index {index} out of range for a {len(self.nodes)}-node system"
            )

    # -- accessors ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of computing elements."""
        return len(self.nodes)

    @property
    def service_rates(self) -> Tuple[float, ...]:
        """``λ_d`` of every node."""
        return tuple(node.service_rate for node in self.nodes)

    @property
    def failure_rates(self) -> Tuple[float, ...]:
        """``λ_f`` of every node."""
        return tuple(node.failure_rate for node in self.nodes)

    @property
    def recovery_rates(self) -> Tuple[float, ...]:
        """``λ_r`` of every node."""
        return tuple(node.recovery_rate for node in self.nodes)

    @property
    def total_service_rate(self) -> float:
        """Aggregate processing capacity ``Σ λ_dk`` of the system."""
        return float(sum(self.service_rates))

    def node(self, index: int) -> NodeParameters:
        """Parameters of node ``index``."""
        self._check_index(index)
        return self.nodes[index]

    def delay_model(self, src: int, dst: int) -> TransferDelayModel:
        """Delay model of the (directed) link from ``src`` to ``dst``."""
        self._check_index(src)
        self._check_index(dst)
        for (s, d), model in self.pairwise_delay_overrides:
            if (s, d) == (src, dst):
                return model
        return self.delay

    def transfer_rate(self, src: int, dst: int, num_tasks: int) -> float:
        """Exponential batch-transfer rate ``λ_{dst,src}`` for ``num_tasks``."""
        return self.delay_model(src, dst).batch_rate(num_tasks)

    # -- derived systems -----------------------------------------------------

    def without_failures(self) -> "SystemParameters":
        """The same system with all failure/recovery processes switched off."""
        return replace(
            self, nodes=tuple(node.without_failures() for node in self.nodes)
        )

    def with_delay_per_task(self, mean_delay_per_task: float) -> "SystemParameters":
        """The same system with a different mean per-task transfer delay."""
        return replace(
            self,
            delay=self.delay.with_mean_delay_per_task(mean_delay_per_task),
            pairwise_delay_overrides=tuple(
                ((s, d), m.with_mean_delay_per_task(mean_delay_per_task))
                for (s, d), m in self.pairwise_delay_overrides
            ),
        )

    def with_nodes(self, nodes: Iterable[NodeParameters]) -> "SystemParameters":
        """The same delay model with a different set of nodes."""
        return replace(self, nodes=tuple(nodes))

    def with_pairwise_delays(
        self, overrides: Iterable[Tuple[Tuple[int, int], TransferDelayModel]]
    ) -> "SystemParameters":
        """Attach per-link delay overrides."""
        return replace(self, pairwise_delay_overrides=tuple(overrides))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe description (including per-link delay overrides,
        which :class:`~repro.scenarios.spec.SystemSpec` cannot express);
        inverse of :meth:`from_dict`."""
        return {
            "nodes": [node.to_dict() for node in self.nodes],
            "delay": self.delay.to_dict(),
            "pairwise_delay_overrides": [
                [[src, dst], model.to_dict()]
                for (src, dst), model in self.pairwise_delay_overrides
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemParameters":
        return cls(
            nodes=tuple(
                NodeParameters.from_dict(node) for node in data["nodes"]
            ),
            delay=TransferDelayModel.from_dict(data.get("delay", {})),
            pairwise_delay_overrides=tuple(
                ((int(src), int(dst)), TransferDelayModel.from_dict(model))
                for (src, dst), model in data.get("pairwise_delay_overrides", ())
            ),
        )

    def require_two_nodes(self) -> None:
        """Raise if this is not a two-node system (needed by eq. (4)/(5))."""
        if self.num_nodes != 2:
            raise ValueError(
                "the closed-form regeneration analysis of the paper applies to "
                f"two-node systems; this system has {self.num_nodes} nodes "
                "(use repro.core.multinode for the n-node generalisation)"
            )


def paper_parameters(
    mean_delay_per_task: float = PAPER_MEAN_DELAY_PER_TASK,
    with_failures: bool = True,
    delay_kind: str = "exponential",
) -> SystemParameters:
    """The two-node system used throughout the paper's evaluation.

    Node 1 is the 1 GHz Transmeta Crusoe laptop (1.08 tasks/s), node 2 the
    2.66 GHz Pentium 4 desktop (1.86 tasks/s).  Both nodes have a mean time
    to failure of 20 s; mean recovery times are 10 s and 20 s respectively.
    """
    recovery_rates = tuple(1.0 / t for t in PAPER_MEAN_RECOVERY_TIMES)
    failure_rate = 1.0 / PAPER_MEAN_FAILURE_TIME if with_failures else 0.0
    nodes = tuple(
        NodeParameters(
            service_rate=rate,
            failure_rate=failure_rate,
            recovery_rate=recovery if with_failures else 0.0,
            name=name,
        )
        for rate, recovery, name in zip(
            PAPER_SERVICE_RATES, recovery_rates, ("crusoe", "p4")
        )
    )
    return SystemParameters(
        nodes=nodes,
        delay=TransferDelayModel(
            mean_delay_per_task=mean_delay_per_task, kind=delay_kind
        ),
    )


# Backwards-compatible alias used in examples and experiment drivers.
def paper_two_node_parameters(**kwargs) -> SystemParameters:
    """Alias of :func:`paper_parameters` (kept for API clarity in examples)."""
    return paper_parameters(**kwargs)


def homogeneous_parameters(
    num_nodes: int,
    service_rate: float,
    failure_rate: float = 0.0,
    recovery_rate: float = 0.0,
    mean_delay_per_task: float = PAPER_MEAN_DELAY_PER_TASK,
) -> SystemParameters:
    """A convenience constructor for a homogeneous ``num_nodes``-node system."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes!r}")
    node = NodeParameters(
        service_rate=service_rate,
        failure_rate=failure_rate,
        recovery_rate=recovery_rate,
    )
    return SystemParameters(
        nodes=tuple(replace(node, name=f"node-{i}") for i in range(num_nodes)),
        delay=TransferDelayModel(mean_delay_per_task=mean_delay_per_task),
    )


def validate_workload(workload: Sequence[int], params: Optional[SystemParameters] = None) -> Tuple[int, ...]:
    """Validate an initial workload vector ``(m_1, ..., m_n)``.

    Returns the workload as a tuple of non-negative integers; raises
    ``ValueError`` when entries are negative or non-integral, and checks the
    length against ``params`` when given.
    """
    result = []
    for value in workload:
        as_int = int(value)
        if as_int != value or as_int < 0:
            raise ValueError(
                f"workload entries must be non-negative integers, got {value!r}"
            )
        result.append(as_int)
    if params is not None and len(result) != params.num_nodes:
        raise ValueError(
            f"workload has {len(result)} entries for a {params.num_nodes}-node system"
        )
    return tuple(result)
