"""Benchmark: regenerate Fig. 1 (per-task processing-time pdfs + fits)."""

import pytest

from repro.experiments.fig1_processing_pdf import run as run_fig1


@pytest.mark.benchmark(group="fig1")
def test_fig1_processing_time_calibration(benchmark, bench_once):
    result = bench_once(benchmark, run_fig1, tasks_per_node=2000, seed=101)
    print()
    print(result.render())
    # Shape checks mirroring the paper: exponential fits with the configured
    # rates (1.08 and 1.86 tasks/s), accepted by the KS test.
    assert result.fits[0].rate == pytest.approx(1.08, rel=0.1)
    assert result.fits[1].rate == pytest.approx(1.86, rel=0.1)
    assert all(fit.acceptable for fit in result.fits.values())
