"""Pool sizing: the one rule for capping worker fan-out.

Before the unified engine, the "never fork more workers than there is
work" cap lived twice — once in the process-pool Monte-Carlo runner and
once in the shard-executor resolution of :mod:`repro.distributed` — with
slightly different defaults.  Both now call :func:`cap_pool_size`.

The module is stdlib-only: executor resolution sits on paths that must not
import the numerical stack.
"""

from __future__ import annotations

import os
from typing import Optional

#: Default ceiling on implicitly-created process pools.  An explicit
#: ``workers=`` request is honoured up to the work-item count; only the
#: *unasked-for* default is kept polite on many-core machines.
DEFAULT_POOL_CAP = 4


def default_pool_size(cap: int = DEFAULT_POOL_CAP) -> int:
    """Pool size used when the caller did not ask for one."""
    return max(1, min(os.cpu_count() or 1, cap))


def cap_pool_size(requested: Optional[int], num_items: int) -> int:
    """Clamp a requested pool size to ``[1, num_items]``.

    ``requested=None`` starts from :func:`default_pool_size`.  A tiny
    ensemble must never pay start-up for workers that would receive no
    work at all, so the item count is a hard ceiling either way.
    """
    if num_items < 1:
        raise ValueError(f"num_items must be >= 1, got {num_items!r}")
    size = default_pool_size() if requested is None else int(requested)
    if size < 1:
        raise ValueError(f"pool size must be >= 1, got {requested!r}")
    return min(size, int(num_items))
