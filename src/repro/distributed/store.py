"""Content-addressed store for completed seed blocks (shard-level caching).

A much lighter cousin of :class:`repro.scenarios.cache.ResultCache`: one
JSON file per seed block, keyed by :func:`repro.distributed.plan.block_key`
and sharded into two-hex-digit directories.  Block payloads are small
(a list of completion times plus an accumulator state), so there is no
array sidecar — everything round-trips through JSON, which also keeps this
module numpy-free.

The store lives under ``<cache root>/shards/`` so evicting the scenario
cache and the shard cache together is one directory removal, and shares
the same root resolution (``root`` argument → ``REPRO_CACHE_DIR`` →
``~/.cache/repro``).  ``hits``/``misses`` counters make cache-reuse
assertions (resume, delta-computation) direct.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.metrics import REGISTRY
from repro.scenarios.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

# Shared families with the scenario result cache — distinguished by the
# `store` label ("shard" here, "result" there).
_CACHE_REQUESTS = REGISTRY.counter(
    "repro_cache_requests_total",
    "Cache lookups by store and outcome.",
    labelnames=("store", "outcome"),
)
_CACHE_WRITES = REGISTRY.counter(
    "repro_cache_writes_total",
    "Cache entries written, by store.",
    labelnames=("store",),
)
_CACHE_WRITE_BYTES = REGISTRY.counter(
    "repro_cache_write_bytes_total",
    "Bytes written into the cache, by store.",
    labelnames=("store",),
)

#: Version of the block payload layout; mismatches read as misses.
BLOCK_FORMAT_VERSION = 1


class ShardStore:
    """On-disk map from block keys to block result payloads."""

    def __init__(self, root: Union[None, str, Path] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser() / "shards"
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored block payload, or ``None`` (missing/corrupt/stale)."""
        try:
            payload = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            _CACHE_REQUESTS.labels(store="shard", outcome="miss").inc()
            return None
        if payload.get("format_version") != BLOCK_FORMAT_VERSION:
            self.misses += 1
            _CACHE_REQUESTS.labels(store="shard", outcome="miss").inc()
            return None
        self.hits += 1
        _CACHE_REQUESTS.labels(store="shard", outcome="hit").inc()
        return payload["block"]

    def put(self, key: str, block: Dict[str, Any]) -> Path:
        """Persist one block payload atomically (write + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format_version": BLOCK_FORMAT_VERSION, "key": key, "block": block}
        fd, staging = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".json", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            written_bytes = os.path.getsize(staging)
            os.replace(staging, path)
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
        _CACHE_WRITES.labels(store="shard").inc()
        _CACHE_WRITE_BYTES.labels(store="shard").inc(written_bytes)
        return path

    def clear(self) -> int:
        """Drop every block; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("??/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
