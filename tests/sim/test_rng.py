"""Tests for reproducible random-stream management."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams, hash_name, spawn_seeds


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(8).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        assert not np.allclose(streams.stream("a").random(5), streams.stream("b").random(5))

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_creation_order_is_irrelevant(self):
        first = RandomStreams(3)
        _ = first.stream("alpha")
        values_beta_after = first.stream("beta").random(3)

        second = RandomStreams(3)
        values_beta_first = second.stream("beta").random(3)
        assert np.allclose(values_beta_after, values_beta_first)

    def test_spawn_produces_independent_children(self):
        children = RandomStreams(5).spawn(3)
        draws = [child.stream("x").random(4) for child in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_is_reproducible(self):
        a = RandomStreams(5).spawn(2)[1].stream("svc").random(3)
        b = RandomStreams(5).spawn(2)[1].stream("svc").random(3)
        assert np.allclose(a, b)

    def test_spawned_children_differ_from_parent(self):
        parent = RandomStreams(5)
        child = parent.spawn(1)[0]
        assert not np.allclose(parent.stream("x").random(4), child.stream("x").random(4))

    def test_contains_and_len(self):
        streams = RandomStreams(0)
        assert "x" not in streams
        streams.stream("x")
        assert "x" in streams
        assert len(streams) == 1
        assert list(iter(streams)) == ["x"]

    def test_names_listing(self):
        streams = RandomStreams(0)
        streams.stream("b")
        streams.stream("a")
        assert set(streams.names()) == {"a", "b"}

    def test_root_entropy_exposed(self):
        assert RandomStreams(123).root_entropy == (123,)

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(9)
        streams = RandomStreams(sequence)
        assert streams.stream("x") is not None


class TestHelpers:
    def test_hash_name_is_stable(self):
        assert hash_name("node-0.service") == hash_name("node-0.service")

    def test_hash_name_differs_for_different_names(self):
        assert hash_name("a") != hash_name("b")

    def test_hash_name_is_32_bit(self):
        assert 0 <= hash_name("anything at all") < 2**32

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_spawn_seeds_accepts_seed_sequence(self):
        root = np.random.SeedSequence(4)
        seeds = spawn_seeds(root, 2)
        assert len(seeds) == 2

    def test_spawn_seeds_children_distinct(self):
        seeds = spawn_seeds(1, 2)
        a = np.random.default_rng(seeds[0]).random(4)
        b = np.random.default_rng(seeds[1]).random(4)
        assert not np.allclose(a, b)
