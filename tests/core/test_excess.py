"""Tests for the excess-load computation and partition fractions (eqs. (6)-(7))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import NodeParameters, SystemParameters
from repro.core.policies.excess import (
    excess_loads,
    fair_shares,
    initial_excess_transfers,
    partition_fractions,
)


def make_params(rates):
    return SystemParameters(nodes=tuple(NodeParameters(r) for r in rates))


class TestFairShares:
    def test_paper_example(self, paper_params):
        """(100, 60) with rates (1.08, 1.86): fair shares ≈ (58.8, 101.2)."""
        shares = fair_shares((100, 60), paper_params)
        assert shares[0] == pytest.approx(1.08 / 2.94 * 160, rel=1e-6)
        assert shares[1] == pytest.approx(1.86 / 2.94 * 160, rel=1e-6)

    def test_shares_sum_to_total(self, paper_params):
        assert sum(fair_shares((123, 45), paper_params)) == pytest.approx(168.0)

    def test_equal_rates_split_evenly(self):
        params = make_params([2.0, 2.0])
        assert fair_shares((10, 30), params) == (pytest.approx(20.0), pytest.approx(20.0))


class TestExcessLoads:
    def test_only_overloaded_nodes_have_excess(self, paper_params):
        excesses = excess_loads((100, 60), paper_params)
        assert excesses[0] == pytest.approx(100 - 1.08 / 2.94 * 160)
        assert excesses[1] == 0.0

    def test_faster_node_has_smaller_excess(self):
        """With equal loads the slower node is the overloaded one (eq. (6) text)."""
        params = make_params([1.0, 3.0])
        excesses = excess_loads((50, 50), params)
        assert excesses[0] > 0.0
        assert excesses[1] == 0.0

    def test_balanced_system_has_no_excess(self):
        params = make_params([1.0, 1.0])
        assert excess_loads((25, 25), params) == (0.0, 0.0)

    def test_excess_never_negative(self, three_node_params):
        assert all(e >= 0.0 for e in excess_loads((5, 100, 1), three_node_params))


class TestPartitionFractions:
    def test_two_node_case_sends_everything_to_the_other(self, paper_params):
        assert partition_fractions((100, 60), paper_params, sender=0) == (0.0, 1.0)
        assert partition_fractions((100, 60), paper_params, sender=1) == (1.0, 0.0)

    def test_fractions_sum_to_one(self, three_node_params):
        fractions = partition_fractions((60, 10, 10), three_node_params, sender=0)
        assert fractions[0] == 0.0
        assert sum(fractions) == pytest.approx(1.0)

    def test_less_backlogged_receiver_gets_more(self):
        params = make_params([1.0, 1.0, 1.0])
        fractions = partition_fractions((90, 0, 30), params, sender=0)
        # Node 1 is empty, node 2 holds 30 tasks -> node 1 receives more.
        assert fractions[1] > fractions[2]

    def test_empty_receivers_split_evenly(self):
        params = make_params([1.0, 1.0, 1.0])
        fractions = partition_fractions((90, 0, 0), params, sender=0)
        assert fractions[1] == pytest.approx(fractions[2]) == pytest.approx(0.5)

    def test_speed_weighting_of_backlog(self):
        """Equal loads, but the faster receiver drains its backlog sooner and
        therefore receives the larger fraction."""
        params = make_params([1.0, 4.0, 1.0])
        fractions = partition_fractions((90, 20, 20), params, sender=0)
        assert fractions[1] > fractions[2]

    def test_invalid_sender_rejected(self, paper_params):
        with pytest.raises(IndexError):
            partition_fractions((10, 10), paper_params, sender=5)

    @given(
        loads=st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=0, max_value=200),
        ),
        sender=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_fractions_form_a_distribution(self, loads, sender):
        params = make_params([1.5, 1.0, 0.5])
        fractions = partition_fractions(loads, params, sender)
        assert fractions[sender] == 0.0
        assert sum(fractions) == pytest.approx(1.0)
        assert all(f >= -1e-12 for f in fractions)


class TestInitialExcessTransfers:
    def test_paper_workload_full_gain(self, paper_params):
        """(100, 60) with K=1: node 1 ships its whole excess (≈41 tasks) to node 2."""
        transfers = initial_excess_transfers((100, 60), paper_params, gain=1.0)
        assert len(transfers) == 1
        assert transfers[0].source == 0
        assert transfers[0].destination == 1
        assert transfers[0].num_tasks == 41

    def test_gain_scales_transfer(self, paper_params):
        half = initial_excess_transfers((100, 60), paper_params, gain=0.5)
        assert half[0].num_tasks == round(0.5 * 41.22448979591837)

    def test_zero_gain_transfers_nothing(self, paper_params):
        assert initial_excess_transfers((100, 60), paper_params, gain=0.0) == []

    def test_gain_out_of_range_rejected(self, paper_params):
        with pytest.raises(ValueError):
            initial_excess_transfers((100, 60), paper_params, gain=1.5)

    def test_balanced_workload_needs_no_transfers(self):
        params = make_params([1.0, 1.0])
        assert initial_excess_transfers((30, 30), params, gain=1.0) == []

    def test_transfer_capped_by_source_load(self):
        params = make_params([0.01, 10.0])
        transfers = initial_excess_transfers((5, 0), params, gain=1.0)
        assert transfers[0].num_tasks <= 5

    def test_three_node_excess_spread(self, three_node_params):
        transfers = initial_excess_transfers((100, 0, 0), three_node_params, gain=1.0)
        destinations = {t.destination for t in transfers}
        assert destinations == {1, 2}
        assert all(t.source == 0 for t in transfers)

    @given(
        m0=st.integers(min_value=0, max_value=300),
        m1=st.integers(min_value=0, max_value=300),
        gain=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfers_never_exceed_source_load(self, m0, m1, gain):
        params = make_params([1.08, 1.86])
        transfers = initial_excess_transfers((m0, m1), params, gain=gain)
        sent = {0: 0, 1: 0}
        for transfer in transfers:
            sent[transfer.source] += transfer.num_tasks
        assert sent[0] <= m0
        assert sent[1] <= m1
