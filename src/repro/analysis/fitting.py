"""Exponential fits and goodness-of-fit checks (Figs. 1 and 2).

The paper approximates the measured per-task processing times and transfer
delays with exponential laws and feeds the fitted rates into the analytical
model.  :func:`fit_exponential` performs the maximum-likelihood fit (the
sample-mean inverse) together with a Kolmogorov–Smirnov goodness-of-fit
check so the approximation quality is quantified rather than eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ExponentialFit:
    """Result of fitting an exponential distribution to samples."""

    rate: float
    mean: float
    n_samples: int
    ks_statistic: float
    ks_pvalue: float
    log_likelihood: float

    @property
    def acceptable(self) -> bool:
        """Whether the exponential hypothesis is *not* rejected at 1 %."""
        return self.ks_pvalue > 0.01

    def pdf(self, x: Sequence[float]) -> np.ndarray:
        """Fitted density evaluated at ``x`` (the solid curves of Fig. 1/2)."""
        points = np.asarray(x, dtype=float)
        values = np.zeros_like(points)
        positive = points >= 0
        values[positive] = self.rate * np.exp(-self.rate * points[positive])
        return values

    def cdf(self, x: Sequence[float]) -> np.ndarray:
        """Fitted distribution function evaluated at ``x``."""
        points = np.asarray(x, dtype=float)
        values = np.zeros_like(points)
        positive = points >= 0
        values[positive] = 1.0 - np.exp(-self.rate * points[positive])
        return values


def fit_exponential(samples: Sequence[float]) -> ExponentialFit:
    """Maximum-likelihood exponential fit with a KS goodness-of-fit check."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    if np.any(data < 0):
        raise ValueError("samples must be non-negative")
    mean = float(data.mean())
    if mean <= 0:
        raise ValueError("samples must have a positive mean")
    rate = 1.0 / mean
    ks_stat, ks_pvalue = stats.kstest(data, "expon", args=(0.0, mean))
    log_likelihood = float(data.size * np.log(rate) - rate * data.sum())
    return ExponentialFit(
        rate=rate,
        mean=mean,
        n_samples=int(data.size),
        ks_statistic=float(ks_stat),
        ks_pvalue=float(ks_pvalue),
        log_likelihood=log_likelihood,
    )
