"""Tests for the Table container."""

import pytest

from repro.analysis.tables import Table


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(["a", "a"])

    def test_add_and_read_rows(self):
        table = Table(["x", "y"], title="demo")
        table.add_row({"x": 1, "y": 2.0})
        table.add_row({"x": 3, "y": 4.0, "extra": "ignored"})
        assert len(table) == 2
        assert table[0] == {"x": 1, "y": 2.0}
        assert table.column("y") == [2.0, 4.0]

    def test_missing_column_rejected(self):
        table = Table(["x", "y"])
        with pytest.raises(ValueError):
            table.add_row({"x": 1})

    def test_unknown_column_lookup_rejected(self):
        table = Table(["x"])
        with pytest.raises(KeyError):
            table.column("z")

    def test_extend_and_iterate(self):
        table = Table(["x"])
        table.extend([{"x": i} for i in range(3)])
        assert [row["x"] for row in table] == [0, 1, 2]

    def test_sort_by(self):
        table = Table(["x"])
        table.extend([{"x": 3}, {"x": 1}, {"x": 2}])
        assert table.sort_by("x").column("x") == [1, 2, 3]
        assert table.sort_by("x", reverse=True).column("x") == [3, 2, 1]
        # original untouched
        assert table.column("x") == [3, 1, 2]

    def test_filter(self):
        table = Table(["x"])
        table.extend([{"x": i} for i in range(5)])
        assert table.filter(lambda row: row["x"] % 2 == 0).column("x") == [0, 2, 4]

    def test_to_csv(self, tmp_path):
        table = Table(["name", "value"])
        table.add_row({"name": "a", "value": 1.23456})
        path = tmp_path / "out.csv"
        table.to_csv(str(path))
        content = path.read_text().splitlines()
        assert content[0] == "name,value"
        assert content[1].startswith("a,1.23")
