"""Statistical parity: the vectorized kernel samples the reference law.

The vectorized backend draws from a different random stream than the
event-driven simulator, so individual realisations never match; the two
samples must nevertheless come from the same distribution.  Each test runs
both backends at a fixed seed and applies a two-sample Kolmogorov–Smirnov
test — fixed seeds make the verdict deterministic, not flaky.

The quick variants here keep tier-1 fast; ``-m slow`` adds paper-scale
workloads on the paper's own system (the CI bench job runs those).
"""

from __future__ import annotations

import pytest
from scipy import stats

from repro.backends.base import get_backend
from repro.core.parameters import paper_parameters
from repro.core.policies.baselines import (
    NoBalancing,
    ProportionalOneShot,
    SendAllOnFailure,
)
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2

#: KS significance level of the parity gate (matches the bench harness).
ALPHA = 0.01

#: One representative of every registered policy kind (see PolicySpec).
POLICIES = {
    "lbp1": lambda: LBP1(0.35),
    "lbp2": lambda: LBP2(1.0),
    "none": lambda: NoBalancing(),
    "proportional": lambda: ProportionalOneShot(),
    "send_all": lambda: SendAllOnFailure(),
}


def ks_pvalue(params, policy, workload, realisations, seed):
    reference = get_backend("reference").run_batch(
        params, policy, workload, realisations, seed=seed
    )
    vectorized = get_backend("vectorized").run_batch(
        params, policy, workload, realisations, seed=seed
    )
    return stats.ks_2samp(
        reference.completion_times, vectorized.completion_times
    ).pvalue


@pytest.mark.parametrize("kind", sorted(POLICIES))
def test_parity_on_fast_system(fast_params, kind):
    pvalue = ks_pvalue(fast_params, POLICIES[kind](), (30, 18), 300, seed=42)
    assert pvalue > ALPHA, f"{kind}: KS p={pvalue:.4f} <= {ALPHA}"


@pytest.mark.parametrize("kind", sorted(POLICIES))
def test_parity_on_three_node_system(three_node_params, kind):
    pvalue = ks_pvalue(
        three_node_params, POLICIES[kind](), (20, 14, 8), 250, seed=7
    )
    assert pvalue > ALPHA, f"{kind}: KS p={pvalue:.4f} <= {ALPHA}"


def test_parity_without_failures(no_failure_params):
    pvalue = ks_pvalue(no_failure_params, LBP1(0.45), (40, 24), 250, seed=3)
    assert pvalue > ALPHA


def test_parity_with_compensation_disabled(fast_params):
    pvalue = ks_pvalue(fast_params, LBP2(1.0, compensate=False), (30, 18), 250, seed=5)
    assert pvalue > ALPHA


@pytest.mark.slow
@pytest.mark.parametrize("kind", sorted(POLICIES))
def test_parity_on_paper_system(kind):
    """Paper-scale gate: the paper's two-node system and primary workload."""
    pvalue = ks_pvalue(
        paper_parameters(), POLICIES[kind](), (100, 60), 600, seed=1234
    )
    assert pvalue > ALPHA, f"{kind}: KS p={pvalue:.4f} <= {ALPHA}"
