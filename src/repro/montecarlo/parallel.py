"""Process-pool execution of Monte-Carlo realisations.

Each realisation is an independent discrete-event simulation, so the
embarrassingly parallel pattern applies: spawn one seed sequence per
realisation from the root seed, ship ``(params, policy, workload, seed)`` to
a worker process, and collect the scalar completion times.  Seeds are
spawned *before* distribution so the result is bit-identical to the serial
runner regardless of the number of workers or the completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionBackend

import numpy as np

from repro.cluster.system import DistributedSystem
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.runner import MonteCarloEstimate
from repro.montecarlo.statistics import summarize
from repro.sim.rng import RandomStreams, SeedLike, spawn_seeds


def _run_single(args) -> float:
    """Worker entry point: run one realisation and return its completion time."""
    params, policy, workload, seed, horizon, system_kwargs = args
    system = DistributedSystem(
        params, policy, workload, streams=RandomStreams(seed), **system_kwargs
    )
    return system.run(horizon=horizon).completion_time


def run_monte_carlo_auto(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
    workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    backend: Union[None, str, "ExecutionBackend"] = None,
    **system_kwargs,
) -> MonteCarloEstimate:
    """Backend-aware Monte-Carlo: the single dispatch point.

    Used by the sweep functions, the experiment drivers, the scenario
    orchestrator and the benchmark harness.  ``backend`` selects the
    execution strategy (see :mod:`repro.backends`):

    * ``None`` — the event-driven simulator: serial when neither
      ``workers`` nor ``executor`` is given, otherwise
      :func:`run_monte_carlo_parallel`.  Results are bit-identical either
      way, because per-realisation seeds derive from ``seed`` before any
      distribution.
    * a name or instance — that backend's :meth:`run_batch`.  The built-in
      ``"reference"`` backend reproduces the ``None`` dispatch exactly; the
      vectorized kernel advances the whole batch in-process and ignores the
      pool arguments.
    """
    if backend is not None:
        from repro.backends.base import resolve_backend

        # Every named backend dispatches through its run_batch —
        # ReferenceBackend already encodes the serial-vs-pool switch below,
        # so a backend registered to replace "reference" is honoured too.
        return resolve_backend(backend).run_batch(
            params,
            policy,
            workload,
            num_realisations,
            seed=seed,
            horizon=horizon,
            workers=workers,
            executor=executor,
            **system_kwargs,
        )
    if executor is None and workers is None:
        from repro.montecarlo.runner import run_monte_carlo

        return run_monte_carlo(
            params, policy, workload, num_realisations,
            seed=seed, horizon=horizon, **system_kwargs,
        )
    return run_monte_carlo_parallel(
        params, policy, workload, num_realisations,
        seed=seed, horizon=horizon, max_workers=workers, executor=executor,
        **system_kwargs,
    )


def run_monte_carlo_parallel(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
    max_workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    confidence_level: float = 0.95,
    **system_kwargs,
) -> MonteCarloEstimate:
    """Parallel version of :func:`repro.montecarlo.runner.run_monte_carlo`.

    Falls back to in-process execution when ``max_workers`` is 0 or 1 (useful
    in environments where forking worker processes is undesirable).

    An externally-managed ``executor`` can be supplied to amortise pool
    start-up over many calls (the scenario orchestrator shares one pool
    across every point of a sweep); it takes precedence over ``max_workers``
    and is *not* shut down by this function.  Because the per-realisation
    seeds are spawned before distribution, the estimate is bit-identical
    whichever execution path runs it.
    """
    if num_realisations < 1:
        raise ValueError(f"num_realisations must be >= 1, got {num_realisations!r}")
    workload_obj = workload if isinstance(workload, Workload) else Workload(tuple(workload))
    seeds = spawn_seeds(seed, num_realisations)
    jobs = [
        (params, policy, workload_obj, child, horizon, system_kwargs) for child in seeds
    ]

    if executor is not None:
        times = np.array(list(executor.map(_run_single, jobs, chunksize=8)))
    elif max_workers is not None and max_workers <= 1:
        times = np.array([_run_single(job) for job in jobs])
    else:
        # Never fork more processes than there are realisations: a tiny
        # --quick ensemble on a many-core box would otherwise pay start-up
        # for a crowd of workers that receive no job at all.
        pool_size = max_workers if max_workers is not None else os.cpu_count() or 1
        pool_size = min(pool_size, num_realisations)
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            times = np.array(list(pool.map(_run_single, jobs, chunksize=8)))

    return MonteCarloEstimate(
        policy_name=policy.name,
        workload=tuple(workload_obj),
        completion_times=times,
        summary=summarize(times, confidence_level=confidence_level),
        results=[],
    )
