"""The ``repro worker`` process: pull shard work items over HTTP, execute,
post partial results back.

A worker is deliberately dumb: it registers with a running results service
(``repro serve``), then loops *claim → execute → post*.  All scheduling
intelligence — load balancing, retries, timeouts, reassignment on worker
death — lives on the service side (:mod:`repro.distributed.scheduler` over
:class:`repro.service.shards.ShardBoard`), so workers can appear, crash
and reconnect at any time without coordination.

Failures inside a work item are posted back as structured errors (the
scheduler decides whether to retry elsewhere); failures of the *service
connection* are retried with a backoff until ``max_idle`` expires.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from repro.distributed.work import execute_work_item, shard_outcome_error, worker_name
from repro.obs.metrics import REGISTRY

# Worker-process-local: these live in the `repro worker` process itself
# (snapshot/merge them if a fleet aggregator ever wants the totals).
_CLAIMS = REGISTRY.counter(
    "repro_worker_claims_total",
    "Work-claim attempts, by outcome (item/empty/error).",
    labelnames=("outcome",),
)
_CLAIM_SECONDS = REGISTRY.histogram(
    "repro_worker_claim_seconds",
    "Latency of the claim-work HTTP round-trip.",
)
_ITEMS = REGISTRY.counter(
    "repro_worker_items_total",
    "Work items executed, by outcome.",
    labelnames=("outcome",),
)
_BLOCKS = REGISTRY.counter(
    "repro_worker_blocks_total",
    "Seed blocks computed by this worker (blocks/sec numerator).",
)
_BUSY_SECONDS = REGISTRY.counter(
    "repro_worker_busy_seconds_total",
    "Seconds spent executing work items (blocks/sec denominator).",
)

#: Seconds between telemetry piggybacks on *empty* claims; result posts
#: always carry telemetry (results are the interesting moments).
TELEMETRY_INTERVAL = 5.0


class _Telemetry:
    """Piggybacked fleet telemetry: cumulative snapshot + sequence number.

    The snapshot is the worker's whole-registry truth, so the service can
    replace (not add) on ingest — a re-posted payload after an HTTP retry
    is harmless.  ``seq`` increments per send so the aggregator can drop
    reordered duplicates.
    """

    def __init__(self, name: str, interval: float = TELEMETRY_INTERVAL) -> None:
        self.name = name
        self.interval = interval
        self._seq = 0
        self._last_sent: Optional[float] = None

    def payload(self) -> dict:
        self._seq += 1
        self._last_sent = time.monotonic()
        return {
            "name": self.name,
            "seq": self._seq,
            "metrics": REGISTRY.snapshot(),
        }

    def payload_if_due(self) -> Optional[dict]:
        if (
            self._last_sent is not None
            and time.monotonic() - self._last_sent < self.interval
        ):
            return None
        return self.payload()


def run_worker(
    connect: str,
    name: Optional[str] = None,
    poll_interval: float = 0.2,
    max_idle: Optional[float] = None,
    once: bool = False,
    log=print,
) -> int:
    """Serve shard work items from the service at ``connect`` until stopped.

    ``max_idle`` exits cleanly after that many seconds without work (used
    by tests and batch jobs); ``once`` exits after the first executed item.
    Returns a process exit code.
    """
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(connect, timeout=30.0)
    me = worker_name(name)
    telemetry = _Telemetry(me)

    def register() -> Optional[str]:
        """Register with retry — the service may not have bound yet
        (`repro serve & repro worker` is the documented startup pattern)."""
        started = time.monotonic()
        while True:
            try:
                return client.register_worker(me)
            except (ServiceError, OSError) as error:
                if max_idle is not None and time.monotonic() - started > max_idle:
                    log(
                        f"repro worker {me}: cannot register at {connect} "
                        f"({error}); exiting",
                        file=sys.stderr,
                    )
                    return None
                time.sleep(max(poll_interval, 0.5))

    worker_id = register()
    if worker_id is None:
        return 1
    log(f"repro worker {me} registered as {worker_id} at {connect}", flush=True)

    idle_since = time.monotonic()
    executed = 0
    while True:
        claim_started = time.monotonic()
        try:
            item = client.claim_work(
                worker_id, telemetry=telemetry.payload_if_due()
            )
            _CLAIM_SECONDS.observe(time.monotonic() - claim_started)
        except ServiceError as error:
            _CLAIMS.labels(outcome="error").inc()
            if error.status == 404:
                # The board purged us as long-dead (e.g. after a laptop
                # sleep); a fresh registration picks up where we left off.
                worker_id = register()
                if worker_id is None:
                    return 1
                log(f"repro worker {me}: re-registered as {worker_id}")
                continue
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                log(f"repro worker {me}: service errors ({error}); exiting")
                return 1
            time.sleep(max(poll_interval, 0.5))
            continue
        except OSError as error:
            _CLAIMS.labels(outcome="error").inc()
            # The service may be restarting or gone; linger until max_idle.
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                log(f"repro worker {me}: service unreachable ({error}); exiting")
                return 1
            time.sleep(max(poll_interval, 0.5))
            continue

        if item is None:
            _CLAIMS.labels(outcome="empty").inc()
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                log(f"repro worker {me}: idle for {max_idle:g}s; exiting")
                return 0
            time.sleep(poll_interval)
            continue

        _CLAIMS.labels(outcome="item").inc()
        idle_since = time.monotonic()
        shard = item.get("shard")
        log(f"repro worker {me}: executing shard {shard} of task {item.get('task')}")
        busy_started = time.monotonic()
        try:
            result = execute_work_item(item, worker=me)
        except Exception as error:  # noqa: BLE001 - worker survives bad items
            result, outcome_error = None, shard_outcome_error(error)
            _ITEMS.labels(outcome="failed").inc()
            log(f"repro worker {me}: shard {shard} failed: {error}", file=sys.stderr)
        else:
            outcome_error = None
            _ITEMS.labels(outcome="ok").inc()
            _BLOCKS.inc(len(result["blocks"]))
        _BUSY_SECONDS.inc(time.monotonic() - busy_started)
        try:
            client.post_work_result(
                worker_id,
                item_id=item["id"],
                result=result,
                error=outcome_error,
                telemetry=telemetry.payload(),
            )
        except (ServiceError, OSError) as error:
            # The result is lost (the scheduler's shard timeout will
            # reassign it); the worker itself survives and keeps polling.
            log(
                f"repro worker {me}: could not post shard {shard} "
                f"({error}); continuing",
                file=sys.stderr,
            )
        else:
            if outcome_error is None:
                executed += 1
                log(f"repro worker {me}: shard {shard} done")
        idle_since = time.monotonic()
        if once and executed:
            return 0
