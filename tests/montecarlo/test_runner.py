"""Tests for the Monte-Carlo realisation runner."""

import numpy as np
import pytest

from repro.core.completion_time import CompletionTimeSolver
from repro.core.policies import LBP1, NoBalancing
from repro.montecarlo.runner import MonteCarloEstimate, MonteCarloRunner, run_monte_carlo


class TestRunner:
    def test_requires_positive_realisations(self, fast_params):
        runner = MonteCarloRunner(fast_params, NoBalancing(), (10, 10), seed=0)
        with pytest.raises(ValueError):
            runner.run(0)

    def test_estimate_contents(self, fast_params):
        estimate = run_monte_carlo(fast_params, LBP1(0.5), (20, 5), 10, seed=1)
        assert isinstance(estimate, MonteCarloEstimate)
        assert estimate.num_realisations == 10
        assert len(estimate.completion_times) == 10
        assert estimate.policy_name == "LBP-1"
        assert estimate.workload == (20, 5)
        assert estimate.summary.ci_low <= estimate.mean_completion_time <= estimate.summary.ci_high

    def test_reproducible_with_same_seed(self, fast_params):
        a = run_monte_carlo(fast_params, LBP1(0.5), (20, 5), 5, seed=3).completion_times
        b = run_monte_carlo(fast_params, LBP1(0.5), (20, 5), 5, seed=3).completion_times
        assert np.allclose(a, b)

    def test_realisations_are_independent(self, fast_params):
        estimate = run_monte_carlo(fast_params, NoBalancing(), (30, 30), 20, seed=2)
        assert len(np.unique(estimate.completion_times)) > 1

    def test_results_kept_when_requested(self, fast_params):
        runner = MonteCarloRunner(
            fast_params, NoBalancing(), (5, 5), seed=0, keep_results=True
        )
        estimate = runner.run(4)
        assert len(estimate.results) == 4
        assert all(result.total_completed == 10 for result in estimate.results)

    def test_results_dropped_by_default(self, fast_params):
        estimate = run_monte_carlo(fast_params, NoBalancing(), (5, 5), 4, seed=0)
        assert estimate.results == []

    def test_progress_callback(self, fast_params):
        seen = []
        runner = MonteCarloRunner(fast_params, NoBalancing(), (5, 5), seed=0)
        runner.run(3, progress=lambda k, result: seen.append(k))
        assert seen == [0, 1, 2]

    def test_percentiles(self, fast_params):
        estimate = run_monte_carlo(fast_params, NoBalancing(), (20, 20), 30, seed=4)
        assert estimate.percentile(0) == pytest.approx(estimate.completion_times.min())
        assert estimate.percentile(100) == pytest.approx(estimate.completion_times.max())

    def test_system_kwargs_forwarded(self, fast_params):
        runner = MonteCarloRunner(
            fast_params, NoBalancing(), (5, 5), seed=0, keep_results=True,
            record_trace=True,
        )
        estimate = runner.run(2)
        assert all(result.trace is not None for result in estimate.results)


class TestStatisticalAgreementWithTheory:
    def test_mc_mean_matches_regeneration_model(self, fast_params):
        """The simulator and eq. (4) describe the same system."""
        solver = CompletionTimeSolver(fast_params)
        predicted = solver.lbp1((40, 10), 0.4, sender=0, receiver=1).mean
        estimate = run_monte_carlo(
            fast_params, LBP1(0.4, sender=0, receiver=1), (40, 10), 250, seed=11
        )
        # within 3 standard errors
        margin = 3 * estimate.summary.standard_error
        assert abs(estimate.mean_completion_time - predicted) < margin + 0.05 * predicted


class TestBackendSelection:
    def test_default_backend_matches_explicit_reference(self, fast_params):
        explicit = run_monte_carlo(
            fast_params, LBP1(0.5), (20, 5), 5, seed=3, backend="reference"
        )
        implicit = run_monte_carlo(fast_params, LBP1(0.5), (20, 5), 5, seed=3)
        np.testing.assert_array_equal(
            explicit.completion_times, implicit.completion_times
        )

    def test_runner_is_the_engines_block_primitive(self, fast_params):
        """The engine runs each seed block through MonteCarloRunner: a
        one-block ensemble equals the primitive seeded with block 0's seed."""
        from repro.distributed.plan import block_seed

        engine_run = run_monte_carlo(fast_params, LBP1(0.5), (20, 5), 5, seed=3)
        primitive = MonteCarloRunner(
            fast_params, LBP1(0.5), (20, 5), seed=block_seed(3, 0)
        ).run(5)
        np.testing.assert_array_equal(
            engine_run.completion_times, primitive.completion_times
        )

    def test_vectorized_backend_runs_and_aggregates(self, fast_params):
        estimate = run_monte_carlo(
            fast_params, LBP1(0.5), (20, 5), 12, seed=3, backend="vectorized"
        )
        assert estimate.num_realisations == 12
        assert estimate.results == []
        assert estimate.policy_name == "LBP-1"

    def test_repeated_runs_draw_fresh_samples(self, fast_params):
        # Like the reference path (which spawns child streams per run),
        # repeated run() calls on one runner must not replay the same batch.
        runner = MonteCarloRunner(
            fast_params, LBP1(0.5), (20, 5), seed=3, backend="vectorized"
        )
        first = runner.run(8).completion_times
        second = runner.run(8).completion_times
        assert not np.array_equal(first, second)

    def test_vectorized_backend_is_deterministic(self, fast_params):
        a = run_monte_carlo(
            fast_params, LBP1(0.5), (20, 5), 8, seed=3, backend="vectorized"
        )
        b = run_monte_carlo(
            fast_params, LBP1(0.5), (20, 5), 8, seed=3, backend="vectorized"
        )
        np.testing.assert_array_equal(a.completion_times, b.completion_times)

    def test_vectorized_rejects_keep_results(self, fast_params):
        from repro.backends.base import BackendUnsupportedError

        runner = MonteCarloRunner(
            fast_params, LBP1(0.5), (20, 5), seed=3,
            keep_results=True, backend="vectorized",
        )
        with pytest.raises(BackendUnsupportedError, match="keep_results"):
            runner.run(4)

    def test_vectorized_rejects_progress_callbacks(self, fast_params):
        runner = MonteCarloRunner(
            fast_params, LBP1(0.5), (20, 5), seed=3, backend="vectorized"
        )
        from repro.backends.base import BackendUnsupportedError

        with pytest.raises(BackendUnsupportedError, match="progress"):
            runner.run(4, progress=lambda k, result: None)

    def test_unknown_backend_is_rejected(self, fast_params):
        runner = MonteCarloRunner(
            fast_params, LBP1(0.5), (20, 5), seed=3, backend="fpga"
        )
        with pytest.raises(ValueError, match="unknown execution backend"):
            runner.run(4)
