"""Executing one shard work item — the code both pool slots and remote
workers run.

A *work item* is a self-contained JSON document: the effective
:class:`~repro.scenarios.spec.ScenarioSpec` (system, workload, policy,
seed, backend) plus the seed blocks assigned to the shard.  Everything a
worker needs travels inside it, which is what lets the very same function
serve the in-process executor, the process-pool executor (it must be a
picklable module-level function) and ``repro worker`` pulling items over
HTTP from another machine.

Each block runs through the spec's registered
:class:`~repro.backends.base.ExecutionBackend` with the block's own seed
stream (:func:`repro.distributed.plan.block_seed`), then reduces to a JSON
payload: the completion-time sample plus a mergeable
:class:`~repro.montecarlo.statistics.RunningStatistics` state.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.distributed.plan import SeedBlock, block_seed

#: Work-item schema version; workers refuse items they do not understand.
WORK_ITEM_VERSION = 1


def make_work_item(
    item_id: str,
    task_id: str,
    shard_index: int,
    spec_dict: Dict[str, Any],
    blocks: List[SeedBlock],
    confidence_level: float = 0.95,
) -> Dict[str, Any]:
    """Assemble the JSON work item for one shard."""
    return {
        "version": WORK_ITEM_VERSION,
        "id": item_id,
        "task": task_id,
        "shard": shard_index,
        "spec": spec_dict,
        "blocks": [list(block.to_item()) for block in blocks],
        "confidence_level": confidence_level,
    }


def run_block(
    spec_dict: Dict[str, Any], block: SeedBlock
) -> Dict[str, Any]:
    """Execute one seed block and reduce it to a JSON-safe payload."""
    from repro.backends.base import resolve_backend
    from repro.montecarlo.statistics import RunningStatistics
    from repro.scenarios.spec import PolicySpec, ScenarioSpec

    spec = ScenarioSpec.from_dict(dict(spec_dict))
    params = spec.system.to_parameters()
    policy = (spec.policy or PolicySpec()).build(params, spec.workload)
    backend = resolve_backend(spec.backend)
    estimate = backend.run_batch(
        params,
        policy,
        spec.workload,
        block.num_realisations,
        seed=block_seed(spec.seed, block.index),
    )
    times = [float(t) for t in estimate.completion_times]
    return {
        "index": block.index,
        "start": block.start,
        "stop": block.stop,
        "policy": estimate.policy_name,
        "completion_times": times,
        "stats": RunningStatistics.from_values(times).to_dict(),
    }


def execute_work_item(item: Dict[str, Any]) -> Dict[str, Any]:
    """Run every block of a work item; the worker/pool entry point."""
    version = item.get("version")
    if version != WORK_ITEM_VERSION:
        raise ValueError(
            f"unsupported work item version {version!r} "
            f"(this worker speaks version {WORK_ITEM_VERSION})"
        )
    started = perf_counter()
    blocks = [
        run_block(item["spec"], SeedBlock.from_item(entry))
        for entry in item["blocks"]
    ]
    return {
        "id": item["id"],
        "task": item["task"],
        "shard": int(item["shard"]),
        "blocks": blocks,
        "wall_seconds": perf_counter() - started,
    }


def shard_outcome_error(error: BaseException) -> str:
    """Uniform error rendering for failed shard executions."""
    return f"{type(error).__name__}: {error}"


def worker_name(default: Optional[str] = None) -> str:
    """A human-traceable default worker name (host + pid)."""
    import os
    import socket

    if default:
        return default
    return f"{socket.gethostname()}-{os.getpid()}"
