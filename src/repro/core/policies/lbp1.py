"""LBP-1: the preemptive load-balancing policy (Section 2.1 of the paper).

LBP-1 performs a *single*, one-way transfer at ``t = 0`` and never acts
again.  For a two-node system the sender ``i`` transfers

.. math::

    L_{ji} = \\lfloor K \\, m_i \\rceil, \\qquad K \\in [0, 1],

tasks to the receiver ``j``.  The gain ``K`` and the sender/receiver pair are
the policy's free parameters; the paper chooses them by minimising the
expected overall completion time predicted by the regeneration model, which
accounts for the failure/recovery statistics of both nodes
(see :func:`repro.core.optimize.optimal_gain_lbp1`).

For systems with more than two nodes the paper states the same rationale
applies; here LBP-1 generalises to a one-shot, failure-aware version of the
excess-load balancing action: each overloaded node sends ``K · p_ij ·
L^{excess}_j`` tasks, once, at ``t = 0`` (and nothing on failures).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.core.policies.excess import initial_excess_transfers


class LBP1(LoadBalancingPolicy):
    """One-shot preemptive balancing with gain ``K``.

    Parameters
    ----------
    gain:
        The load-balancing gain ``K ∈ [0, 1]``.
    sender, receiver:
        Two-node systems only: which node sends and which receives.  If
        omitted, the node holding the larger initial workload sends to the
        other one — the sender/receiver assignment the paper's optimisation
        arrives at for every workload of Table 1.
    """

    name = "LBP-1"

    def __init__(
        self,
        gain: float,
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
    ) -> None:
        if not 0.0 <= gain <= 1.0:
            raise ValueError(f"gain must lie in [0, 1], got {gain!r}")
        if (sender is None) != (receiver is None):
            raise ValueError("sender and receiver must be given together or not at all")
        if sender is not None and sender == receiver:
            raise ValueError("sender and receiver must differ")
        self.gain = float(gain)
        self.sender = sender
        self.receiver = receiver

    # -- policy interface -----------------------------------------------------

    def initial_transfers(
        self, workload: Sequence[int], params: SystemParameters
    ) -> List[Transfer]:
        loads = self._validated(workload, params)

        if params.num_nodes == 2:
            sender, receiver = self.resolve_pair(loads)
            num = int(round(self.gain * loads[sender]))
            num = min(num, loads[sender])
            if num == 0:
                return []
            return [Transfer(sender, receiver, num)]

        # n-node generalisation: one-shot excess-load balancing with gain K.
        return initial_excess_transfers(loads, params, self.gain)

    # LBP-1 never reacts to failures: the base-class no-op applies.

    # -- helpers ----------------------------------------------------------------

    def resolve_pair(self, workload: Sequence[int]) -> tuple:
        """Sender/receiver pair used for a two-node workload."""
        if self.sender is not None and self.receiver is not None:
            if max(self.sender, self.receiver) > 1:
                raise IndexError(
                    "explicit sender/receiver indices must be 0 or 1 for a "
                    "two-node system"
                )
            return self.sender, self.receiver
        # Default: the more loaded node sends (ties: node 0 sends).
        if workload[1] > workload[0]:
            return 1, 0
        return 0, 1

    def with_gain(self, gain: float) -> "LBP1":
        """A copy of this policy with a different gain (used in gain sweeps)."""
        return LBP1(gain, sender=self.sender, receiver=self.receiver)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        pair = (
            f", sender={self.sender}, receiver={self.receiver}"
            if self.sender is not None
            else ""
        )
        return f"LBP1(gain={self.gain}{pair})"
