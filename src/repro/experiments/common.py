"""Shared constants of the paper's evaluation section.

All experiment drivers draw their parameters from here, so the whole
reproduction is driven by a single description of the paper's set-up.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.parameters import SystemParameters, paper_parameters

#: The workload highlighted in Fig. 3, Fig. 4 and Table 3: node 1 (Crusoe)
#: starts with 100 tasks, node 2 (P4) with 60.
PRIMARY_WORKLOAD: Tuple[int, int] = (100, 60)

#: The five initial workloads of Tables 1 and 2.
TABLE_WORKLOADS: Tuple[Tuple[int, int], ...] = (
    (200, 200),
    (200, 100),
    (100, 200),
    (200, 50),
    (50, 200),
)

#: The two workloads of the CDF figure (Fig. 5).
CDF_WORKLOADS: Tuple[Tuple[int, int], ...] = ((50, 0), (25, 50))

#: Per-task delays swept in Table 3 (seconds).
TABLE3_DELAYS: Tuple[float, ...] = (0.01, 0.5, 1.0, 2.0, 3.0)

#: Gain grid used by the paper's sweeps (Fig. 3 is plotted on this grid).
#: Kept numpy-free (this module sits on the scenario registry's import
#: path); the values are bit-identical to ``np.round(np.arange(0, 1.0001,
#: 0.05), 2)``.
GAIN_GRID: Tuple[float, ...] = tuple(round(i * 0.05, 2) for i in range(21))

#: Number of realisations used by the paper for its various estimates.
PAPER_MC_REALISATIONS = 500
PAPER_EXPERIMENT_REALISATIONS_TABLE1 = 20
PAPER_EXPERIMENT_REALISATIONS_LBP2 = 60

#: Reference values reported in the paper (used for shape checks and for the
#: paper-vs-measured summary in EXPERIMENTS.md, never to "fit" results).
PAPER_FIG3_OPTIMAL_GAIN_FAILURE = 0.35
PAPER_FIG3_OPTIMAL_GAIN_NO_FAILURE = 0.45
PAPER_FIG3_MIN_COMPLETION_TIME = 117.0
PAPER_LBP2_MC_COMPLETION_TIME = 112.43
PAPER_LBP2_EXPERIMENT_COMPLETION_TIME = 109.17
PAPER_PROCESSING_RATES = (1.08, 1.86)
PAPER_DELAY_PER_TASK = 0.02
PAPER_TABLE1 = {
    (200, 200): {"gain": 0.15, "theory": 274.95, "experiment": 264.72, "no_failure": 141.94},
    (200, 100): {"gain": 0.35, "theory": 210.13, "experiment": 207.32, "no_failure": 106.93},
    (100, 200): {"gain": 0.15, "theory": 210.13, "experiment": 229.19, "no_failure": 106.93},
    (200, 50): {"gain": 0.5, "theory": 177.09, "experiment": 172.56, "no_failure": 89.32},
    (50, 200): {"gain": 0.25, "theory": 177.09, "experiment": 215.66, "no_failure": 89.32},
}
PAPER_TABLE2 = {
    (200, 200): {"gain": 1.00, "mc": 277.9, "experiment": 263.4},
    (200, 100): {"gain": 1.00, "mc": 202.4, "experiment": 188.8},
    (100, 200): {"gain": 0.80, "mc": 203.07, "experiment": 212.9},
    (200, 50): {"gain": 1.00, "mc": 170.81, "experiment": 171.42},
    (50, 200): {"gain": 0.95, "mc": 189.72, "experiment": 177.6},
}
PAPER_TABLE3 = {
    0.01: {"lbp1": 116.82, "lbp2": 112.43},
    0.5: {"lbp1": 117.76, "lbp2": 115.94},
    1.0: {"lbp1": 120.99, "lbp2": 122.25},
    2.0: {"lbp1": 127.62, "lbp2": 133.02},
    3.0: {"lbp1": 131.64, "lbp2": 142.86},
}


def default_parameters(**kwargs) -> SystemParameters:
    """The paper's two-node system (wrapper around :func:`paper_parameters`)."""
    return paper_parameters(**kwargs)
