"""Tests for the per-figure/table experiment drivers.

Each driver is exercised on a *scaled-down* configuration (fewer realisations
and, where it keeps runtimes reasonable, a smaller workload) — enough to
check the structure of the outputs and the qualitative shape the paper
reports; the benchmark harness runs the full-size versions.
"""

import numpy as np
import pytest

from repro.experiments import (
    common,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_table3,
)


class TestCommonConstants:
    def test_paper_reference_values_present(self):
        assert common.PRIMARY_WORKLOAD == (100, 60)
        assert len(common.TABLE_WORKLOADS) == 5
        assert len(common.TABLE3_DELAYS) == 5
        assert common.PAPER_FIG3_OPTIMAL_GAIN_FAILURE == 0.35
        assert common.PAPER_TABLE1[(200, 200)]["gain"] == 0.15

    def test_gain_grid(self):
        assert common.GAIN_GRID[0] == 0.0
        assert common.GAIN_GRID[-1] == 1.0
        assert len(common.GAIN_GRID) == 21


class TestFig1:
    def test_fits_recover_rates(self):
        result = run_fig1(tasks_per_node=1200, seed=1)
        assert result.fits[0].rate == pytest.approx(1.08, rel=0.1)
        assert result.fits[1].rate == pytest.approx(1.86, rel=0.1)
        table = result.summary_table()
        assert len(table) == 2
        assert "Fig. 1" in result.render()

    def test_density_series_shapes(self):
        result = run_fig1(tasks_per_node=500, seed=2)
        centers, empirical, fitted = result.density_series(0)
        assert len(centers) == len(empirical) == len(fitted)
        assert np.all(fitted >= 0)


class TestFig2:
    def test_linear_delay_recovered(self):
        result = run_fig2(probes_per_size=25, seed=3)
        assert result.regression.slope == pytest.approx(0.02, rel=0.25)
        sizes, measured, fitted = result.mean_delay_series()
        assert len(sizes) == len(measured) == len(fitted)
        assert measured[-1] > measured[0]
        assert "Fig. 2" in result.render()


class TestFig3:
    def test_scaled_down_sweep_shape(self):
        gains = [0.0, 0.2, 0.35, 0.5, 0.8]
        result = run_fig3(
            gains=gains, mc_realisations=25, experiment_realisations=4, seed=4
        )
        assert len(result.theory) == len(gains)
        assert len(result.monte_carlo) == len(gains)
        assert len(result.experiment) == len(gains)
        # U-shape: the interior optimum beats both extremes of the grid.
        assert result.theory.min() < result.theory[0]
        assert result.theory.min() < result.theory[-1]
        # Failure curve lies above the no-failure curve everywhere.
        assert np.all(result.theory > result.theory_no_failure)
        assert result.minimum_mean_completion_time == pytest.approx(117.0, rel=0.05)
        assert "optimal gain" in result.render()

    def test_full_grid_optima_match_paper(self):
        """Theory-only check on the full grid (cheap: no simulation)."""
        from repro.core.optimize import optimal_gain_lbp1, optimal_gain_no_failure

        params = common.default_parameters()
        failure = optimal_gain_lbp1(params, (100, 60), gains=common.GAIN_GRID,
                                    sender=0, receiver=1)
        clean = optimal_gain_no_failure(params, (100, 60), gains=common.GAIN_GRID,
                                        sender=0, receiver=1)
        assert failure.optimal_gain == pytest.approx(
            common.PAPER_FIG3_OPTIMAL_GAIN_FAILURE
        )
        assert clean.optimal_gain == pytest.approx(
            common.PAPER_FIG3_OPTIMAL_GAIN_NO_FAILURE
        )


class TestFig4:
    def test_traces_produced_for_both_policies(self):
        result = run_fig4(seed=5)
        times, values = result.queue_series("lbp1", 0)
        assert len(times) > 0
        assert values[-1] == 0.0
        table = result.sampled_table(num_points=10)
        assert len(table) == 10
        flats = result.flat_segment_durations()
        assert set(flats) == {"lbp1_node1", "lbp1_node2", "lbp2_node1", "lbp2_node2"}
        assert "completion times" in result.render(num_points=5)

    def test_lbp2_trace_contains_compensation_transfers(self):
        # pick a seed with at least one failure before completion
        for seed in range(5, 15):
            result = run_fig4(seed=seed)
            failures = sum(result.lbp2_result.failures_per_node)
            if failures > 0:
                compensations = [
                    record
                    for record in result.lbp2_result.transfer_records
                    if record.reason == "failure-compensation"
                ]
                assert compensations
                return
        pytest.fail("no realisation with failures found in the seed range")


class TestFig5:
    def test_cdf_panels(self):
        times = np.linspace(0, 250, 60)
        result = run_fig5(times=times, seed=6)
        assert set(result.panels) == {(50, 0), (25, 50)}
        for panel in result.panels.values():
            assert np.all(np.diff(panel.cdf_failure.probabilities) >= -1e-12)
            # failure curve is stochastically dominated by the no-failure curve
            assert np.all(
                panel.cdf_no_failure.probabilities
                >= panel.cdf_failure.probabilities - 1e-9
            )
        assert "Fig. 5" in result.render()

    def test_monte_carlo_overlay(self):
        times = np.linspace(0, 250, 40)
        result = run_fig5(
            workloads=[(50, 0)], times=times, with_monte_carlo=True,
            mc_realisations=60, seed=7,
        )
        panel = result.panels[(50, 0)]
        assert panel.empirical_failure is not None
        # The empirical CDF should track the analytical one.
        gap = np.max(np.abs(panel.empirical_failure - panel.cdf_failure.probabilities))
        assert gap < 0.2


class TestTables:
    def test_table1_scaled_down(self):
        result = run_table1(
            workloads=[(60, 30), (30, 60)], experiment_realisations=4, seed=8
        )
        assert len(result.rows) == 2
        first, second = result.rows
        # Symmetric workloads give symmetric theory columns and mirrored senders.
        assert first.theory_with_failure == pytest.approx(second.theory_with_failure)
        assert first.sender != second.sender
        assert first.theory_no_failure < first.theory_with_failure
        assert "Table 1" in result.render()

    def test_table2_scaled_down(self):
        result = run_table2(
            workloads=[(60, 30)], mc_realisations=40, experiment_realisations=5, seed=9
        )
        row = result.rows[0]
        assert 0.0 <= row.initial_gain <= 1.0
        assert row.monte_carlo > 0
        assert row.experiment > 0
        assert "Table 2" in result.render()

    def test_table3_scaled_down_crossover(self):
        result = run_table3(delays=[0.01, 3.0], mc_realisations=60, seed=10)
        rows = result.as_table().rows()
        assert len(rows) == 2
        # Small delay: LBP-2 wins; large delay: LBP-1 wins (the paper's story).
        assert rows[0]["lbp2"] < rows[0]["lbp1"] * 1.05
        assert rows[1]["lbp1"] < rows[1]["lbp2"]
        assert result.crossover_delay is not None
        assert "Table 3" in result.render()
