"""Calibration procedures: processing-speed and channel-delay estimation.

Before running its comparative experiments the paper calibrates the model:

* Fig. 1 — empirical pdfs of the per-task processing time on both nodes are
  estimated and approximated by exponential laws (1.08 and 1.86 tasks/s);
* Fig. 2 — the per-task transfer delay pdf is estimated from channel-probing
  experiments and the *mean* transfer delay is regressed against the number
  of tasks per batch, giving ≈ 0.02 s per task.

This module reproduces both procedures on the emulated test-bed, producing
the fitted rates that feed :func:`repro.core.parameters.paper_parameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.empirical import EmpiricalDensity, empirical_density
from repro.analysis.fitting import ExponentialFit, fit_exponential
from repro.analysis.linfit import LinearFit, fit_linear
from repro.cluster.network import sample_batch_delay
from repro.core.parameters import SystemParameters, TransferDelayModel
from repro.sim.rng import RandomStreams, SeedLike
from repro.testbed.application import ApplicationLayer, MatrixWorkloadGenerator


@dataclass
class CalibrationResult:
    """Everything the calibration workflow produces."""

    processing_fits: Dict[int, ExponentialFit]
    processing_densities: Dict[int, EmpiricalDensity]
    delay_fit: ExponentialFit
    delay_density: EmpiricalDensity
    mean_delay_regression: LinearFit
    probe_sizes: np.ndarray
    probe_mean_delays: np.ndarray

    @property
    def estimated_service_rates(self) -> Tuple[float, ...]:
        """Fitted processing rates, in node order (Fig. 1 solid curves)."""
        return tuple(
            self.processing_fits[node].rate for node in sorted(self.processing_fits)
        )

    @property
    def estimated_delay_per_task(self) -> float:
        """Slope of the mean-delay regression (Fig. 2, bottom)."""
        return self.mean_delay_regression.slope


def estimate_processing_rates(
    params: SystemParameters,
    tasks_per_node: int = 500,
    seed: SeedLike = 0,
    execute_real: bool = False,
    bins: int = 30,
) -> Tuple[Dict[int, ExponentialFit], Dict[int, EmpiricalDensity]]:
    """Measure per-task processing times on every emulated node (Fig. 1).

    Parameters
    ----------
    params:
        System parameters (true node speeds being estimated).
    tasks_per_node:
        Number of calibration tasks executed per node.
    seed:
        Seed of the calibration workload.
    execute_real:
        Also run the real NumPy row-by-matrix multiplication for each task
        (slower; exercises the genuine computation path).
    bins:
        Histogram resolution of the returned empirical densities.
    """
    if tasks_per_node < 2:
        raise ValueError("tasks_per_node must be at least 2")
    streams = RandomStreams(seed)
    generator = MatrixWorkloadGenerator()
    rng = streams.stream("calibration.workload")
    tasks = generator.generate([tasks_per_node] * params.num_nodes, rng)

    fits: Dict[int, ExponentialFit] = {}
    densities: Dict[int, EmpiricalDensity] = {}
    for index in range(params.num_nodes):
        application = ApplicationLayer(
            node_index=index,
            service_rate=params.node(index).service_rate,
            generator=generator,
        )
        exec_rng = streams.stream(f"calibration.node-{index}")
        times: List[float] = []
        for task in tasks[index]:
            if execute_real:
                application.execute_real(task, exec_rng)
            duration = application.execution_time(task)
            application.record_execution(task, duration)
            times.append(duration)
        fits[index] = fit_exponential(times)
        densities[index] = empirical_density(times, bins=bins)
    return fits, densities


def estimate_delay_model(
    params: SystemParameters,
    probe_sizes: Optional[Sequence[int]] = None,
    probes_per_size: int = 30,
    seed: SeedLike = 0,
    bins: int = 30,
) -> Tuple[ExponentialFit, EmpiricalDensity, LinearFit, np.ndarray, np.ndarray]:
    """Channel-probing estimation of the transfer-delay model (Fig. 2).

    Sends ``probes_per_size`` batches of every size in ``probe_sizes`` over
    the emulated channel, fits an exponential to the per-task delay and
    regresses the mean batch delay against the batch size.
    """
    if probes_per_size < 2:
        raise ValueError("probes_per_size must be at least 2")
    sizes = np.asarray(
        probe_sizes if probe_sizes is not None else np.arange(10, 101, 10), dtype=int
    )
    if np.any(sizes < 1):
        raise ValueError("probe sizes must be >= 1")
    streams = RandomStreams(seed)
    rng = streams.stream("calibration.channel")
    model: TransferDelayModel = params.delay_model(0, min(1, params.num_nodes - 1))

    per_task_delays: List[float] = []
    mean_delays = np.empty(len(sizes))
    for i, size in enumerate(sizes):
        batch_delays = np.array(
            [sample_batch_delay(model, int(size), rng) for _ in range(probes_per_size)]
        )
        mean_delays[i] = batch_delays.mean()
        per_task_delays.extend(batch_delays / size)

    delay_fit = fit_exponential(per_task_delays)
    delay_density = empirical_density(per_task_delays, bins=bins)
    regression = fit_linear(sizes.astype(float), mean_delays)
    return delay_fit, delay_density, regression, sizes, mean_delays


def calibrate(
    params: SystemParameters,
    tasks_per_node: int = 500,
    probes_per_size: int = 30,
    seed: SeedLike = 0,
) -> CalibrationResult:
    """Run the full calibration workflow of Section 4 (Figs. 1 and 2)."""
    fits, densities = estimate_processing_rates(
        params, tasks_per_node=tasks_per_node, seed=seed
    )
    delay_fit, delay_density, regression, sizes, mean_delays = estimate_delay_model(
        params, probes_per_size=probes_per_size, seed=seed
    )
    return CalibrationResult(
        processing_fits=fits,
        processing_densities=densities,
        delay_fit=delay_fit,
        delay_density=delay_density,
        mean_delay_regression=regression,
        probe_sizes=sizes,
        probe_mean_delays=mean_delays,
    )
