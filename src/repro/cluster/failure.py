"""The alternating failure/recovery process of a node.

Each node fails after an exponential up time (rate ``λ_f``) and recovers
after an exponential down time (rate ``λ_r``), independently of everything
else — exactly the model of Section 2 of the paper and the behaviour of the
failure-injection process used in the paper's experiments (Section 4), which
signals the application layer to stop and later resume execution.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.node import ComputeElement, NodeState
from repro.sim.distributions import Exponential
from repro.sim.engine import Environment


class FailureRecoveryProcess:
    """Drives the up/down alternation of one node.

    Parameters
    ----------
    env:
        Simulation environment.
    node:
        The node whose state this process controls.
    rng:
        Random stream used for the failure and recovery times of this node.
    on_failure / on_recovery:
        Optional callbacks ``f(node, time)`` invoked right after the node
        changes state (the system uses ``on_failure`` to trigger LBP-2's
        compensation transfers).
    horizon:
        Optional time after which no further failures are injected (useful
        for bounded test scenarios); ``None`` means the process runs for the
        whole simulation.
    """

    def __init__(
        self,
        env: Environment,
        node: ComputeElement,
        rng: np.random.Generator,
        on_failure: Optional[Callable[[ComputeElement, float], None]] = None,
        on_recovery: Optional[Callable[[ComputeElement, float], None]] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.rng = rng
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        self.horizon = horizon

        params = node.params
        self.failure_distribution = (
            Exponential(params.failure_rate) if params.failure_rate > 0 else None
        )
        self.recovery_distribution = (
            Exponential(params.recovery_rate) if params.recovery_rate > 0 else None
        )

        self.process = None
        if self._is_active():
            self.process = env.process(self._loop(), name=f"{node.name}.failure")

    def _is_active(self) -> bool:
        # A node that can fail, or a node that starts down and must recover.
        return self.node.params.can_fail or self.node.state is NodeState.DOWN

    def _loop(self):
        node = self.node
        while True:
            if node.state is NodeState.UP:
                if self.failure_distribution is None:
                    return  # the node never fails again; nothing left to do
                up_time = self.failure_distribution.sample(self.rng)
                if self.horizon is not None and self.env.now + up_time > self.horizon:
                    return
                yield self.env.timeout(up_time)
                node.fail()
                if self.on_failure is not None:
                    self.on_failure(node, self.env.now)
            else:
                if self.recovery_distribution is None:
                    return  # permanently down (disallowed by NodeParameters)
                down_time = self.recovery_distribution.sample(self.rng)
                yield self.env.timeout(down_time)
                node.recover()
                if self.on_recovery is not None:
                    self.on_recovery(node, self.env.now)
