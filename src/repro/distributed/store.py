"""Content-addressed store for completed seed blocks (shard-level caching).

A much lighter cousin of :class:`repro.scenarios.cache.ResultCache`,
keyed by :func:`repro.distributed.plan.block_key`.  Two on-disk layouts
coexist:

* **v2 (columnar segments, current)** — blocks are appended as binary
  frames (:mod:`repro.distributed.frames`) to per-writer segment files
  under ``segments/``, one ``<writer>.seg`` data file plus a
  ``<writer>.idx`` sidecar holding one JSON line per entry
  (``{"key", "offset", "length"}``).  Reads memory-map the segment and
  decode the referenced byte range directly — re-sharding and delta
  growth become near-zero-copy buffer reads instead of one
  ``json.loads`` per block.  Appends are crash-safe by ordering: the
  frame is written and flushed before its index line, so a torn write
  leaves either an unreferenced frame or a partial (newline-less) index
  line, both of which readers skip.
* **v1 (one JSON file per block, legacy)** — ``<key[:2]>/<key>.json``
  documents, still read transparently so existing caches keep their
  blocks; ``repro store migrate`` rewrites them into segments.

The store lives under ``<cache root>/shards/`` so evicting the scenario
cache and the shard cache together is one directory removal, and shares
the same root resolution (``root`` argument → ``REPRO_CACHE_DIR`` →
``~/.cache/repro``).  ``hits``/``misses`` counters make cache-reuse
assertions (resume, delta-computation) direct.
"""

from __future__ import annotations

import json
import mmap
import os
import threading
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.distributed.frames import FrameError, decode_frame, encode_frame
from repro.obs.metrics import REGISTRY
from repro.scenarios.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

# Shared families with the scenario result cache — distinguished by the
# `store` label ("shard" here, "result" there).
_CACHE_REQUESTS = REGISTRY.counter(
    "repro_cache_requests_total",
    "Cache lookups by store and outcome.",
    labelnames=("store", "outcome"),
)
_CACHE_WRITES = REGISTRY.counter(
    "repro_cache_writes_total",
    "Cache entries written, by store.",
    labelnames=("store",),
)
_CACHE_WRITE_BYTES = REGISTRY.counter(
    "repro_cache_write_bytes_total",
    "Bytes written into the cache, by store.",
    labelnames=("store",),
)
_CACHE_READ_BYTES = REGISTRY.counter(
    "repro_cache_read_bytes_total",
    "Bytes read back out of the cache, by store.",
    labelnames=("store",),
)

#: Version of the block payload layout; mismatches read as misses.
BLOCK_FORMAT_VERSION = 1

#: Version of the on-disk container layout (v1 JSON files, v2 segments).
STORE_FORMAT_VERSION = 2

_SEGMENT_DIR = "segments"


class ShardStore:
    """On-disk map from block keys to block result payloads."""

    def __init__(self, root: Union[None, str, Path] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser() / "shards"
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        # key -> (segment path, offset, length); lazily rebuilt from the
        # .idx sidecars, tracking how many bytes of each are consumed so
        # concurrent writers only cost an incremental re-read.
        self._index: Dict[str, Tuple[Path, int, int]] = {}
        self._idx_consumed: Dict[str, int] = {}
        self._segment: Optional[Path] = None
        self._sweep_stale_staging()

    # -- paths -------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The legacy (v1) JSON document path for ``key``."""
        return self.root / key[:2] / f"{key}.json"

    @property
    def segment_dir(self) -> Path:
        return self.root / _SEGMENT_DIR

    def _writer_segment(self) -> Path:
        """This instance's append-only segment (one per writer, so
        concurrent processes never contend on a file)."""
        if self._segment is None:
            name = f"{os.getpid():06d}-{uuid.uuid4().hex[:8]}"
            self._segment = self.segment_dir / f"{name}.seg"
        return self._segment

    def _sweep_stale_staging(self) -> None:
        """Remove ``.{key}-*`` staging files a crashed v1 writer left
        behind (they are invisible to reads but pin disk space)."""
        if not self.root.is_dir():
            return
        for shard_dir in self.root.glob("??"):
            for stale in shard_dir.glob(".*"):
                try:
                    stale.unlink()
                except OSError:
                    pass

    # -- the v2 index ------------------------------------------------------

    def _refresh_index(self) -> None:
        """Fold any new index lines into the in-memory key map.

        Only complete (newline-terminated) lines are consumed; a torn
        final line — a writer mid-append or a crash — stays pending, so
        it is re-read once completed and never mis-parsed.  Corrupt
        complete lines are skipped.  Within a sidecar, later entries for
        a key win (append order); sidecars are folded in sorted order.
        """
        segment_dir = self.segment_dir
        if not segment_dir.is_dir():
            return
        for idx_path in sorted(segment_dir.glob("*.idx")):
            try:
                size = idx_path.stat().st_size
            except OSError:
                continue
            consumed = self._idx_consumed.get(idx_path.name, 0)
            if size <= consumed:
                continue
            try:
                with open(idx_path, "rb") as handle:
                    handle.seek(consumed)
                    pending = handle.read()
            except OSError:
                continue
            segment = idx_path.with_suffix(".seg")
            complete, newline, _tail = pending.rpartition(b"\n")
            if not newline:
                continue
            for line in complete.split(b"\n"):
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    offset = int(entry["offset"])
                    length = int(entry["length"])
                except (ValueError, KeyError, TypeError):
                    continue  # torn or corrupt entry: skip, never raise
                if isinstance(key, str) and offset >= 0 and length > 0:
                    self._index[key] = (segment, offset, length)
            self._idx_consumed[idx_path.name] = consumed + len(complete) + 1

    def _read_v2(self, key: str) -> Optional[Dict[str, Any]]:
        if key not in self._index:
            self._refresh_index()
        located = self._index.get(key)
        if located is None:
            return None
        segment, offset, length = located
        try:
            with open(segment, "rb") as handle:
                with mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                ) as mapped:
                    if offset + length > len(mapped):
                        return None  # truncated segment: clean miss
                    with memoryview(mapped) as view:
                        try:
                            payload = decode_frame(view[offset : offset + length])
                        except FrameError:
                            # Convert to a miss *inside* the mapping scope:
                            # a propagating exception would pin the
                            # memoryview exports via its traceback and make
                            # the mmap close itself raise BufferError.
                            return None
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format_version") != BLOCK_FORMAT_VERSION
            or payload.get("key") != key
        ):
            return None
        _CACHE_READ_BYTES.labels(store="shard").inc(length)
        return payload["block"]

    # -- the legacy v1 documents -------------------------------------------

    def _read_v1(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
            payload = json.loads(raw)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format_version") != BLOCK_FORMAT_VERSION
        ):
            return None
        _CACHE_READ_BYTES.labels(store="shard").inc(len(raw))
        return payload["block"]

    def _v1_keys(self) -> set:
        if not self.root.is_dir():
            return set()
        return {path.stem for path in self.root.glob("??/*.json")}

    # -- the public map ----------------------------------------------------

    def __len__(self) -> int:
        self._refresh_index()
        return len(set(self._index) | self._v1_keys())

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored block payload, or ``None`` (missing/corrupt/stale)."""
        block = self._read_v2(key)
        if block is None:
            block = self._read_v1(key)
        if block is None:
            self.misses += 1
            _CACHE_REQUESTS.labels(store="shard", outcome="miss").inc()
            return None
        self.hits += 1
        _CACHE_REQUESTS.labels(store="shard", outcome="hit").inc()
        return block

    def put(self, key: str, block: Dict[str, Any]) -> Path:
        """Append one block payload to this writer's segment.

        Crash-safe by ordering (frame before index line); later appends
        for the same key shadow earlier ones.
        """
        frame = encode_frame(
            {"format_version": BLOCK_FORMAT_VERSION, "key": key, "block": block}
        )
        with self._lock:
            segment = self._writer_segment()
            segment.parent.mkdir(parents=True, exist_ok=True)
            with open(segment, "ab") as handle:
                handle.seek(0, os.SEEK_END)
                offset = handle.tell()
                handle.write(frame)
            line = (
                json.dumps(
                    {"key": key, "offset": offset, "length": len(frame)},
                    sort_keys=True,
                )
                + "\n"
            ).encode("utf-8")
            with open(segment.with_suffix(".idx"), "ab") as handle:
                handle.write(line)
            self._index[key] = (segment, offset, len(frame))
        _CACHE_WRITES.labels(store="shard").inc()
        _CACHE_WRITE_BYTES.labels(store="shard").inc(len(frame) + len(line))
        return segment

    def clear(self) -> int:
        """Drop every block; returns the number of keys removed."""
        removed = len(self)
        if self.root.is_dir():
            for path in self.root.glob("??/*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            # Emptied two-hex-digit directories go too (a long-lived cache
            # root otherwise accumulates 256 empty dirs per clear).
            for shard_dir in self.root.glob("??"):
                try:
                    shard_dir.rmdir()
                except OSError:
                    pass
            segment_dir = self.segment_dir
            if segment_dir.is_dir():
                for path in segment_dir.iterdir():
                    try:
                        path.unlink()
                    except OSError:
                        pass
                try:
                    segment_dir.rmdir()
                except OSError:
                    pass
        with self._lock:
            self._index.clear()
            self._idx_consumed.clear()
            self._segment = None
        return removed

    def migrate(self) -> Dict[str, int]:
        """Rewrite every legacy v1 JSON document into v2 segments.

        Valid entries are appended to this writer's segment and their v1
        files removed; unreadable or stale documents are left in place
        (they already read as misses) and counted as skipped.
        """
        migrated = 0
        skipped = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("??/*.json")):
                key = path.stem
                block = self._read_v1(key)
                if block is None:
                    skipped += 1
                    continue
                self.put(key, block)
                try:
                    path.unlink()
                    migrated += 1
                except OSError:
                    skipped += 1
            for shard_dir in self.root.glob("??"):
                try:
                    shard_dir.rmdir()
                except OSError:
                    pass
        return {"migrated": migrated, "skipped": skipped}
