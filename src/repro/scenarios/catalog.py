"""Machine-readable view of the scenario catalog.

One payload, three consumers: ``python -m repro scenario list --json``, the
documentation generator (:mod:`repro.docsgen`, which renders
``docs/scenario-catalog.md`` from it) and the results service
(``GET /v1/scenarios``).  Keeping them on a single code path guarantees the
committed docs, the CLI and the HTTP API can never disagree about what the
registry contains.

Everything here is derived purely from the registry — no cache state, no
timestamps — so the payload (and the docs generated from it) is
deterministic and diff-stable.  The module imports no numpy/scipy: it sits
on the service's request path.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.backends.base import DEFAULT_BACKEND, backend_names
from repro.scenarios import registry
from repro.scenarios.orchestrator import BACKEND_AWARE_KINDS
from repro.scenarios.spec import SPEC_VERSION, ScenarioSpec


def supported_backends(kind: str) -> Tuple[str, ...]:
    """Backend names able to execute scenarios of ``kind``.

    Non-reference backends only apply to the Monte-Carlo kinds the
    orchestrator gates them to (:data:`BACKEND_AWARE_KINDS`); every other
    kind runs exclusively on the reference machinery.
    """
    if kind in BACKEND_AWARE_KINDS:
        return backend_names()
    return (DEFAULT_BACKEND,)


def spec_payload(spec: ScenarioSpec) -> Dict[str, Any]:
    """The identity and sizing of one spec (not its full parameterisation)."""
    return {
        "name": spec.name,
        "kind": spec.kind,
        "backend": spec.backend,
        "seed": spec.seed,
        "workload": list(spec.workload),
        "num_nodes": spec.system.num_nodes,
        "shards": spec.shards,
        "mc_realisations": spec.mc_realisations,
        "experiment_realisations": spec.experiment_realisations,
        "content_hash": spec.content_hash,
    }


def scenario_payload(name: str, entry: registry.ScenarioEntry) -> Dict[str, Any]:
    """One named scenario: description, default spec and quick variant."""
    return {
        **spec_payload(entry.spec),
        "description": entry.description,
        "tags": list(entry.tags),
        "backends": list(supported_backends(entry.spec.kind)),
        "quick_content_hash": entry.quick.content_hash,
    }


def family_payload(name: str, family: registry.ScenarioFamily) -> Dict[str, Any]:
    """One scenario family with its expanded, content-addressed points."""
    quick_hashes = {
        spec.name: spec.content_hash for spec in family.expand(quick=True)
    }
    points = []
    for spec in family.expand(quick=False):
        point = spec_payload(spec)
        point["backends"] = list(supported_backends(spec.kind))
        point["quick_content_hash"] = quick_hashes.get(spec.name)
        points.append(point)
    return {
        "name": name,
        "description": family.description,
        "points": points,
    }


def catalog_payload() -> Dict[str, Any]:
    """The whole catalog: scenarios, families, backends, schema versions."""
    return {
        "spec_version": SPEC_VERSION,
        "backends": list(backend_names()),
        "backend_aware_kinds": sorted(BACKEND_AWARE_KINDS),
        "scenarios": [
            scenario_payload(name, registry.get_entry(name))
            for name in registry.scenario_names()
        ],
        "families": [
            family_payload(name, registry.get_family(name))
            for name in registry.family_names()
        ],
    }
