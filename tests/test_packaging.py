"""Packaging metadata sanity: the `repro` console script must stay wired.

The real `pip install -e .` happens in CI's distributed-e2e job (this
container has no package index); these tests pin everything that install
depends on — valid TOML, a resolvable entry point, the src layout and the
dynamic version attribute — so a packaging regression fails tier-1, not
just CI.
"""

from __future__ import annotations

import importlib
import pathlib
import tomllib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def pyproject():
    return tomllib.loads((REPO / "pyproject.toml").read_text())


def test_console_script_target_resolves(pyproject):
    target = pyproject["project"]["scripts"]["repro"]
    module_name, _, attribute = target.partition(":")
    module = importlib.import_module(module_name)
    entry = getattr(module, attribute)
    assert callable(entry)


def test_src_layout_is_declared(pyproject):
    assert pyproject["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]
    assert (REPO / "src" / "repro" / "__init__.py").is_file()


def test_version_is_dynamic_and_importable(pyproject):
    assert "version" in pyproject["project"]["dynamic"]
    attr = pyproject["tool"]["setuptools"]["dynamic"]["version"]["attr"]
    module_name, _, attribute = attr.rpartition(".")
    version = getattr(importlib.import_module(module_name), attribute)
    assert isinstance(version, str) and version


def test_runtime_dependencies_match_reality(pyproject):
    deps = set(pyproject["project"]["dependencies"])
    assert deps == {"numpy", "scipy"}
