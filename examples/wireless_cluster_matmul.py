#!/usr/bin/env python
"""The paper's wireless test-bed scenario, end to end.

Reproduces the measurement-to-experiment pipeline of Section 3/4 on the
emulated test-bed:

1. **Calibration** — execute a batch of randomised matrix-row multiplication
   tasks on each emulated node and probe the channel with batches of various
   sizes; fit exponential laws to the per-task processing times and transfer
   delays and regress the mean delay against the batch size (Figs. 1 and 2).
2. **Experiment** — run the (100, 60) workload under LBP-1 (with the
   model-optimal gain) and LBP-2 on the three-layer test-bed emulation and
   compare the measured completion times with the analytical prediction.

Run it with ``python examples/wireless_cluster_matmul.py``.
"""

import numpy as np

from repro import LBP1, LBP2, optimal_gain_lbp1, paper_parameters
from repro.analysis.reporting import format_series
from repro.testbed import TestbedExperiment
from repro.testbed.calibration import calibrate


def main() -> None:
    params = paper_parameters()
    workload = (100, 60)

    # ------------------------------------------------------------------ 1 --
    print("== Calibration (Figs. 1 and 2) ==")
    calibration = calibrate(params, tasks_per_node=1500, probes_per_size=30, seed=42)

    for node, fit in sorted(calibration.processing_fits.items()):
        true_rate = params.node(node).service_rate
        print(f"  node {node + 1}: fitted processing rate {fit.rate:5.2f} tasks/s "
              f"(true {true_rate:.2f}), KS p-value {fit.ks_pvalue:.3f}")
    regression = calibration.mean_delay_regression
    print(f"  transfer delay: {regression.slope * 1000:.1f} ms/task "
          f"(true {params.delay.mean_delay_per_task * 1000:.1f} ms/task), "
          f"R^2 = {regression.r_squared:.3f}")
    print()
    print(format_series(
        calibration.probe_sizes,
        calibration.probe_mean_delays,
        x_label="tasks per batch",
        y_label="mean delay (s)",
        title="Mean transfer delay vs batch size (Fig. 2, bottom)",
    ))
    print()

    # ------------------------------------------------------------------ 2 --
    print("== Experiments on the emulated test-bed ==")
    optimum = optimal_gain_lbp1(params, workload)
    lbp1 = LBP1(optimum.optimal_gain, sender=optimum.sender, receiver=optimum.receiver)
    lbp2 = LBP2(gain=1.0)

    lbp1_campaign = TestbedExperiment.run_many(
        params, lbp1, workload, num_realisations=20, seed=7
    )
    lbp2_campaign = TestbedExperiment.run_many(
        params, lbp2, workload, num_realisations=20, seed=8
    )

    print(f"  model-optimal LBP-1 gain: K = {optimum.optimal_gain:.2f} "
          f"(node {optimum.sender + 1} sends)")
    print(f"  LBP-1 measured mean completion time: "
          f"{lbp1_campaign.mean_completion_time:.1f} s "
          f"(model predicted {optimum.optimal_mean:.1f} s)")
    print(f"  LBP-2 measured mean completion time: "
          f"{lbp2_campaign.mean_completion_time:.1f} s")

    log = lbp1_campaign.results[0].message_log
    print(f"  traffic of one LBP-1 realisation: {log.state_messages_sent} state "
          f"packets ({log.state_messages_lost} lost), {log.data_messages_sent} "
          f"data transfers carrying {log.data_tasks_sent} tasks")


if __name__ == "__main__":
    main()
