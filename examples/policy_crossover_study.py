#!/usr/bin/env python
"""When should you pre-balance and when should you react to failures?

The paper's Table 3 answers this with a delay sweep on the (100, 60)
workload: for cheap transfers the reactive LBP-2 wins, for expensive
transfers (roughly ≥ 1 s per task, i.e. comparable to the mean recovery
time) the preemptive LBP-1 wins, because shipping a compensation batch at
every failure instant starts to cost more than the idle time it prevents.

This example regenerates that comparison with a slightly finer delay grid,
prints the two columns next to the paper's values and reports the observed
crossover point.

Run it with ``python examples/policy_crossover_study.py`` (a couple of
minutes with the default realisation count; pass a smaller number as the
first CLI argument for a quick look, e.g. ``... 50``).
"""

import sys

from repro import paper_parameters
from repro.analysis.reporting import format_table
from repro.experiments import common
from repro.experiments.table3_delay_crossover import run as run_table3


def main() -> None:
    realisations = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    params = paper_parameters()
    delays = (0.01, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0)

    result = run_table3(
        params=params,
        workload=common.PRIMARY_WORKLOAD,
        delays=delays,
        mc_realisations=realisations,
        seed=99,
    )

    print(format_table(result.as_table(), float_format="{:.2f}"))
    print()
    crossover = result.crossover_delay
    if crossover is None:
        print("LBP-2 won at every swept delay — increase the delay range to "
              "see the crossover.")
    else:
        print(f"Crossover: LBP-1 first beats LBP-2 at ~{crossover:g} s per task "
              f"(the paper finds the same flip between 0.5 s and 1 s).")
    print("\nRule of thumb from the paper: once the time to ship a compensation "
          "batch is of the order of the sender's mean recovery time, stop "
          "reacting to failures and pre-balance instead.")


if __name__ == "__main__":
    main()
