"""Computing elements (nodes) with exponential service and preemptible failures.

A :class:`ComputeElement` owns a FIFO queue of tasks and a service process
that draws an exponential service time per task (rate ``λ_d``).  The service
process is preempted when the node's failure process signals a failure and
resumes (with the saved residual work, mirroring the paper's backup/context
mechanism) when the node recovers.  Because the service law is exponential,
resuming and restarting are statistically equivalent; both semantics are
available for sensitivity studies.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

import numpy as np

from repro.cluster.task import Task, TaskState
from repro.core.parameters import NodeParameters
from repro.sim.distributions import Exponential
from repro.sim.engine import Environment
from repro.sim.exceptions import Interrupt


class NodeState(enum.Enum):
    """Work state of a node: up ("1" in the paper) or down ("0")."""

    UP = "up"
    DOWN = "down"


class ComputeElement:
    """One node of the distributed system.

    Parameters
    ----------
    env:
        Simulation environment.
    index:
        Node index within the system.
    params:
        Stochastic parameters (:class:`~repro.core.parameters.NodeParameters`).
    rng:
        Random stream used for the service times of this node.
    preemption:
        ``"resume"`` (default) keeps the residual service requirement of a
        task interrupted by a failure; ``"restart"`` redraws it at recovery.
        Both are statistically identical for exponential service.
    on_task_completed:
        Callback ``f(node, task)`` invoked at every task completion (used by
        the system for completion detection and statistics).
    on_queue_change:
        Callback ``f(node)`` invoked whenever the queue length changes (used
        for tracing).
    service_time_provider:
        Optional callable ``f(task) -> float`` returning the service time of
        a task.  When omitted the time is drawn from the node's exponential
        service law; the test-bed emulation supplies the application layer's
        size-driven execution time instead.
    """

    _PREEMPTION_MODES = ("resume", "restart")

    def __init__(
        self,
        env: Environment,
        index: int,
        params: NodeParameters,
        rng: np.random.Generator,
        preemption: str = "resume",
        on_task_completed: Optional[Callable[["ComputeElement", Task], None]] = None,
        on_queue_change: Optional[Callable[["ComputeElement"], None]] = None,
        service_time_provider: Optional[Callable[[Task], float]] = None,
    ) -> None:
        if preemption not in self._PREEMPTION_MODES:
            raise ValueError(
                f"preemption must be one of {self._PREEMPTION_MODES}, got {preemption!r}"
            )
        self.env = env
        self.index = index
        self.params = params
        self.name = params.name or f"node-{index}"
        self.rng = rng
        self.preemption = preemption
        self.service_distribution = Exponential(params.service_rate)

        self.state = NodeState.UP if params.initially_up else NodeState.DOWN
        self._waiting: Deque[Task] = deque()
        self._in_service: Optional[Task] = None
        self._wake = None  # event the idle/blocked service loop waits on

        self.tasks_completed = 0
        self.failures = 0
        self.recoveries = 0
        self.busy_time = 0.0

        self._on_task_completed = on_task_completed
        self._on_queue_change = on_queue_change
        self._service_time_provider = service_time_provider

        self.service_process = env.process(
            self._service_loop(), name=f"{self.name}.service"
        )

    # -- public queue interface ------------------------------------------------

    @property
    def is_up(self) -> bool:
        """Whether the node is currently in the working state."""
        return self.state is NodeState.UP

    @property
    def queue_length(self) -> int:
        """Number of unfinished tasks held by the node (waiting + in service)."""
        return len(self._waiting) + (1 if self._in_service is not None else 0)

    @property
    def waiting_tasks(self) -> int:
        """Number of tasks waiting (excludes the task in service)."""
        return len(self._waiting)

    def assign_initial(self, tasks: Sequence[Task]) -> None:
        """Load the initial workload (must be called before the clock advances)."""
        for task in tasks:
            task.owner = self.index
            self._waiting.append(task)
        self._notify_queue_change()
        self._wake_service()

    def receive(self, tasks: Sequence[Task]) -> None:
        """Accept tasks arriving over the network."""
        for task in tasks:
            task.mark_delivered(self.index)
            self._waiting.append(task)
        if tasks:
            self._notify_queue_change()
            self._wake_service()

    def take_tasks(self, count: int) -> List[Task]:
        """Remove up to ``count`` *waiting* tasks (newest first) for transfer.

        The task currently in service is never taken: its execution context
        lives on the node (the paper's backup system restores it after a
        recovery), so only untouched tasks are eligible for migration.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count!r}")
        taken: List[Task] = []
        while self._waiting and len(taken) < count:
            taken.append(self._waiting.pop())
        if taken:
            self._notify_queue_change()
        return taken

    # -- failure / recovery interface -------------------------------------------

    def fail(self) -> None:
        """Put the node in the down state (called by the failure process)."""
        if self.state is NodeState.DOWN:
            raise RuntimeError(f"{self.name} is already down")
        self.state = NodeState.DOWN
        self.failures += 1
        if self.service_process.is_alive:
            self.service_process.interrupt("failure")

    def recover(self) -> None:
        """Bring the node back up (called by the failure process)."""
        if self.state is NodeState.UP:
            raise RuntimeError(f"{self.name} is already up")
        self.state = NodeState.UP
        self.recoveries += 1
        self._wake_service()

    # -- service process ----------------------------------------------------------

    def _service_loop(self):
        while True:
            # Block until there is work *and* the node is up.
            while not self._waiting or self.state is NodeState.DOWN:
                self._wake = self.env.event()
                try:
                    yield self._wake
                except Interrupt:
                    # A failure signal while idle/blocked: nothing to preempt,
                    # the loop condition re-evaluates the node state.
                    pass
                finally:
                    self._wake = None

            task = self._waiting.popleft()
            task.mark_in_service()
            self._in_service = task

            if task.remaining_service is not None and self.preemption == "resume":
                service_time = task.remaining_service
            elif self._service_time_provider is not None:
                service_time = float(self._service_time_provider(task))
            else:
                service_time = self.service_distribution.sample(self.rng)

            start = self.env.now
            try:
                yield self.env.timeout(service_time)
            except Interrupt:
                # Failure in mid-service: save the residual work and push the
                # task back to the head of the queue.
                elapsed = self.env.now - start
                self.busy_time += elapsed
                remaining = max(service_time - elapsed, 0.0)
                task.mark_preempted(
                    remaining if self.preemption == "resume" else None
                )
                self._waiting.appendleft(task)
                self._in_service = None
                continue

            # Task completed.
            self.busy_time += self.env.now - start
            task.mark_completed(self.env.now, self.index)
            self._in_service = None
            self.tasks_completed += 1
            self._notify_queue_change()
            if self._on_task_completed is not None:
                self._on_task_completed(self, task)

    # -- internal helpers ------------------------------------------------------------

    def _wake_service(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _notify_queue_change(self) -> None:
        if self._on_queue_change is not None:
            self._on_queue_change(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<ComputeElement {self.name} state={self.state.value} "
            f"queue={self.queue_length}>"
        )
