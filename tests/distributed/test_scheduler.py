"""Scheduler tests with scripted executors: load balancing, retries,
timeout reassignment — no simulation runs here."""

from typing import Dict, List

import pytest

from repro.distributed.executors import ShardExecutor, ShardOutcome
from repro.distributed.scheduler import ShardExecutionError, ShardScheduler


def _items(n):
    return {
        i: {"task": "t", "shard": i, "spec": {}, "blocks": [], "version": 1}
        for i in range(n)
    }


class ScriptedExecutor(ShardExecutor):
    """Executes items instantly at poll time, with scriptable failures.

    ``failures`` maps a shard index to a list of slot names that must fail
    it (consumed in order); ``dead_items`` lists item ids that never
    complete (for timeout tests).
    """

    name = "scripted"

    def __init__(self, slot_names, failures=None, dead_items=()):
        self._slots = tuple(slot_names)
        self.failures: Dict[int, List[str]] = {
            k: list(v) for k, v in (failures or {}).items()
        }
        self.dead_items = set(dead_items)
        self._pending = []
        self.dispatch_log = []  # (slot, shard, item_id)
        self.abandoned = []

    def slots(self):
        return self._slots

    def start(self, slot, item):
        self.dispatch_log.append((slot, int(item["shard"]), item["id"]))
        self._pending.append((slot, item))

    def poll(self, timeout):
        outcomes = []
        still = []
        for slot, item in self._pending:
            shard = int(item["shard"])
            if item["id"] in self.dead_items:
                still.append((slot, item))
                continue
            expected = self.failures.get(shard) or []
            if expected and expected[0] == slot:
                expected.pop(0)
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"], shard=shard, slot=slot,
                        error=f"scripted failure on {slot}",
                    )
                )
            else:
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"], shard=shard, slot=slot,
                        result={"shard": shard, "blocks": [], "wall_seconds": 0.0},
                    )
                )
        self._pending = still
        return outcomes

    def abandon(self, slot, item_id):
        self.abandoned.append((slot, item_id))
        self._pending = [(s, i) for s, i in self._pending if i["id"] != item_id]


class TestAssignment:
    def test_least_loaded_spreads_work_evenly(self):
        executor = ScriptedExecutor(["a", "b", "c"])
        scheduler = ShardScheduler(executor, poll_interval=0.01)
        results = scheduler.run(_items(9))
        assert set(results) == set(range(9))
        assert scheduler.slot_completed == {"a": 3, "b": 3, "c": 3}

    def test_round_robin_rotates(self):
        executor = ScriptedExecutor(["a", "b"])
        scheduler = ShardScheduler(
            executor, assignment="round-robin", poll_interval=0.01
        )
        scheduler.run(_items(4))
        assert scheduler.slot_completed == {"a": 2, "b": 2}

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ShardScheduler(ScriptedExecutor(["a"]), assignment="chaotic")


class TestRetries:
    def test_failed_shard_retries_on_another_slot(self):
        executor = ScriptedExecutor(["a", "b"], failures={0: ["a"], 1: []})
        events = []
        scheduler = ShardScheduler(
            executor, poll_interval=0.01, on_event=events.append
        )
        results = scheduler.run(_items(2))
        assert set(results) == {0, 1}
        # Shard 0's retry avoided the slot that failed it.
        retry_slots = [
            slot for slot, shard, _ in executor.dispatch_log if shard == 0
        ]
        assert retry_slots[0] == "a" and all(s == "b" for s in retry_slots[1:])
        assert any(e["event"] == "failed" for e in events)

    def test_exhausted_attempts_raise(self):
        executor = ScriptedExecutor(["a"], failures={0: ["a", "a"]})
        scheduler = ShardScheduler(executor, max_attempts=2, poll_interval=0.01)
        with pytest.raises(ShardExecutionError, match="after 2 attempts"):
            scheduler.run(_items(1))

    def test_fresh_item_id_per_attempt(self):
        executor = ScriptedExecutor(["a", "b"], failures={0: ["a"]})
        ShardScheduler(executor, poll_interval=0.01).run(_items(1))
        ids = [item_id for _, _, item_id in executor.dispatch_log]
        assert len(ids) == len(set(ids)) == 2


class TestReassignmentObservability:
    def test_reassignment_logs_warning_and_counts(self, caplog):
        from repro.obs.metrics import REGISTRY

        counter = REGISTRY.counter(
            "repro_scheduler_reassignments_total",
            "Shards requeued after a failure or timeout.",
            labelnames=("executor",),
        )
        before = counter.labels(executor="ScriptedExecutor").get()
        executor = ScriptedExecutor(["a", "b"], failures={0: ["a"]})
        with caplog.at_level("WARNING", logger="repro.distributed.scheduler"):
            ShardScheduler(executor, poll_interval=0.01).run(_items(1))
        assert counter.labels(executor="ScriptedExecutor").get() == before + 1
        (warning,) = [
            r for r in caplog.records
            if r.name == "repro.distributed.scheduler" and r.levelname == "WARNING"
        ]
        # The operator needs the shard, the item id, the attempt count and
        # where it ran — enough to correlate with worker-side logs.
        assert "shard 0" in warning.getMessage()
        assert "t:s0:a1" in warning.getMessage()
        assert "attempt 1/3" in warning.getMessage()
        assert "ScriptedExecutor" in warning.getMessage()

    def test_clean_run_logs_nothing(self, caplog):
        executor = ScriptedExecutor(["a", "b"])
        with caplog.at_level("WARNING", logger="repro.distributed.scheduler"):
            ShardScheduler(executor, poll_interval=0.01).run(_items(4))
        assert not [
            r for r in caplog.records if r.name == "repro.distributed.scheduler"
        ]


class TestTimeouts:
    def test_timed_out_shard_is_abandoned_and_reassigned(self):
        # The first attempt (on whichever slot) never completes; the
        # scheduler must abandon it and finish via a second attempt.
        executor = ScriptedExecutor(["a", "b"], dead_items={"t:s0:a1"})
        scheduler = ShardScheduler(
            executor, shard_timeout=0.05, poll_interval=0.01
        )
        results = scheduler.run(_items(1))
        assert 0 in results
        assert executor.abandoned and executor.abandoned[0][1] == "t:s0:a1"

    def test_no_slots_ever_raises_after_slot_wait(self):
        executor = ScriptedExecutor([])
        scheduler = ShardScheduler(executor, slot_wait=0.1, poll_interval=0.01)
        with pytest.raises(ShardExecutionError, match="no executor slot"):
            scheduler.run(_items(1))
