#!/usr/bin/env python
"""Beyond the paper: n-node exact analysis and dynamic external arrivals.

The paper analyses a two-node system and remarks that (a) the theory extends
to multiple nodes in a straightforward way and (b) dynamic versions of the
policies can be built by re-running a balancing episode at every external
workload arrival.  This example exercises both extensions implemented in
:mod:`repro.core.multinode` and :mod:`repro.core.arrivals`:

1. exact expected completion times for a 3-node system under several
   one-shot policies, computed from the absorbing CTMC, cross-checked with
   Monte-Carlo;
2. an open system where jobs arrive as a Poisson stream and every arrival
   triggers a re-balancing episode, comparing sojourn times with and
   without churn-aware balancing.

Run it with ``python examples/multinode_extension.py``.
"""

from repro import LBP1, LBP2, NoBalancing, run_monte_carlo
from repro.analysis.reporting import format_table
from repro.analysis.tables import Table
from repro.core.arrivals import ArrivalProcessConfig, DynamicSystem
from repro.core.multinode import expected_completion_time_multinode
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel


def three_node_system() -> SystemParameters:
    """A small heterogeneous 3-node system with churn."""
    return SystemParameters(
        nodes=(
            NodeParameters(service_rate=1.5, failure_rate=0.05, recovery_rate=0.1,
                           name="fast"),
            NodeParameters(service_rate=1.0, failure_rate=0.05, recovery_rate=0.05,
                           name="medium"),
            NodeParameters(service_rate=0.5, failure_rate=0.02, recovery_rate=0.1,
                           name="slow"),
        ),
        delay=TransferDelayModel(mean_delay_per_task=0.05),
    )


def exact_three_node_study() -> None:
    params = three_node_system()
    workload = (30, 6, 6)
    policies = [NoBalancing(), LBP1(gain=0.5), LBP1(gain=1.0), LBP2(gain=1.0)]

    table = Table(["policy", "gain", "exact mean (s)", "MC mean (s)", "CTMC states"],
                  title=f"3-node exact analysis, workload {workload}")
    for policy in policies:
        prediction = expected_completion_time_multinode(params, workload, policy=policy)
        estimate = run_monte_carlo(params, policy, workload,
                                   num_realisations=150, seed=5)
        table.add_row({
            "policy": policy.name,
            "gain": getattr(policy, "gain", float("nan")),
            "exact mean (s)": prediction.mean,
            "MC mean (s)": estimate.mean_completion_time,
            "CTMC states": prediction.num_states,
        })
    print(format_table(table, float_format="{:.2f}"))
    print("(the exact column only accounts for the t = 0 transfers; for LBP-2 "
          "the Monte-Carlo column additionally includes the failure-time "
          "compensation, which is why it is slightly lower)\n")


def dynamic_arrival_study() -> None:
    params = three_node_system()
    arrivals = ArrivalProcessConfig(rate=0.04, mean_batch_size=25, assignment="fastest")

    table = Table(["policy", "jobs", "tasks done", "mean sojourn (s)", "episodes"],
                  title="Open system: Poisson job arrivals, re-balance at every arrival")
    for policy in (NoBalancing(), LBP1(gain=0.8), LBP2(gain=1.0)):
        system = DynamicSystem(params, policy, arrivals, seed=17)
        result = system.run(horizon=2000.0)
        table.add_row({
            "policy": policy.name,
            "jobs": result.jobs_arrived,
            "tasks done": result.tasks_completed,
            "mean sojourn (s)": result.mean_sojourn_time,
            "episodes": result.balancing_episodes,
        })
    print(format_table(table, float_format="{:.1f}"))
    print("(re-balancing at every arrival keeps the volunteers busy and cuts "
          "the mean task sojourn time, exactly the dynamic variant sketched "
          "in the paper's conclusion)")


def main() -> None:
    exact_three_node_study()
    dynamic_arrival_study()


if __name__ == "__main__":
    main()
