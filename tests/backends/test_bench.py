"""Benchmark harness: timings, parity verdicts, report schema, JSON output."""

from __future__ import annotations

import json

import pytest

from repro.backends.bench import (
    BENCH_SCHEMA_VERSION,
    BackendTiming,
    bench_scenario_names,
    benchmark_scenario,
    run_benchmark,
)
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


@pytest.fixture
def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-tiny",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=60,
        seed=21,
    )


class TestBenchmarkScenario:
    def test_times_both_backends_and_checks_parity(self, tiny_spec):
        result = benchmark_scenario(tiny_spec)
        assert set(result.timings) == {"reference", "vectorized"}
        for timing in result.timings.values():
            assert timing.wall_seconds > 0.0
            assert timing.realisations == 60
            assert timing.throughput > 0.0
        check = result.parity["vectorized"]
        assert 0.0 <= check.ks_statistic <= 1.0
        assert check.passed == (check.ks_pvalue > check.alpha)
        assert result.speedup("vectorized") is not None

    def test_rejects_non_mc_point_scenarios(self):
        with pytest.raises(ValueError, match="mc_point"):
            benchmark_scenario("fig4")

    def test_rejects_zero_repeats(self, tiny_spec):
        with pytest.raises(ValueError, match="repeats"):
            benchmark_scenario(tiny_spec, repeats=0)

    def test_seed_override(self, tiny_spec):
        result = benchmark_scenario(tiny_spec, seed=99)
        assert result.seed == 99


class TestReport:
    def test_report_schema_and_save(self, tiny_spec, tmp_path):
        report = run_benchmark(scenarios=[tiny_spec])
        payload = report.to_dict()
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["backends"] == ["reference", "vectorized"]
        assert "all_parity_passed" in payload["summary"]
        assert "min_speedup_vectorized" in payload["summary"]
        (scenario,) = payload["scenarios"]
        assert scenario["name"] == "bench-tiny"
        assert "vectorized" in scenario["speedup_vs_reference"]

        path = report.save(tmp_path / "BENCH_results.json")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(report.to_json())

    def test_render_mentions_backends_and_verdict(self, tiny_spec):
        report = run_benchmark(scenarios=[tiny_spec])
        rendered = report.render()
        assert "reference" in rendered
        assert "vectorized" in rendered
        assert "parity gate" in rendered

    def test_quick_set_resolves_in_registry(self):
        # Every scenario the harness would benchmark must resolve to an
        # mc_point spec (no stale names in QUICK_SCENARIOS or the registry).
        from repro.backends.bench import QUICK_SCENARIOS, _resolve_bench_spec

        for name in QUICK_SCENARIOS:
            assert _resolve_bench_spec(name, quick=True).kind == "mc_point"
        for name in bench_scenario_names():
            assert _resolve_bench_spec(name, quick=False).kind == "mc_point"


class TestTiming:
    def test_zero_wall_time_reports_infinite_throughput(self):
        timing = BackendTiming(
            backend="reference",
            wall_seconds=0.0,
            realisations=10,
            mean_completion_time=1.0,
            std_completion_time=0.1,
        )
        assert timing.throughput == float("inf")


class TestSerializationBenchmark:
    """The frame-vs-JSON microbench: report schema and gate logic.

    The deterministic facts (byte counts, round-trip identity) are
    asserted at full strength; the timing ratios are asserted only
    loosely here — the committed CI gate (`repro bench --serialization`)
    runs with enough rounds on a quiet runner to hold the real 3x/5x
    thresholds, while a loaded pytest worker would make them flaky.
    """

    def test_report_schema_and_size_gate(self):
        from repro.backends.bench import (
            SERIALIZATION_SCHEMA_VERSION,
            run_serialization_benchmark,
        )

        report = run_serialization_benchmark(rounds=5)
        payload = report.to_dict()
        assert payload["schema_version"] == SERIALIZATION_SCHEMA_VERSION
        assert payload["rounds"] == 5
        labels = [case["label"] for case in payload["cases"]]
        assert "result-batch-8x1x250" in labels
        gate = report.gate_case
        # Byte counts are deterministic: the 3x size gate holds exactly.
        assert gate.size_ratio >= 3.0
        # Decode is timing: only sanity-checked here (see the docstring).
        assert gate.decode_speedup > 1.0
        for case in report.cases:
            assert case.frame_bytes < case.json_bytes

    def test_write_report(self, tmp_path):
        from repro.backends.bench import run_serialization_benchmark

        report = run_serialization_benchmark(rounds=2)
        path = report.write(tmp_path / "BENCH_serialization.json")
        parsed = json.loads(path.read_text())
        assert parsed["cases"][0]["json_bytes"] > 0

    def test_gate_problems_flag_each_threshold(self):
        from repro.backends.bench import (
            SerializationBenchmarkReport,
            SerializationCase,
            serialization_gate_problems,
        )

        def case(size_ratio, decode_speedup):
            return SerializationCase(
                label="result-batch-8x1x250", gate=True,
                json_bytes=30000, frame_bytes=int(30000 / size_ratio),
                json_decode_seconds=1e-3,
                frame_decode_seconds=1e-3 / decode_speedup,
                json_encode_seconds=1e-3, frame_encode_seconds=1e-4,
            )

        good = SerializationBenchmarkReport(cases=[case(3.2, 5.5)], rounds=1)
        assert serialization_gate_problems(good) == []

        small = SerializationBenchmarkReport(cases=[case(2.0, 5.5)], rounds=1)
        (problem,) = serialization_gate_problems(small)
        assert "size ratio" in problem

        slow = SerializationBenchmarkReport(cases=[case(3.2, 4.0)], rounds=1)
        (problem,) = serialization_gate_problems(slow)
        assert "decode speedup" in problem

        empty = SerializationBenchmarkReport(cases=[], rounds=1)
        (problem,) = serialization_gate_problems(empty)
        assert "no gate case" in problem

    def test_non_gate_cases_are_informational_only(self):
        from repro.backends.bench import (
            SerializationBenchmarkReport,
            SerializationCase,
            serialization_gate_problems,
        )

        slow_context_case = SerializationCase(
            label="single-item-1x250", gate=False,
            json_bytes=6000, frame_bytes=5999,
            json_decode_seconds=1e-3, frame_decode_seconds=1e-3,
            json_encode_seconds=1e-3, frame_encode_seconds=1e-3,
        )
        gate_case = SerializationCase(
            label="result-batch-8x1x250", gate=True,
            json_bytes=30000, frame_bytes=9000,
            json_decode_seconds=1e-3, frame_decode_seconds=1e-4,
            json_encode_seconds=1e-3, frame_encode_seconds=1e-4,
        )
        report = SerializationBenchmarkReport(
            cases=[slow_context_case, gate_case], rounds=1
        )
        assert serialization_gate_problems(report) == []
