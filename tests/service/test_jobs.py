"""JobQueue behaviour, driven directly on an event loop (no HTTP)."""

from __future__ import annotations

import asyncio

import pytest

from repro.scenarios import ResultCache, resolve
from repro.service.jobs import DONE, FAILED, QUEUED, JobQueue


def run(coro):
    return asyncio.run(coro)


async def _with_queue(body, workers=None):
    queue = JobQueue(workers=workers)
    try:
        return await body(queue)
    finally:
        await queue.close()


class TestJobQueue:
    def test_smoke_job_runs_to_done_with_progress_events(self):
        async def body(queue):
            job = queue.submit({"scenario": "smoke"})
            assert job.state == QUEUED
            assert job.total_points == 1
            await queue.wait(job, timeout=60)
            assert job.state == DONE
            assert job.completed_points == 1
            (point,) = job.results
            assert point["name"] == "smoke"
            assert point["from_cache"] is False
            assert point["content_hash"] == resolve("smoke").content_hash
            assert isinstance(point["headline"], float)
            states = [event["state"] for event in job.events]
            assert states[0] == "queued"
            assert states[-1] == "done"
            assert "running" in states
            seqs = [event["seq"] for event in job.events]
            assert seqs == list(range(len(seqs)))

        run(_with_queue(body))

    def test_second_submission_completes_at_submit_time_from_cache(self):
        async def body(queue):
            first = queue.submit({"scenario": "smoke"})
            await queue.wait(first, timeout=60)

            second = queue.submit({"scenario": "smoke"})
            # No await: the fully cached job is already terminal.
            assert second.state == DONE
            assert second.results[0]["from_cache"] is True
            assert (
                second.results[0]["content_hash"]
                == first.results[0]["content_hash"]
            )
            assert second.results[0]["headline"] == first.results[0]["headline"]

        run(_with_queue(body))

    def test_force_recomputes_despite_cache(self):
        async def body(queue):
            first = queue.submit({"scenario": "smoke"})
            await queue.wait(first, timeout=60)
            forced = queue.submit({"scenario": "smoke", "force": True})
            assert forced.state == QUEUED
            await queue.wait(forced, timeout=60)
            assert forced.results[0]["from_cache"] is False

        run(_with_queue(body))

    def test_multi_point_job_reports_incremental_progress(self):
        async def body(queue):
            job = queue.submit({"scenarios": ["smoke", "smoke"], "seed": 5})
            await queue.wait(job, timeout=60)
            assert job.state == DONE
            assert job.total_points == 2
            assert job.completed_points == 2
            progress = [
                event["completed_points"]
                for event in job.events
                if "point" in event
            ]
            assert progress == [1, 2]

        run(_with_queue(body))

    def test_failing_job_surfaces_error(self):
        async def body(queue):
            # A structurally valid spec the runner cannot execute: the
            # workload length no longer matches the two-node system.
            bad = resolve("smoke").with_(workload=(1, 2, 3))
            job = queue.submit({"spec": bad.to_dict()})
            await queue.wait(job, timeout=60)
            assert job.state == FAILED
            assert job.error
            assert job.finished

        run(_with_queue(body))

    def test_events_stream_replays_for_late_subscribers(self):
        async def body(queue):
            job = queue.submit({"scenario": "smoke"})
            await queue.wait(job, timeout=60)
            events = [event async for event in queue.events(job)]
            assert events == job.events
            assert events[-1]["state"] == "done"

        run(_with_queue(body))

    def test_events_stream_follows_a_live_job(self):
        async def body(queue):
            job = queue.submit({"scenario": "smoke"})
            events = [event async for event in queue.events(job)]
            assert events[0]["state"] == "queued"
            assert events[-1]["state"] == "done"

        run(_with_queue(body))

    def test_counts_and_lookup(self):
        async def body(queue):
            job = queue.submit({"scenario": "smoke"})
            assert queue.get(job.id) is job
            with pytest.raises(KeyError, match="unknown job"):
                queue.get("job-404")
            await queue.wait(job, timeout=60)
            counts = queue.counts()
            assert counts["total"] == 1
            assert counts["done"] == 1

        run(_with_queue(body))

    def test_finished_jobs_are_pruned_beyond_cap(self):
        async def body(queue):
            queue.max_finished_jobs = 2
            first = queue.submit({"scenario": "smoke"})
            await queue.wait(first, timeout=60)
            ids = [first.id]
            for _ in range(3):
                ids.append(queue.submit({"scenario": "smoke"}).id)  # cached
            # Only the 2 newest finished jobs survive; results stay
            # fetchable from the cache regardless.
            assert list(queue.jobs) == ids[-2:]
            assert queue.counts()["total"] == 2

        run(_with_queue(body))

    def test_running_jobs_are_never_pruned(self):
        async def body(queue):
            queue.max_finished_jobs = 0
            job = queue.submit({"scenario": "smoke"})
            assert job.id in queue.jobs  # queued/running: exempt from pruning
            await queue.wait(job, timeout=60)
            queue.submit({"scenario": "smoke", "seed": 3})
            assert job.id not in queue.jobs  # finished: now evictable

        run(_with_queue(body))

    def test_jobs_share_one_cache(self, tmp_path):
        async def body(queue):
            job = queue.submit({"scenario": "smoke"})
            await queue.wait(job, timeout=60)
            assert len(ResultCache()) == 1
            assert queue.cache.contains(resolve("smoke"))

        run(_with_queue(body))
