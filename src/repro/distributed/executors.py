"""Pluggable shard executors: where shard work items actually run.

An executor exposes *slots* — the schedulable units the
:class:`~repro.distributed.scheduler.ShardScheduler` balances load over —
and an asynchronous ``start``/``poll`` surface:

* ``slots()`` names the currently-live slots (a process pool's slots are
  fixed; the HTTP worker board's grow and shrink as workers register and
  die);
* ``start(slot, item)`` begins executing a work item on a slot;
* ``poll(timeout)`` returns outcomes completed since the last call,
  blocking up to ``timeout`` for the first one.

Four implementations: :class:`InlineExecutor` (in-process, serial — the
zero-dependency default), :class:`ProcessShardExecutor` (a local process
pool), :class:`FuturesShardExecutor` (an adapter over an externally-owned
:class:`concurrent.futures.Executor`, so the scenario orchestrator's
shared pool plugs straight into the engine), and the service-side board
executor for remote ``repro worker`` processes
(:class:`repro.service.shards.BoardExecutor` — it lives with the board so
this module stays importable without the service).
"""

from __future__ import annotations

import atexit
import threading
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, Executor, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.distributed.work import execute_work_item, shard_outcome_error, warm_block_runtime
from repro.montecarlo.pooling import cap_pool_size, default_pool_size


def _noop() -> None:
    """Warm-up task: forces a pool process to exist (and import the world)."""

#: Executor names the CLI and the job API accept.  ``workers`` is only
#: meaningful inside a running results service (it needs the worker board).
EXECUTOR_NAMES = ("inline", "process", "workers")


@dataclass
class ShardOutcome:
    """One finished (or failed) shard execution attempt."""

    item_id: str
    shard: int
    slot: str
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


class ShardExecutor(ABC):
    """Strategy interface for running shard work items."""

    name: str = "executor"

    #: How work items reach the slots: ``"pickle"`` executors move items by
    #: reference or pickle and accept ad-hoc items carrying live Python
    #: objects; ``"json"`` executors (the HTTP worker board) can only carry
    #: spec-described items.
    transport: str = "pickle"

    #: How many items the scheduler may keep in flight *per slot*.  Depth 1
    #: is classic one-at-a-time dispatch; the HTTP worker board raises it so
    #: one batched claim round-trip can hand a worker several shards.
    slot_depth: int = 1

    #: Prior estimate of one dispatch round-trip's overhead in seconds
    #: (everything but the compute), used by the engine's adaptive planner
    #: until it has measured the real thing.
    round_trip_hint: float = 0.0

    #: Persistent executors outlive a single engine run — the engine never
    #: closes them, even when it resolved them itself (see
    #: :func:`shared_process_executor`).
    persistent: bool = False

    @abstractmethod
    def slots(self) -> Tuple[str, ...]:
        """Names of the currently-live slots (may change between calls)."""

    @abstractmethod
    def start(self, slot: str, item: Dict[str, Any]) -> None:
        """Begin executing ``item`` on ``slot`` (non-blocking)."""

    @abstractmethod
    def poll(self, timeout: float) -> List[ShardOutcome]:
        """Outcomes completed since the last poll (waits up to ``timeout``)."""

    def abandon(self, slot: str, item_id: str) -> None:
        """Stop caring about an in-flight item (timeout reassignment)."""

    def close(self) -> None:
        """Release resources; the executor is not reusable afterwards."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InlineExecutor(ShardExecutor):
    """Serial in-process execution — one slot, work runs inside ``poll``."""

    name = "inline"

    def __init__(self) -> None:
        self._queue: List[Dict[str, Any]] = []
        self._abandoned: set = set()

    def slots(self) -> Tuple[str, ...]:
        return ("inline-0",)

    def start(self, slot: str, item: Dict[str, Any]) -> None:
        self._queue.append(item)

    def poll(self, timeout: float) -> List[ShardOutcome]:
        while self._queue:
            item = self._queue.pop(0)
            if item["id"] in self._abandoned:
                continue
            try:
                result = execute_work_item(item)
            except Exception as error:  # noqa: BLE001 - shard boundary
                return [
                    ShardOutcome(
                        item_id=item["id"],
                        shard=int(item["shard"]),
                        slot="inline-0",
                        error=shard_outcome_error(error),
                    )
                ]
            return [
                ShardOutcome(
                    item_id=item["id"],
                    shard=int(item["shard"]),
                    slot="inline-0",
                    result=result,
                )
            ]
        return []

    def abandon(self, slot: str, item_id: str) -> None:
        self._abandoned.add(item_id)


class ProcessShardExecutor(ShardExecutor):
    """A local process pool of warm, long-lived block-executor processes.

    Pool processes are started with :func:`repro.distributed.work
    .warm_block_runtime` as their initializer, so numpy, the spec machinery
    and the execution backends are imported once per *process*, not once
    per shard — the first work item a slot receives pays compute, nothing
    else.  With ``persistent=True`` the engine leaves the pool alive
    between runs (see :func:`shared_process_executor`), which is what makes
    a sweep of many small ensembles reuse the same warm slots.
    """

    name = "process"
    round_trip_hint = 0.005

    def __init__(self, workers: int, persistent: bool = False) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        self.persistent = persistent
        self._pool: Optional[ProcessPoolExecutor] = None
        self._in_flight: Dict[Future, Tuple[str, Dict[str, Any]]] = {}
        self._abandoned: set = set()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=warm_block_runtime
            )
        return self._pool

    def warm(self) -> None:
        """Spawn (and pre-import) the pool processes up front.

        Each process runs :func:`warm_block_runtime` on start; the no-op
        round-trip here just forces every process to exist *now*, so
        scaling benchmarks time the computation, not process start-up."""
        pool = self._ensure_pool()
        futures = [pool.submit(_noop) for _ in range(self.workers)]
        for future in futures:
            future.result()

    def slots(self) -> Tuple[str, ...]:
        return tuple(f"process-{i}" for i in range(self.workers))

    def start(self, slot: str, item: Dict[str, Any]) -> None:
        future = self._ensure_pool().submit(execute_work_item, item)
        self._in_flight[future] = (slot, item)

    def poll(self, timeout: float) -> List[ShardOutcome]:
        if not self._in_flight:
            return []
        done, _pending = wait(
            self._in_flight, timeout=timeout, return_when=FIRST_COMPLETED
        )
        outcomes: List[ShardOutcome] = []
        for future in done:
            slot, item = self._in_flight.pop(future)
            if item["id"] in self._abandoned:
                continue
            error = future.exception()
            if error is not None:
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"],
                        shard=int(item["shard"]),
                        slot=slot,
                        error=shard_outcome_error(error),
                    )
                )
            else:
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"],
                        shard=int(item["shard"]),
                        slot=slot,
                        result=future.result(),
                    )
                )
        return outcomes

    def abandon(self, slot: str, item_id: str) -> None:
        self._abandoned.add(item_id)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None
        self._in_flight.clear()


#: Process-wide warm pools, keyed by slot count.  ``resolve_executor``
#: hands these out for named ``"process"`` requests, so back-to-back
#: engine runs (a sweep, a grid) reuse already-imported processes instead
#: of forking a cold pool per run.
_SHARED_POOLS: Dict[int, ProcessShardExecutor] = {}
_SHARED_LOCK = threading.Lock()


def shared_process_executor(workers: int) -> ProcessShardExecutor:
    """The process-wide warm pool with ``workers`` slots (created lazily).

    The returned executor is ``persistent``: the engine will not close it
    after a run, and an :mod:`atexit` hook shuts every shared pool down at
    interpreter exit.  Callers who want a private, disposable pool should
    construct :class:`ProcessShardExecutor` directly.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    with _SHARED_LOCK:
        if not _SHARED_POOLS:
            atexit.register(close_shared_pools)
        executor = _SHARED_POOLS.get(workers)
        if executor is None:
            executor = ProcessShardExecutor(workers, persistent=True)
            _SHARED_POOLS[workers] = executor
        return executor


def close_shared_pools() -> None:
    """Shut down every shared warm pool (atexit hook; tests call it too)."""
    with _SHARED_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for executor in pools:
        executor.close()


class FuturesShardExecutor(ShardExecutor):
    """An externally-owned :class:`concurrent.futures.Executor` as slots.

    The adapter the engine wraps around a shared pool (the scenario
    orchestrator keeps one ``ProcessPoolExecutor`` alive across every point
    of a sweep).  The wrapped pool is **never shut down here** — closing
    this executor only drops the in-flight bookkeeping.
    """

    name = "futures"

    def __init__(self, executor: Executor, slots: Optional[int] = None) -> None:
        self._executor = executor
        if slots is None:
            slots = getattr(executor, "_max_workers", None) or default_pool_size()
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots!r}")
        self._slots = tuple(f"futures-{i}" for i in range(int(slots)))
        self._in_flight: Dict[Future, Tuple[str, Dict[str, Any]]] = {}
        self._abandoned: set = set()

    def slots(self) -> Tuple[str, ...]:
        return self._slots

    def start(self, slot: str, item: Dict[str, Any]) -> None:
        future = self._executor.submit(execute_work_item, item)
        self._in_flight[future] = (slot, item)

    def poll(self, timeout: float) -> List[ShardOutcome]:
        if not self._in_flight:
            return []
        done, _pending = wait(
            self._in_flight, timeout=timeout, return_when=FIRST_COMPLETED
        )
        outcomes: List[ShardOutcome] = []
        for future in done:
            slot, item = self._in_flight.pop(future)
            if item["id"] in self._abandoned:
                continue
            error = future.exception()
            if error is not None:
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"],
                        shard=int(item["shard"]),
                        slot=slot,
                        error=shard_outcome_error(error),
                    )
                )
            else:
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"],
                        shard=int(item["shard"]),
                        slot=slot,
                        result=future.result(),
                    )
                )
        return outcomes

    def abandon(self, slot: str, item_id: str) -> None:
        self._abandoned.add(item_id)

    def close(self) -> None:
        # The pool belongs to the caller; only forget the in-flight items.
        self._in_flight.clear()


def resolve_executor(
    executor: Union[None, str, ShardExecutor, Executor],
    workers: Optional[int] = None,
    num_items: Optional[int] = None,
) -> ShardExecutor:
    """Coerce an executor argument to a :class:`ShardExecutor` instance.

    Accepts a name, a live :class:`ShardExecutor`, a plain
    :class:`concurrent.futures.Executor` (wrapped, never shut down) or
    ``None`` — which picks ``process`` when a worker count is configured
    and ``inline`` otherwise.  ``workers`` sizes the process pool (default:
    one slot per CPU, capped to keep surprise fan-out polite) and
    ``num_items``, when known, caps the pool at the work-item count via
    :func:`repro.montecarlo.pooling.cap_pool_size`.
    """
    if isinstance(executor, ShardExecutor):
        return executor
    if isinstance(executor, Executor):
        slots = (
            workers
            if workers is not None
            else getattr(executor, "_max_workers", None)
        )
        if slots is not None and num_items is not None:
            slots = cap_pool_size(slots, num_items)
        return FuturesShardExecutor(executor, slots=slots)
    if executor is None:
        executor = "process" if workers and workers > 1 else "inline"
    if executor == "inline":
        return InlineExecutor()
    if executor == "process":
        size = (
            cap_pool_size(workers, num_items)
            if num_items is not None
            else max(1, workers if workers is not None else default_pool_size())
        )
        return shared_process_executor(size)
    if executor == "workers":
        raise ValueError(
            "the 'workers' executor needs a running results service (it "
            "dispatches to registered `repro worker` processes); submit the "
            "job through the service instead of running it in-process"
        )
    raise ValueError(
        f"unknown shard executor {executor!r}; known executors: "
        f"{', '.join(EXECUTOR_NAMES)}"
    )
