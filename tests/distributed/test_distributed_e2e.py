"""Distributed end-to-end acceptance: real processes, real sockets.

Boots `repro serve` plus two `repro worker` subprocesses and runs the
sharded gain-sweep (Fig. 3's Monte-Carlo curve) through the fleet — the
flow the CI ``distributed-e2e`` job executes.  Asserts that the work was
actually spread over both workers, that shard progress streamed, and that
a re-submission with a different shard count is served from the
block-level shard cache.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient

REPO = pathlib.Path(__file__).resolve().parents[2]

_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$")


def _samples(metrics_text: str):
    """Prometheus text → ``[(name, labels, value), ...]`` (comments skipped)."""
    out = []
    for line in metrics_text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable metrics line: {line!r}"
        labels = dict(re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"',
                                 match.group(2) or ""))
        out.append((match.group(1), labels, float(match.group(3))))
    return out


def _total(samples, name: str, **labels: str) -> float:
    """Sum of every series of ``name`` whose labels include ``labels``."""
    return sum(
        value for sample_name, sample_labels, value in samples
        if sample_name == name
        and all(sample_labels.get(k) == v for k, v in labels.items())
    )


def _env(cache_dir: str) -> dict:
    return dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_CACHE_DIR=cache_dir,
    )


class ServeProcess:
    """`python -m repro serve --port 0` with an isolated cache dir."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.proc = None
        self.url = None

    def __enter__(self) -> "ServeProcess":
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            env=_env(self.cache_dir),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = self.proc.stdout.readline()
        assert "listening on http://" in line, f"unexpected serve output: {line!r}"
        self.url = line.rsplit(" ", 1)[-1].strip()
        return self

    def __exit__(self, *exc_info) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _spawn_worker(url: str, cache_dir: str, name: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", url, "--name", name, "--max-idle", "120",
        ],
        env=_env(cache_dir),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_sharded_gain_sweep_through_a_two_worker_fleet(cache_dir):
    with ServeProcess(cache_dir) as server:
        client = ServiceClient(server.url, timeout=60.0)
        workers = [
            _spawn_worker(server.url, cache_dir, name) for name in ("w-a", "w-b")
        ]
        try:
            # Wait until both workers appear on the board.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if len(client.shard_workers()) == 2:
                    break
                time.sleep(0.2)
            assert len(client.shard_workers()) == 2

            # ---- the sharded fig3-gain sweep runs on the fleet ----------
            job = client.submit(family="gain-sweep", quick=True, executor="workers")
            done = client.wait(job.id, timeout=300, interval=0.5)
            assert done.state == "done"
            assert done.completed_points == done.total_points == 3
            assert all(point["from_cache"] is False for point in done.results)

            # Shard progress streamed over NDJSON.
            events = list(client.events(job.id))
            shard_events = [e["shard_event"] for e in events if "shard_event" in e]
            assert sum(1 for e in shard_events if e["event"] == "done") == 6

            # Both workers actually executed shards (load was balanced).
            fleet = client.shard_workers()
            per_worker = {w["name"]: w["completed_shards"] for w in fleet}
            assert all(count > 0 for count in per_worker.values()), per_worker

            # The merged means trace a sane fig3 curve (finite, positive).
            headline = {p["name"]: p["headline"] for p in done.results}
            assert all(value > 0 for value in headline.values())

            # ---- a different shard count re-uses the cached blocks ------
            resweep = client.submit(
                family="gain-sweep", quick=True, shards=3, executor="inline"
            )
            redone = client.wait(resweep.id, timeout=300, interval=0.5)
            assert redone.state == "done"
            for point in redone.results:
                # New shard count → new content hash → not a top-level cache
                # hit, but the merged mean is identical because every seed
                # block came back from the shard store.
                assert point["from_cache"] is False
                assert point["headline"] == headline[point["name"]]
            # Pure cache reads: no shard was dispatched to the fleet again.
            after = {w["name"]: w["completed_shards"] for w in client.shard_workers()}
            assert after == per_worker

            # ---- /metrics tells the same story in Prometheus text -------
            # (This is the scrape the CI distributed-e2e job performs: the
            # core series must exist and reflect the run above.)
            samples = _samples(client.metrics())
            assert _total(samples, "repro_jobs_submitted_total") == 2
            assert _total(samples, "repro_jobs_completed_total", state="done") == 2
            # Shard throughput: the fleet completed all six sweep shards.
            assert _total(samples, "repro_scheduler_shards_completed_total") >= 6
            assert _total(samples, "repro_scheduler_dispatch_total") >= 6
            # The resweep was fed entirely from the block-level shard cache.
            assert _total(samples, "repro_cache_requests_total",
                          store="shard", outcome="hit") > 0
            assert _total(samples, "repro_http_requests_total",
                          route="/v1/jobs", method="POST") == 2
            assert _total(samples, "repro_engine_phase_seconds_count",
                          phase="merge") > 0
            # Fleet telemetry piggybacked on claims/results surfaces as
            # worker-labelled series — one set per worker process.
            for name in ("w-a", "w-b"):
                assert _total(samples, "repro_worker_items_total",
                              worker=name, outcome="ok") > 0, name
                assert _total(samples, "repro_worker_blocks_total",
                              worker=name) > 0, name

            # ---- /v1/fleet aggregates the same telemetry as JSON --------
            fleet_summary = client.fleet()
            by_name = {w["name"]: w for w in fleet_summary["workers"]}
            assert set(by_name) >= {"w-a", "w-b"}
            for name in ("w-a", "w-b"):
                assert by_name[name]["items_ok"] > 0
                assert by_name[name]["busy_seconds"] > 0
            assert fleet_summary["fleet"]["size"] == 2
            assert fleet_summary["fleet"]["items_ok"] >= 6

            # ---- the job trace stitches spans from both worker processes
            spans = client.job_trace(job.id)
            worker_items = [s for s in spans if s["name"] == "worker.item"]
            remote_pids = {s["attrs"]["pid"] for s in worker_items}
            assert len(remote_pids) >= 2, (
                f"expected spans from >=2 worker processes, saw {remote_pids}"
            )
            # Every stitched span hangs off a scheduler.shard span that is
            # itself rooted in the job tree — no orphans.
            by_id = {s["span"]: s for s in spans}
            shard_ids = {
                s["span"] for s in spans if s["name"] == "scheduler.shard"
            }
            assert all(s["parent"] in shard_ids for s in worker_items)
            for item in worker_items:
                node = item
                while node["parent"] is not None:
                    node = by_id[node["parent"]]
                assert node["name"] == "job.point"
        finally:
            for worker in workers:
                worker.terminate()
            for worker in workers:
                try:
                    worker.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    worker.kill()


def test_worker_help_is_fast_and_stack_free(cache_dir):
    out = subprocess.run(
        [sys.executable, "-m", "repro", "worker", "--help"],
        env=_env(cache_dir),
        capture_output=True,
        text=True,
        check=True,
    )
    assert "shard" in out.stdout.lower()
