"""The no-failure special case.

When the failure rates are set to zero the regeneration model of Section 2
collapses to the delay-only model of the authors' earlier work ([8]–[11] in
the paper), which is what LBP-2 uses to choose its *initial* gain and what
Fig. 3 / Table 1 report as the "without node failure" reference.

All functions here simply evaluate the general solver on
``params.without_failures()``; they exist so that calling code reads the way
the paper does ("the optimal gain for the no-failure case"), and so the
special case can be tested against closed-form expectations (e.g. with zero
delay and a single working node the completion time is Erlang distributed
with mean ``m / λ_d``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.completion_time import CompletionTimeSolver, LBP1Prediction
from repro.core.parameters import SystemParameters, validate_workload

__all__ = [
    "expected_completion_time_no_failure",
    "lbp1_no_failure_prediction",
    "no_failure_solver",
]


def no_failure_solver(
    params: SystemParameters, method: str = "vectorized"
) -> CompletionTimeSolver:
    """A completion-time solver for the failure-free version of ``params``."""
    return CompletionTimeSolver(params.without_failures(), method=method)


def expected_completion_time_no_failure(
    params: SystemParameters,
    workload: Sequence[int],
    gain: float,
    sender: Optional[int] = None,
    receiver: Optional[int] = None,
    method: str = "vectorized",
) -> float:
    """Mean completion time of the one-shot transfer when nodes never fail.

    This is the objective the authors' earlier (delay-only) model minimises
    and the quantity LBP-2 uses to pick its initial gain.
    """
    validate_workload(workload, params)
    solver = no_failure_solver(params, method=method)
    return solver.lbp1(workload, gain, sender=sender, receiver=receiver).mean


def lbp1_no_failure_prediction(
    params: SystemParameters,
    workload: Sequence[int],
    gain: float,
    sender: Optional[int] = None,
    receiver: Optional[int] = None,
    method: str = "vectorized",
) -> LBP1Prediction:
    """Full prediction object for the no-failure one-shot transfer."""
    solver = no_failure_solver(params, method=method)
    return solver.lbp1(workload, gain, sender=sender, receiver=receiver)
