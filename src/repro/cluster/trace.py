"""Queue-length and event tracing (the data behind Fig. 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.monitor import TimeSeriesMonitor


@dataclass(frozen=True)
class TraceEvent:
    """A discrete event recorded on the system time-line."""

    time: float
    kind: str
    node: Optional[int] = None
    detail: str = ""

    _KINDS = (
        "failure",
        "recovery",
        "transfer_started",
        "transfer_arrived",
        "task_completed",
        "completion",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown trace event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time!r}")


class QueueTrace:
    """Queue-length trajectory of one node (piecewise constant)."""

    def __init__(self, node_index: int, name: str = "") -> None:
        self.node_index = node_index
        self.name = name or f"node-{node_index}"
        self._monitor = TimeSeriesMonitor(self.name)

    def record(self, time: float, queue_length: int) -> None:
        """Record the queue length (waiting + in service) at ``time``."""
        self._monitor.record(time, float(queue_length))

    def __len__(self) -> int:
        return len(self._monitor)

    @property
    def times(self) -> np.ndarray:
        return self._monitor.times

    @property
    def values(self) -> np.ndarray:
        return self._monitor.values

    def as_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, queue lengths)`` arrays for plotting or table output."""
        return self._monitor.as_arrays()

    def on_grid(self, grid: Sequence[float]) -> np.ndarray:
        """Queue length evaluated on a regular time grid."""
        return self._monitor.sample_on_grid(grid)

    def value_at(self, time: float) -> float:
        """Queue length at ``time`` (right-continuous piecewise constant)."""
        return self._monitor.value_at(time)

    def longest_flat_segment(self) -> float:
        """Duration of the longest interval with no queue-length change.

        The paper points at the "longer flat portions of the queues"
        corresponding to recovery periods (Fig. 4); this statistic makes
        that observation checkable.
        """
        times = self._monitor.times
        values = self._monitor.values
        if len(times) < 2:
            return 0.0
        # Merge consecutive identical values into flat runs.
        longest = 0.0
        run_start = times[0]
        for k in range(1, len(times)):
            if values[k] != values[k - 1]:
                longest = max(longest, times[k] - run_start)
                run_start = times[k]
        longest = max(longest, times[-1] - run_start)
        return float(longest)


class SystemTrace:
    """All traces of one simulation realisation."""

    def __init__(self, num_nodes: int) -> None:
        self.queues: Dict[int, QueueTrace] = {
            i: QueueTrace(i) for i in range(num_nodes)
        }
        self.events: List[TraceEvent] = []

    def record_queue(self, node: int, time: float, queue_length: int) -> None:
        """Record a queue-length observation for ``node``."""
        self.queues[node].record(time, queue_length)

    def record_event(self, event: TraceEvent) -> None:
        """Append a discrete event to the system time-line."""
        self.events.append(event)

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of a given kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def failure_times(self, node: Optional[int] = None) -> List[float]:
        """Failure instants (optionally restricted to one node)."""
        return [
            e.time
            for e in self.events
            if e.kind == "failure" and (node is None or e.node == node)
        ]

    def recovery_times(self, node: Optional[int] = None) -> List[float]:
        """Recovery instants (optionally restricted to one node)."""
        return [
            e.time
            for e in self.events
            if e.kind == "recovery" and (node is None or e.node == node)
        ]

    def transfer_started_times(self) -> List[float]:
        """Times at which batches were put on the network."""
        return [e.time for e in self.events if e.kind == "transfer_started"]
