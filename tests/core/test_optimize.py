"""Tests for optimal-gain and sender/receiver selection."""

import numpy as np
import pytest

from repro.core.optimize import (
    GainOptimizationResult,
    default_gain_grid,
    optimal_gain_lbp1,
    optimal_gain_lbp2_initial,
    optimal_gain_no_failure,
    optimal_lbp1_policy,
    optimal_lbp2_policy,
)
from repro.core.policies import LBP1, LBP2


class TestGainGrid:
    def test_default_grid_matches_paper(self):
        grid = default_gain_grid()
        assert grid[0] == 0.0 and grid[-1] == 1.0
        assert len(grid) == 21
        assert np.allclose(np.diff(grid), 0.05)

    def test_custom_step(self):
        assert len(default_gain_grid(0.1)) == 11

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            default_gain_grid(0.0)


class TestOptimalGainLBP1:
    def test_paper_headline_result(self, paper_params):
        result = optimal_gain_lbp1(paper_params, (100, 60))
        assert result.optimal_gain == pytest.approx(0.35)
        assert result.sender == 0 and result.receiver == 1
        assert result.optimal_mean == pytest.approx(117.0, rel=0.03)
        assert result.transfer_size == 35

    def test_no_failure_headline_result(self, paper_params):
        result = optimal_gain_no_failure(paper_params, (100, 60))
        assert result.optimal_gain == pytest.approx(0.45)

    def test_sender_selection_follows_larger_workload(self, paper_params):
        """The paper: 'if the initial load of node 1 is smaller ... node 2 sends'."""
        forward = optimal_gain_lbp1(paper_params, (200, 100))
        reversed_ = optimal_gain_lbp1(paper_params, (100, 200))
        assert forward.sender == 0
        assert reversed_.sender == 1

    def test_explicit_pair_respected(self, paper_params):
        result = optimal_gain_lbp1(paper_params, (100, 60), sender=1, receiver=0)
        assert result.sender == 1

    def test_gains_validation(self, paper_params):
        with pytest.raises(ValueError):
            optimal_gain_lbp1(paper_params, (10, 10), gains=[0.5, 1.2])
        with pytest.raises(ValueError):
            optimal_gain_lbp1(paper_params, (10, 10), gains=[])

    def test_result_arrays_consistent(self, paper_params):
        result = optimal_gain_lbp1(paper_params, (60, 30), gains=[0.0, 0.25, 0.5])
        assert isinstance(result, GainOptimizationResult)
        assert len(result.gains) == len(result.means) == 3
        assert result.optimal_mean == pytest.approx(result.means.min())
        assert result.optimal_gain in result.gains

    def test_mirrored_workloads_reach_the_same_optimum(self, paper_params):
        """Table 1 shows identical predicted times for (200,100) and (100,200).

        The mirrored workload sends from the other (faster) node, so its
        optimal *gain* differs, but the achievable mean completion time is
        the same to within the rounding the paper reports.
        """
        forward = optimal_gain_lbp1(paper_params, (200, 100))
        backward = optimal_gain_lbp1(paper_params, (100, 200))
        assert forward.sender == 0 and backward.sender == 1
        assert forward.optimal_mean == pytest.approx(backward.optimal_mean, rel=1e-3)

    def test_optimum_beats_every_other_grid_point(self, paper_params):
        result = optimal_gain_lbp1(paper_params, (100, 60))
        assert np.all(result.optimal_mean <= result.means + 1e-12)

    def test_shared_solver_reuse(self, paper_params):
        from repro.core.completion_time import CompletionTimeSolver

        solver = CompletionTimeSolver(paper_params)
        first = optimal_gain_lbp1(paper_params, (100, 60), solver=solver)
        second = optimal_gain_lbp1(paper_params, (60, 100), solver=solver)
        assert first.optimal_mean == pytest.approx(second.optimal_mean)


class TestOptimalGainLBP2Initial:
    def test_two_node_only(self, three_node_params):
        with pytest.raises(ValueError):
            optimal_gain_lbp2_initial(three_node_params, (10, 10, 10))

    def test_small_delay_prefers_large_gain(self, paper_params):
        """At 0.02 s/task the no-failure optimum for (200, 50) is K = 1 (Table 2)."""
        result = optimal_gain_lbp2_initial(paper_params, (200, 50))
        assert result.optimal_gain >= 0.9

    def test_large_delay_attenuates_gain(self, paper_params):
        slow = paper_params.with_delay_per_task(2.0)
        result = optimal_gain_lbp2_initial(slow, (200, 50))
        assert result.optimal_gain < optimal_gain_lbp2_initial(
            paper_params, (200, 50)
        ).optimal_gain

    def test_sender_is_overloaded_node(self, paper_params):
        assert optimal_gain_lbp2_initial(paper_params, (100, 60)).sender == 0
        assert optimal_gain_lbp2_initial(paper_params, (50, 200)).sender == 1

    def test_gain_validation(self, paper_params):
        with pytest.raises(ValueError):
            optimal_gain_lbp2_initial(paper_params, (10, 10), gains=[2.0])


class TestPolicyFactories:
    def test_optimal_lbp1_policy(self, paper_params):
        policy, result = optimal_lbp1_policy(paper_params, (100, 60))
        assert isinstance(policy, LBP1)
        assert policy.gain == result.optimal_gain
        assert policy.sender == result.sender

    def test_optimal_lbp2_policy(self, paper_params):
        policy, result = optimal_lbp2_policy(paper_params, (100, 60))
        assert isinstance(policy, LBP2)
        assert policy.gain == result.optimal_gain
