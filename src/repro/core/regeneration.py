"""Shared machinery for the regeneration-theory difference equations (eq. (4)).

Section 2.1.1 of the paper derives, by conditioning on the first
*regeneration event* (a task completion ``W_i``, a failure ``X_i``, a
recovery ``Y_i`` or the arrival ``Z`` of the in-transit batch), a family of
difference equations for the expected overall completion time
``µ^{k1,k2}_{M1,M2}``.  For a fixed remaining-load pair ``(M1, M2)`` the four
work states couple only through failure/recovery transitions, which leads to
the ``µ = A^{-1} b`` structure of eq. (4): a small linear system per load
pair whose right-hand side involves already-computed entries with smaller
loads (task completions) and the companion "no-transit" table ``µ̂``
(batch arrival).

This module provides the pieces shared by the reference and the vectorised
solvers in :mod:`repro.core.completion_time`:

* the per-load-pair coupling matrix ``A`` (through
  :func:`coupling_system`), and
* the description of the regeneration events leaving a given work state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.parameters import SystemParameters
from repro.core.state import WorkState, work_state_rate_matrix


@dataclass(frozen=True)
class TwoNodeRates:
    """The exponential rates of a two-node system, unpacked for the solvers."""

    service: Tuple[float, float]
    failure: Tuple[float, float]
    recovery: Tuple[float, float]

    @classmethod
    def from_params(cls, params: SystemParameters) -> "TwoNodeRates":
        params.require_two_nodes()
        return cls(
            service=params.service_rates,
            failure=params.failure_rates,
            recovery=params.recovery_rates,
        )


def exit_rate_components(
    states: Sequence[WorkState], rates: TwoNodeRates, transit_rate: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose the total exit rate of each work state.

    Returns ``(base, service0, service1)`` where, for work state ``s``,

    * ``base[s]`` is the part of the exit rate that does not depend on the
      remaining loads: failure rates of up nodes, recovery rates of down
      nodes and the batch-transfer rate ``λ_Z`` (0 when nothing is in
      transit);
    * ``service0[s]``/``service1[s]`` are the service rates contributed by
      node 0 / node 1 *provided* that node is up and still holds at least one
      task (the caller multiplies by the corresponding indicator).

    The total exit rate of work state ``s`` at load ``(r0, r1)`` is then
    ``base[s] + service0[s]·1{r0>0} + service1[s]·1{r1>0}`` — the λ_A ... λ_D
    constants of eq. (4) correspond to the four work states at loads where
    both indicators are 1.
    """
    if transit_rate < 0:
        raise ValueError(f"transit_rate must be >= 0, got {transit_rate!r}")
    base = np.zeros(len(states))
    service0 = np.zeros(len(states))
    service1 = np.zeros(len(states))
    for idx, (k0, k1) in enumerate(states):
        total = transit_rate
        if k0 == 1:
            total += rates.failure[0]
            service0[idx] = rates.service[0]
        else:
            total += rates.recovery[0]
        if k1 == 1:
            total += rates.failure[1]
            service1[idx] = rates.service[1]
        else:
            total += rates.recovery[1]
        base[idx] = total
    return base, service0, service1


def coupling_system(
    states: Sequence[WorkState],
    params: SystemParameters,
    exit_rates: np.ndarray,
) -> np.ndarray:
    """The matrix ``A`` of eq. (4) for one remaining-load pair.

    ``A = I - diag(1/λ_s) F`` where ``F`` is the failure/recovery rate matrix
    between the work states and ``λ_s`` the total exit rate of state ``s`` at
    the load pair under consideration.  The right-hand side ``b`` (task
    completions, batch arrival, the ``1/λ_s`` increment) is assembled by the
    caller because it involves previously computed table entries.
    """
    exit_rates = np.asarray(exit_rates, dtype=float)
    if np.any(exit_rates <= 0):
        raise ValueError(
            "every non-absorbing state must have a positive exit rate; "
            "the workload cannot complete under these parameters"
        )
    rate_matrix = work_state_rate_matrix(states, params)
    return np.eye(len(states)) - rate_matrix / exit_rates[:, None]


def batched_coupling_systems(
    states: Sequence[WorkState],
    params: SystemParameters,
    exit_rates: np.ndarray,
) -> np.ndarray:
    """Stack of coupling matrices for a batch of load pairs.

    ``exit_rates`` has shape ``(n_cells, n_states)``; the result has shape
    ``(n_cells, n_states, n_states)`` and can be fed to
    :func:`numpy.linalg.solve` in one call.
    """
    exit_rates = np.asarray(exit_rates, dtype=float)
    if exit_rates.ndim != 2 or exit_rates.shape[1] != len(states):
        raise ValueError(
            f"exit_rates must have shape (n_cells, {len(states)}), "
            f"got {exit_rates.shape}"
        )
    if np.any(exit_rates <= 0):
        raise ValueError(
            "every non-absorbing state must have a positive exit rate; "
            "the workload cannot complete under these parameters"
        )
    rate_matrix = work_state_rate_matrix(states, params)
    identity = np.eye(len(states))
    return identity[None, :, :] - rate_matrix[None, :, :] / exit_rates[:, :, None]
