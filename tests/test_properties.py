"""Cross-cutting property-based tests.

These hypothesis tests pin down structural invariants of the analytical
model that must hold for *any* admissible parameterisation — monotonicity in
the workload, in the failure rate and in the network delay, agreement
between the solver variants, and conservation laws of the simulator.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.system import simulate_once
from repro.core.completion_time import CompletionTimeSolver
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.core.policies import LBP1, LBP2
from repro.core.policies.excess import excess_loads, fair_shares


def system(
    rate0=1.0, rate1=2.0, failure=0.05, recovery0=0.1, recovery1=0.05, delay=0.02
):
    return SystemParameters(
        nodes=(
            NodeParameters(rate0, failure_rate=failure, recovery_rate=recovery0),
            NodeParameters(rate1, failure_rate=failure, recovery_rate=recovery1),
        ),
        delay=TransferDelayModel(delay),
    )


# Strategies kept small so each analytical solve stays in the millisecond range.
small_load = st.integers(min_value=0, max_value=25)
rate = st.floats(min_value=0.3, max_value=5.0)
failure_rate = st.floats(min_value=0.0, max_value=0.3)
gain = st.floats(min_value=0.0, max_value=1.0)


class TestAnalyticalInvariants:
    @given(m0=small_load, m1=small_load, extra=st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_mean_monotone_in_workload(self, m0, m1, extra):
        solver = CompletionTimeSolver(system())
        base = solver.mean_completion_time((m0, m1))
        more = solver.mean_completion_time((m0 + extra, m1))
        assert more >= base - 1e-9

    @given(m0=small_load, m1=small_load, failure=st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=20, deadline=None)
    def test_failures_never_help(self, m0, m1, failure):
        assume(m0 + m1 > 0)
        clean = CompletionTimeSolver(system(failure=0.0, recovery0=0.0, recovery1=0.0))
        churn = CompletionTimeSolver(system(failure=failure))
        assert churn.mean_completion_time((m0, m1)) >= clean.mean_completion_time(
            (m0, m1)
        ) - 1e-9

    @given(m0=st.integers(min_value=1, max_value=25), m1=small_load, g=gain)
    @settings(max_examples=20, deadline=None)
    def test_longer_delays_never_help_lbp1(self, m0, m1, g):
        fast = CompletionTimeSolver(system(delay=0.01))
        slow = CompletionTimeSolver(system(delay=0.5))
        fast_mean = fast.lbp1((m0, m1), g, sender=0, receiver=1).mean
        slow_mean = slow.lbp1((m0, m1), g, sender=0, receiver=1).mean
        assert slow_mean >= fast_mean - 1e-9

    @given(m0=small_load, m1=small_load, g=gain)
    @settings(max_examples=15, deadline=None)
    def test_reference_and_vectorized_always_agree(self, m0, m1, g):
        params = system()
        reference = CompletionTimeSolver(params, method="reference")
        vectorized = CompletionTimeSolver(params, method="vectorized")
        assert reference.lbp1((m0, m1), g, sender=0, receiver=1).mean == pytest.approx(
            vectorized.lbp1((m0, m1), g, sender=0, receiver=1).mean, rel=1e-9
        )

    @given(
        m0=st.integers(min_value=0, max_value=15),
        m1=st.integers(min_value=0, max_value=15),
        g=gain,
    )
    @settings(max_examples=10, deadline=None)
    def test_ctmc_always_agrees(self, m0, m1, g):
        params = system()
        ctmc = CompletionTimeSolver(params, method="ctmc")
        vectorized = CompletionTimeSolver(params, method="vectorized")
        assert ctmc.lbp1((m0, m1), g, sender=0, receiver=1).mean == pytest.approx(
            vectorized.lbp1((m0, m1), g, sender=0, receiver=1).mean, rel=1e-7
        )

    @given(
        rate0=rate,
        rate1=rate,
        m0=st.integers(min_value=0, max_value=40),
        m1=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_excess_load_conservation(self, rate0, rate1, m0, m1):
        """Fair shares sum to the total load and at most one node is in excess
        of it by the amount the other is below it (two-node system)."""
        params = SystemParameters(
            nodes=(NodeParameters(rate0), NodeParameters(rate1))
        )
        shares = fair_shares((m0, m1), params)
        assert sum(shares) == pytest.approx(m0 + m1)
        excesses = excess_loads((m0, m1), params)
        assert min(excesses) == pytest.approx(0.0, abs=1e-9)


class TestSimulatorInvariants:
    @given(
        m0=st.integers(min_value=0, max_value=30),
        m1=st.integers(min_value=0, max_value=30),
        g=gain,
        seed=st.integers(min_value=0, max_value=100_000),
        policy_kind=st.sampled_from(["lbp1", "lbp2"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_task_conservation_and_ordering(self, m0, m1, g, seed, policy_kind):
        params = system(rate0=4.0, rate1=6.0, failure=0.2, recovery0=0.5, recovery1=0.5,
                        delay=0.01)
        policy = LBP1(g) if policy_kind == "lbp1" else LBP2(min(g, 1.0))
        result = simulate_once(params, policy, (m0, m1), seed=seed, record_trace=True)
        # every task completed exactly once
        assert result.total_completed == m0 + m1
        # the completion event is the last recorded trace event
        if m0 + m1 > 0:
            assert result.completion_time > 0
            events = result.trace.events
            assert max(event.time for event in events) == pytest.approx(
                result.completion_time
            )
        # failures and recoveries alternate per node
        for node in (0, 1):
            failures = result.trace.failure_times(node)
            recoveries = result.trace.recovery_times(node)
            assert len(failures) - len(recoveries) in (0, 1)
            for f, r in zip(failures, recoveries):
                assert r > f

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=15, deadline=None)
    def test_queue_traces_are_non_negative_and_end_at_zero(self, seed):
        params = system(rate0=4.0, rate1=6.0, failure=0.3, recovery0=0.6, recovery1=0.6,
                        delay=0.01)
        result = simulate_once(params, LBP2(1.0), (20, 10), seed=seed, record_trace=True)
        for node in (0, 1):
            values = result.trace.queues[node].values
            assert np.all(values >= 0)
            assert values[-1] == 0
