"""The worker board: shard work items flowing between the service and
remote ``repro worker`` processes.

The board is the meeting point of two threads of control:

* the **HTTP side** (event-loop handlers) — workers register, claim the
  next work item assigned to them, and post results; every call is a
  short, non-blocking critical section;
* the **scheduler side** (the job queue's worker thread) — the
  :class:`BoardExecutor` adapts the board to the
  :class:`~repro.distributed.executors.ShardExecutor` interface: live
  workers are the scheduler's slots, ``start`` drops an item into a
  worker's queue, ``poll`` blocks on the board's condition variable for
  posted results.

Liveness is pull-based: a worker's ``last_seen`` refreshes on every claim
or post.  A worker that stops polling is considered dead after
``worker_timeout`` seconds — its *unclaimed* items fail immediately so the
scheduler reassigns them; items it already claimed are left to the
scheduler's own shard timeout (a busy worker executing a long shard does
not poll, and must not be declared dead for it).

Everything here is stdlib-only and numpy-free: the board sits on the
service's request path.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.executors import ShardExecutor, ShardOutcome
from repro.obs.metrics import REGISTRY

#: Version of the worker claim/result protocol this board speaks.  Version
#: 2 adds batched claims (``{"batch": n, "token": ...}`` →
#: ``{"items": [...], "protocol": 2}``) and batched result posts
#: (``{"results": [...]}`` → ``{"accepted": [...]}``); version-1 workers
#: keep sending bare claims and single results and are answered in kind.
CLAIM_PROTOCOL_VERSION = 2

#: Seconds without a claim/post before a worker's unclaimed work is
#: reassigned and it disappears from the slot list.
DEFAULT_WORKER_TIMEOUT = 30.0

#: Work items a protocol-2 claim may carry by default — also the number of
#: items the scheduler keeps in flight per worker slot, so a full batch is
#: actually available when the claim arrives.
DEFAULT_CLAIM_BATCH = 4

_CLAIM_BATCH_ITEMS = REGISTRY.histogram(
    "repro_board_claim_batch_items",
    "Work items handed out per non-empty claim.",
)
_CLAIM_REPLAYS = REGISTRY.counter(
    "repro_board_claim_replays_total",
    "Claims answered from the idempotency snapshot (retried token).",
)
_LEASE_FAILURES = REGISTRY.counter(
    "repro_board_lease_failures_total",
    "Queued work items failed back to the scheduler, by reason.",
    labelnames=("reason",),
)

#: Default per-shard execution timeout for jobs the service schedules onto
#: the fleet.  A worker killed *after* claiming a shard stops polling but
#: cannot be told apart from one grinding through a long shard, so the
#: scheduler's shard timeout is the only thing that ever reassigns its
#: work — a service must not default it off.
DEFAULT_SHARD_TIMEOUT = 900.0

#: Stale worker records are purged after this many multiples of the worker
#: timeout (long-lived services see endless register/exit cycles; the board
#: must not grow without bound).
_PURGE_AFTER_TIMEOUTS = 10.0


@dataclass
class _Worker:
    """Board-side record of one registered worker."""

    id: str
    name: str
    registered_at: float
    last_seen: float
    queued: List[Dict[str, Any]] = field(default_factory=list)
    claimed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    #: Idempotency snapshot: the last claim token this worker sent and the
    #: items that claim was answered with.  A retried token (the worker
    #: never saw the response) re-delivers the same items instead of
    #: claiming fresh ones.
    last_claim_token: Optional[str] = None
    last_claim_items: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self, now: float) -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "registered_at": self.registered_at,
            "seconds_since_seen": now - self.last_seen,
            "queued_items": len(self.queued),
            "claimed_items": len(self.claimed),
            "completed_shards": self.completed,
            "failed_shards": self.failed,
        }


class ShardBoard:
    """Thread-safe work-item board shared by HTTP handlers and scheduler."""

    def __init__(self, worker_timeout: float = DEFAULT_WORKER_TIMEOUT) -> None:
        self.worker_timeout = worker_timeout
        self._lock = threading.Condition()
        self._workers: Dict[str, _Worker] = {}
        self._ids = itertools.count(1)
        self._outcomes: List[ShardOutcome] = []

    # -- HTTP side (event loop; never blocks) ------------------------------

    def register(self, name: str) -> str:
        with self._lock:
            # Each registration sweeps out long-dead records, so the
            # respawn-workers-forever pattern cannot grow the board.
            self._reap_dead_locked()
            worker_id = f"w-{next(self._ids)}"
            now = time.monotonic()
            self._workers[worker_id] = _Worker(
                id=worker_id, name=name, registered_at=now, last_seen=now
            )
            return worker_id

    def claim(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Pop the next item queued for ``worker_id`` (``None`` when idle)."""
        items = self.claim_batch(worker_id, batch=1)
        return items[0] if items else None

    def claim_batch(
        self,
        worker_id: str,
        batch: int = 1,
        token: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Pop up to ``batch`` items queued for ``worker_id``.

        ``token`` (opaque, chosen by the worker, unique per claim) makes
        the call idempotent: a claim retried with the token of the
        previous claim — the worker sent it, the response got lost — is
        answered with the same items again.  Those items are already in
        the worker's ``claimed`` set, so nothing is double-popped and a
        later post of their results is accepted exactly once.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch!r}")
        with self._lock:
            worker = self._require(worker_id)
            worker.last_seen = time.monotonic()
            if token is not None and token == worker.last_claim_token:
                _CLAIM_REPLAYS.inc()
                return list(worker.last_claim_items)
            items: List[Dict[str, Any]] = []
            while worker.queued and len(items) < batch:
                item = worker.queued.pop(0)
                worker.claimed[item["id"]] = item
                items.append(item)
            if token is not None:
                worker.last_claim_token = token
                worker.last_claim_items = list(items)
            if items:
                _CLAIM_BATCH_ITEMS.observe(float(len(items)))
            return items

    def post_result(
        self,
        worker_id: str,
        item_id: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> bool:
        """Record a worker's outcome; ``False`` for unknown/stale items."""
        with self._lock:
            worker = self._require(worker_id)
            worker.last_seen = time.monotonic()
            item = worker.claimed.pop(item_id, None)
            if item is None:
                # A reassigned (abandoned) item finishing late: ignore it —
                # the scheduler already gave up on this attempt.
                return False
            if error is None:
                worker.completed += 1
            else:
                worker.failed += 1
            self._outcomes.append(
                ShardOutcome(
                    item_id=item_id,
                    shard=int(item["shard"]),
                    slot=worker_id,
                    result=result,
                    error=error,
                )
            )
            self._lock.notify_all()
            return True

    def post_results(
        self, worker_id: str, outcomes: List[Dict[str, Any]]
    ) -> List[bool]:
        """Record a batch of outcomes; per-outcome acceptance flags.

        Each outcome dict carries ``id`` plus ``result`` or ``error``.
        Acceptance is per item — a batch may mix fresh results (accepted)
        with stale ones from a reassigned attempt (ignored).
        """
        return [
            self.post_result(
                worker_id,
                item_id=str(outcome["id"]),
                result=outcome.get("result"),
                error=(
                    None
                    if outcome.get("error") is None
                    else str(outcome["error"])
                ),
            )
            for outcome in outcomes
        ]

    def worker_views(self) -> List[Dict[str, Any]]:
        with self._lock:
            now = time.monotonic()
            return [w.to_dict(now) for w in self._workers.values()]

    def _require(self, worker_id: str) -> _Worker:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise KeyError(
                f"unknown worker {worker_id!r}; register via POST /v1/workers"
            ) from None

    # -- scheduler side (worker thread; collect may block) -----------------

    def live_workers(self) -> Tuple[str, ...]:
        with self._lock:
            cutoff = time.monotonic() - self.worker_timeout
            return tuple(
                worker_id
                for worker_id, worker in self._workers.items()
                if worker.last_seen >= cutoff or worker.claimed
            )

    def assign(self, worker_id: str, item: Dict[str, Any]) -> None:
        with self._lock:
            self._require(worker_id).queued.append(item)

    def abandon(self, worker_id: str, item_id: str) -> None:
        """Forget an item wherever it is; a late result will be ignored."""
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                return
            worker.queued = [i for i in worker.queued if i["id"] != item_id]
            worker.claimed.pop(item_id, None)

    def collect(self, timeout: float) -> List[ShardOutcome]:
        """Posted outcomes (plus synthesized failures for dead workers)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                self._reap_dead_locked()
                if self._outcomes:
                    outcomes, self._outcomes = self._outcomes, []
                    return outcomes
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._lock.wait(min(remaining, 1.0))

    def _reap_dead_locked(self) -> None:
        """Fail unclaimed items of stale workers; purge long-dead records."""
        now = time.monotonic()
        cutoff = now - self.worker_timeout
        purge_cutoff = now - _PURGE_AFTER_TIMEOUTS * self.worker_timeout
        for worker in list(self._workers.values()):
            if worker.last_seen < cutoff and worker.queued:
                _LEASE_FAILURES.labels(reason="dead_worker").inc(
                    len(worker.queued)
                )
                for item in worker.queued:
                    self._outcomes.append(
                        ShardOutcome(
                            item_id=item["id"],
                            shard=int(item["shard"]),
                            slot=worker.id,
                            error=(
                                f"worker {worker.id} ({worker.name}) stopped "
                                f"polling before claiming the shard"
                            ),
                        )
                    )
                worker.queued = []
            # A long-lived service sees endless worker register/exit
            # cycles; drop records that are idle, empty-handed and long
            # past dead so the board (and /v1/workers) stays bounded.
            if (
                worker.last_seen < purge_cutoff
                and not worker.queued
                and not worker.claimed
            ):
                del self._workers[worker.id]


class BoardExecutor(ShardExecutor):
    """The board viewed as a shard executor: one slot per live worker.

    ``slot_depth`` mirrors the fleet's claim batch: the scheduler keeps
    that many items in flight per worker, so a batched claim actually
    finds a batch queued instead of draining the board one item per
    round-trip.  A worker dying mid-batch is still accounted per item —
    every queued/claimed item holds its own lease (scheduler item id), and
    only the unfinished ones are reassigned.
    """

    name = "workers"
    transport = "json"  # items cross HTTP; only spec-described runs fit
    round_trip_hint = 0.05

    def __init__(
        self, board: ShardBoard, slot_depth: Optional[int] = None
    ) -> None:
        self.board = board
        self.slot_depth = max(
            1, int(slot_depth if slot_depth is not None else DEFAULT_CLAIM_BATCH)
        )

    def slots(self) -> Tuple[str, ...]:
        return self.board.live_workers()

    def start(self, slot: str, item: Dict[str, Any]) -> None:
        self.board.assign(slot, item)

    def poll(self, timeout: float) -> List[ShardOutcome]:
        return self.board.collect(timeout)

    def abandon(self, slot: str, item_id: str) -> None:
        self.board.abandon(slot, item_id)

    def close(self) -> None:
        """The board outlives any single run; nothing to release."""
