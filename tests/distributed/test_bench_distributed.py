"""The distributed scaling benchmark and its baseline tolerance gate."""

import json
import pathlib

import pytest

from repro.backends.bench import (
    DISTRIBUTED_BENCH_SCHEMA_VERSION,
    DistributedBenchmarkReport,
    compare_distributed_reports,
    run_distributed_benchmark,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestRunDistributedBenchmark:
    def test_smoke_scenario_scaling_run(self, tmp_path):
        report = run_distributed_benchmark(
            scenario="smoke", worker_counts=(1, 2), shards=2
        )
        assert [t.worker_count for t in report.timings] == [1, 2]
        assert report.merge_invariant
        assert all(t.wall_seconds > 0 for t in report.timings)
        path = report.save(tmp_path / "BENCH_distributed.json")
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == DISTRIBUTED_BENCH_SCHEMA_VERSION
        assert payload["summary"]["merge_invariant"] is True

    def test_timeshared_counts_are_marked_skipped(self, monkeypatch):
        # Pretend the machine exposes a single effective CPU: the 2-worker
        # measurement still runs (merge invariance needs it) but must be
        # flagged skipped and excluded from the speedup summary.
        import repro.backends.bench as bench

        monkeypatch.setattr(bench, "effective_cpu_count", lambda: 1)
        report = run_distributed_benchmark(
            scenario="smoke", worker_counts=(1, 2), shards=2
        )
        by_count = {t.worker_count: t for t in report.timings}
        assert by_count[1].skipped is False
        assert by_count[2].skipped is True
        payload = report.to_dict()
        assert payload["summary"]["skipped_counts"] == [2]
        assert "2" not in payload["summary"]["speedups"]
        assert "skipped" in report.render()

    def test_timings_carry_phase_breakdown(self):
        report = run_distributed_benchmark(
            scenario="smoke", worker_counts=(1,), shards=2
        )
        (timing,) = report.timings
        assert set(timing.breakdown) >= {
            "plan_seconds",
            "execute_seconds",
            "merge_seconds",
            "block_compute_seconds",
            "dispatch_overhead_seconds",
        }
        assert timing.breakdown["block_compute_seconds"] > 0
        assert timing.breakdown["dispatch_overhead_seconds"] >= 0
        assert "dispatch overhead" in report.render()
        payload = report.to_dict()
        assert payload["timings"][0]["breakdown"] == timing.breakdown

    def test_breakdown_carries_attribution_ledger(self):
        report = run_distributed_benchmark(
            scenario="smoke", worker_counts=(1,), shards=2
        )
        (timing,) = report.timings
        ledger = timing.breakdown["attribution"]
        assert set(ledger) >= {
            "plan_seconds",
            "wire_seconds",
            "deserialize_seconds",
            "compute_seconds",
            "dispatch_seconds",
            "idle_seconds",
            "merge_seconds",
        }
        # No tracer was passed, yet the ledger populated — the benchmark
        # creates one internally so trace propagation always runs.
        assert ledger["compute_seconds"] > 0
        # The wall-equivalent components sum to roughly the wall time
        # (queue_wait is excluded from the identity: it overlaps busy time).
        identity = sum(
            ledger[key]
            for key in (
                "plan_seconds",
                "wire_seconds",
                "deserialize_seconds",
                "compute_seconds",
                "dispatch_seconds",
                "idle_seconds",
                "merge_seconds",
            )
        )
        assert identity == pytest.approx(timing.wall_seconds, rel=0.05)
        assert "why is speedup" in report.render()

    def test_tracer_collects_per_worker_count_spans(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        run_distributed_benchmark(
            scenario="smoke", worker_counts=(1, 2), shards=2, tracer=tracer
        )
        bench_spans = [s for s in tracer.spans if s.name == "bench.distributed"]
        assert [s.attrs["workers"] for s in bench_spans] == [1, 2]
        # Engine phases nest under the per-worker-count bench spans.
        engine_spans = [s for s in tracer.spans if s.name == "engine.execute"]
        assert engine_spans
        bench_ids = {s.span_id for s in bench_spans}
        assert all(s.parent_id in bench_ids for s in engine_spans)

    def test_rejects_non_mc_point_scenarios(self):
        with pytest.raises(ValueError, match="mc_point"):
            run_distributed_benchmark(scenario="fig1")


class TestBaselineGate:
    def _report(self, **overrides):
        base = {
            "schema_version": DISTRIBUTED_BENCH_SCHEMA_VERSION,
            "scenario": "mc-scaling",
            "backend": "reference",
            "shards": 8,
            "shard_block": 32,
            "realisations": 2000,
            "seed": 1234,
            "quick": False,
            "timings": [
                {
                    "worker_count": 1,
                    "wall_seconds": 2.0,
                    "realisations": 2000,
                    "mean_completion_time": 115.0,
                    "std_completion_time": 40.0,
                    "throughput": 1000.0,
                },
            ],
        }
        base.update(overrides)
        return base

    def test_identical_reports_pass(self):
        assert compare_distributed_reports(self._report(), self._report()) == []

    def test_configuration_drift_is_flagged(self):
        problems = compare_distributed_reports(
            self._report(realisations=400), self._report()
        )
        assert any("realisations" in p for p in problems)

    def test_statistics_drift_is_a_hard_failure(self):
        current = self._report()
        current["timings"][0] = dict(
            current["timings"][0], mean_completion_time=115.001
        )
        problems = compare_distributed_reports(current, self._report())
        assert any("correctness regression" in p for p in problems)

    def test_slow_run_within_tolerance_passes(self):
        current = self._report()
        current["timings"][0] = dict(
            current["timings"][0], throughput=250.0
        )
        assert compare_distributed_reports(
            current, self._report(), tolerance=10.0
        ) == []

    def test_throughput_collapse_fails(self):
        current = self._report()
        current["timings"][0] = dict(current["timings"][0], throughput=50.0)
        problems = compare_distributed_reports(
            current, self._report(), tolerance=10.0
        )
        assert any("regressed" in p for p in problems)

    def test_committed_baseline_is_current_schema(self):
        baseline = json.loads((REPO / "BENCH_distributed.json").read_text())
        assert baseline["schema_version"] == DISTRIBUTED_BENCH_SCHEMA_VERSION
        assert baseline["scenario"] == "mc-scaling"
        assert baseline["summary"]["merge_invariant"] is True
        # The gate compares against itself cleanly (no config drift).
        assert compare_distributed_reports(baseline, baseline) == []
