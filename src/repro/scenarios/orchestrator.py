"""Batch execution of scenarios: dispatch, caching, shared worker pool.

The :class:`Orchestrator` is the single entry point that turns a
:class:`~repro.scenarios.spec.ScenarioSpec` into a
:class:`~repro.scenarios.cache.ScenarioResult`:

1. look the spec's content hash up in the :class:`ResultCache` (a hit is a
   pure disk read — no simulation runs);
2. on a miss, dispatch on ``spec.kind`` to the matching runner, which calls
   the existing experiment drivers / Monte-Carlo machinery with the spec's
   parameters;
3. persist the result under the hash and return it.

Monte-Carlo-heavy kinds all run through the unified engine
(:mod:`repro.montecarlo.engine`) and share one
:class:`ProcessPoolExecutor` owned by the orchestrator (``workers``
constructor argument), so a sweep pays pool start-up once instead of once
per point; results are bit-identical to serial execution because the
engine's seed blocks draw their streams before distribution.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

from repro.scenarios import registry
from repro.scenarios.cache import ResultCache, ScenarioResult
from repro.scenarios.spec import PolicySpec, ScenarioSpec

#: A runner reduces a spec to ``(scalars, arrays, rendered)``.  numpy stays
#: out of this module's import path (cache hits and job planning must not
#: load it); runners import it alongside their experiment drivers.
RunnerOutput = Tuple[Dict[str, Any], Dict[str, "np.ndarray"], str]
Runner = Callable[[ScenarioSpec, "Orchestrator"], RunnerOutput]

_RUNNERS: Dict[str, Runner] = {}

#: Scenario kinds whose Monte-Carlo estimates honour ``spec.backend``.  The
#: paper-artefact kinds drive bespoke experiment pipelines (test-bed
#: emulation, traces, calibration fits) that only the event-driven machinery
#: can execute, so a non-default backend on them is a user error, not a
#: silent no-op.
BACKEND_AWARE_KINDS = frozenset({"mc_point", "delay_point"})


def runner(kind: str) -> Callable[[Runner], Runner]:
    """Register the decorated function as the runner for ``kind``."""

    def decorate(fn: Runner) -> Runner:
        _RUNNERS[kind] = fn
        return fn

    return decorate


def runner_kinds() -> Tuple[str, ...]:
    """All scenario kinds the orchestrator can execute, sorted."""
    return tuple(sorted(_RUNNERS))


def _scalar(value: Any) -> Any:
    """Coerce numpy scalars to plain Python so scalars survive JSON."""
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return item()
    return value


def apply_overrides(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
) -> ScenarioSpec:
    """Fold ``seed``/``backend``/``shards`` overrides into ``spec``.

    The returned spec is the *effective* one — overrides participate in the
    content hash, and therefore in the cache key.  Backend validation is by
    name only (no backend module is imported), so this is safe on the
    cache-hit / job-planning path.  Shared by :meth:`Orchestrator.run` and
    the results service's job planner.
    """
    if seed is not None:
        spec = spec.with_(seed=int(seed))
    if backend is not None:
        spec = spec.with_(backend=str(backend))
    if shards is not None:
        spec = spec.with_(shards=int(shards))
    if spec.backend != "reference":
        from repro.backends.base import backend_names

        names = backend_names()
        if spec.backend not in names:
            raise ValueError(
                f"unknown execution backend {spec.backend!r}; known "
                f"backends: {', '.join(names)}"
            )
        if spec.kind not in BACKEND_AWARE_KINDS:
            raise ValueError(
                f"scenario kind {spec.kind!r} always runs on the reference "
                f"machinery and cannot honour backend={spec.backend!r}; "
                f"backend-aware kinds: {', '.join(sorted(BACKEND_AWARE_KINDS))}"
            )
    if spec.shards > 0 and spec.kind not in BACKEND_AWARE_KINDS:
        raise ValueError(
            f"scenario kind {spec.kind!r} drives a bespoke experiment "
            f"pipeline and cannot run sharded (shards={spec.shards}); "
            f"shardable kinds: {', '.join(sorted(BACKEND_AWARE_KINDS))}"
        )
    return spec


class Orchestrator:
    """Runs scenarios through the cache and a shared process pool.

    Parameters
    ----------
    cache:
        Result store; defaults to :class:`ResultCache` rooted at
        ``REPRO_CACHE_DIR`` / ``~/.cache/repro``.  ``None`` with
        ``use_cache=False`` disables caching entirely.
    workers:
        Size of the shared process pool for Monte-Carlo-heavy kinds.
        ``None`` or ``<= 1`` keeps everything in-process (bit-identical
        results either way).
    executor:
        An externally-owned executor to use instead of creating one; it is
        never shut down by the orchestrator.
    shard_executor:
        Where sharded specs (``spec.shards >= 1``) execute: an executor
        name (``inline``/``process``) or a live
        :class:`~repro.distributed.executors.ShardExecutor` instance (the
        results service passes its worker-board executor).  ``None`` picks
        ``process`` when ``workers`` is set and ``inline`` otherwise.
    shard_store:
        Shard-level block cache; defaults to a
        :class:`~repro.distributed.store.ShardStore` under the same cache
        root.  Consulted by every engine-backed Monte-Carlo run (sharded
        or not), and disabled alongside ``use_cache=False``.
    shard_progress:
        Optional callback receiving scheduler progress events of sharded
        runs (the job queue streams them to NDJSON subscribers).
    shard_options:
        Extra scheduler keywords for engine runs (``assignment``,
        ``max_attempts``, ``shard_timeout``, ``slot_wait``), folded into
        every :class:`~repro.montecarlo.engine.EngineRequest`.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        use_cache: bool = True,
        shard_executor: Any = None,
        shard_store: Any = None,
        shard_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        shard_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.cache = cache if cache is not None else (ResultCache() if use_cache else None)
        self.workers = workers
        self.shard_executor = shard_executor
        self.shard_progress = shard_progress
        self.shard_options = dict(shard_options or {})
        self._use_shard_store = use_cache
        self._shard_store = shard_store
        self._external_executor = executor
        self._owned_executor: Optional[ProcessPoolExecutor] = None
        self._owned_shard_executor = None
        self._owned_shard_executor_key: Any = None
        #: True while a ``force=True`` run executes: sharded runners must
        #: then recompute (and re-persist) every seed block instead of
        #: serving them from the shard store.
        self._refresh_shards = False

    @property
    def shard_store(self):
        """The block cache for Monte-Carlo runs (created lazily; may be None).

        Every engine-backed run — not just explicitly sharded ones — reads
        and writes it, so interrupted runs resume and grown ensembles
        compute only the delta.  Rooted next to the result cache so the two
        are evicted together (and isolated together in tests).
        """
        if not self._use_shard_store:
            return None
        if self._shard_store is None:
            from repro.distributed.store import ShardStore

            root = self.cache.root if self.cache is not None else None
            self._shard_store = ShardStore(root)
        return self._shard_store

    # -- shared pool -------------------------------------------------------

    @property
    def executor(self) -> Optional[Executor]:
        """The shared executor, creating the owned pool on first use."""
        if self._external_executor is not None:
            return self._external_executor
        if self.workers is None or self.workers <= 1:
            return None
        if self._owned_executor is None:
            self._owned_executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._owned_executor

    def resolved_shard_executor(self):
        """The live shard executor for sharded specs.

        Executor *names* (and ``None``) resolve to an owned instance that
        is shared across every point of a sweep and shut down by
        :meth:`close`; a :class:`~repro.distributed.executors.ShardExecutor`
        instance (e.g. the service's worker-board executor) is used as-is
        and never closed here.
        """
        from repro.distributed.executors import ShardExecutor, resolve_executor

        if isinstance(self.shard_executor, ShardExecutor):
            return self.shard_executor
        key = (self.shard_executor, self.workers)
        if self._owned_shard_executor is None or self._owned_shard_executor_key != key:
            self._close_owned_shard_executor()
            self._owned_shard_executor = resolve_executor(
                self.shard_executor, workers=self.workers
            )
            self._owned_shard_executor_key = key
        return self._owned_shard_executor

    def _close_owned_shard_executor(self) -> None:
        if self._owned_shard_executor is not None:
            self._owned_shard_executor.close()
            self._owned_shard_executor = None
            self._owned_shard_executor_key = None

    def close(self) -> None:
        """Shut down the owned pool (external executors are left alone)."""
        if self._owned_executor is not None:
            self._owned_executor.shutdown()
            self._owned_executor = None
        self._close_owned_shard_executor()

    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        scenario: Union[str, ScenarioSpec],
        quick: bool = False,
        force: bool = False,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> ScenarioResult:
        """Run one scenario (by name or spec), serving cache hits when possible.

        ``backend`` and ``shards`` override the spec's execution backend
        and shard count (the overrides are part of the effective spec, so
        they participate in the cache key).
        """
        spec = (
            registry.resolve(scenario, quick=quick)
            if isinstance(scenario, str)
            else scenario
        )
        spec = apply_overrides(spec, seed=seed, backend=backend, shards=shards)
        if self.cache is not None and not force:
            cached = self.cache.get(spec)
            if cached is not None:
                return cached
        try:
            run_kind = _RUNNERS[spec.kind]
        except KeyError:
            raise ValueError(
                f"no runner for scenario kind {spec.kind!r}; known kinds: "
                f"{', '.join(runner_kinds())}"
            ) from None
        import numpy as np

        started = time.perf_counter()
        previous_refresh = self._refresh_shards
        self._refresh_shards = force
        try:
            scalars, arrays, rendered = run_kind(spec, self)
        finally:
            self._refresh_shards = previous_refresh
        elapsed = time.perf_counter() - started
        result = ScenarioResult(
            name=spec.name,
            kind=spec.kind,
            spec_hash=spec.content_hash,
            scalars={k: _scalar(v) for k, v in scalars.items()},
            arrays={k: np.asarray(v) for k, v in arrays.items()},
            rendered=rendered,
            runtime_seconds=elapsed,
        )
        if self.cache is not None:
            self.cache.put(spec, result)
        return result

    def run_many(
        self,
        scenarios: Iterable[Union[str, ScenarioSpec]],
        quick: bool = False,
        force: bool = False,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> List[ScenarioResult]:
        """Run several scenarios, sharing this orchestrator's pool and cache."""
        return [
            self.run(s, quick=quick, force=force, backend=backend, shards=shards)
            for s in scenarios
        ]

    def sweep(
        self,
        family_name: str,
        quick: bool = False,
        force: bool = False,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> List[ScenarioResult]:
        """Expand a scenario family and run every point (cached points skip)."""
        family = registry.get_family(family_name)
        return self.run_many(
            family.expand(quick), force=force, backend=backend, shards=shards
        )

    def compare(
        self,
        scenarios: Sequence[Union[str, ScenarioSpec]],
        quick: bool = False,
        force: bool = False,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> str:
        """Run several scenarios and tabulate their headline numbers."""
        from repro.analysis.reporting import format_table
        from repro.analysis.tables import Table

        table = Table(
            ["scenario", "kind", "headline", "value", "runtime (s)", "cached"],
            title="Scenario comparison",
        )
        for result in self.run_many(
            scenarios, quick=quick, force=force, backend=backend, shards=shards
        ):
            table.add_row(
                {
                    "scenario": result.name,
                    "kind": result.kind,
                    "headline": str(result.scalars.get("headline_label", "")),
                    "value": float(result.scalars.get("headline", float("nan"))),
                    "runtime (s)": result.runtime_seconds,
                    "cached": "yes" if result.from_cache else "no",
                }
            )
        return format_table(table, float_format="{:.2f}")


# ---------------------------------------------------------------------------
# Paper-artefact runners (thin adapters over repro.experiments)
# ---------------------------------------------------------------------------


@runner("fig1")
def _run_fig1(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    from repro.experiments.fig1_processing_pdf import run

    result = run(
        params=spec.system.to_parameters(),
        tasks_per_node=int(spec.option("tasks_per_node", 2000)),
        seed=spec.seed,
    )
    scalars: Dict[str, Any] = {
        "headline_label": "fitted rate node 1 (tasks/s)",
        "headline": result.fits[0].rate,
    }
    arrays: Dict[str, np.ndarray] = {}
    for node, fit in sorted(result.fits.items()):
        scalars[f"fitted_rate_node{node + 1}"] = fit.rate
        scalars[f"ks_pvalue_node{node + 1}"] = fit.ks_pvalue
        centers, density, fitted = result.density_series(node)
        arrays[f"node{node + 1}_bin_centers"] = centers
        arrays[f"node{node + 1}_density"] = density
        arrays[f"node{node + 1}_fitted_density"] = fitted
    return scalars, arrays, result.render()


@runner("fig2")
def _run_fig2(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    import numpy as np

    from repro.experiments.fig2_delay_pdf import run

    result = run(
        params=spec.system.to_parameters(),
        probes_per_size=int(spec.option("probes_per_size", 30)),
        seed=spec.seed,
    )
    sizes, measured, fitted = result.mean_delay_series()
    scalars = {
        "headline_label": "regression slope (s/task)",
        "headline": result.regression.slope,
        "fitted_delay_mean": result.delay_fit.mean,
        "regression_slope": result.regression.slope,
        "regression_intercept": result.regression.intercept,
        "regression_r_squared": result.regression.r_squared,
    }
    arrays = {
        "probe_sizes": np.asarray(sizes),
        "probe_mean_delays": np.asarray(measured),
        "fitted_mean_delays": np.asarray(fitted),
    }
    return scalars, arrays, result.render()


@runner("fig3")
def _run_fig3(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    from repro.experiments.fig3_gain_sweep import run

    result = run(
        params=spec.system.to_parameters(),
        workload=spec.workload,
        gains=spec.gains,
        mc_realisations=spec.mc_realisations,
        experiment_realisations=spec.experiment_realisations,
        seed=spec.seed,
        workers=ctx.workers,
        executor=ctx.executor,
        store=ctx.shard_store,
        refresh=ctx._refresh_shards,
    )
    scalars = {
        "headline_label": "minimum mean completion time (s)",
        "headline": result.minimum_mean_completion_time,
        "optimal_gain_theory": result.optimal_gain_theory,
        "optimal_gain_no_failure": result.optimal_gain_no_failure,
        "minimum_mean_completion_time": result.minimum_mean_completion_time,
    }
    arrays = {
        "gains": result.gains,
        "theory": result.theory,
        "theory_no_failure": result.theory_no_failure,
        "monte_carlo": result.monte_carlo,
        "experiment": result.experiment,
    }
    return scalars, arrays, result.render()


@runner("fig4")
def _run_fig4(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    import numpy as np

    from repro.experiments.fig4_queue_traces import run

    result = run(
        params=spec.system.to_parameters(),
        workload=spec.workload,
        lbp1_gain=float(spec.option("lbp1_gain", 0.35)),
        lbp2_gain=float(spec.option("lbp2_gain", 1.0)),
        seed=spec.seed,
    )
    scalars = {
        "headline_label": "LBP-1 completion time (s)",
        "headline": result.lbp1_result.completion_time,
        "lbp1_completion_time": result.lbp1_result.completion_time,
        "lbp2_completion_time": result.lbp2_result.completion_time,
        "lbp2_compensation_transfers": sum(
            1
            for r in result.lbp2_result.transfer_records
            if r.reason == "failure-compensation"
        ),
    }
    arrays: Dict[str, np.ndarray] = {}
    for policy in ("lbp1", "lbp2"):
        for node in range(len(spec.workload)):
            times, values = result.queue_series(policy, node)
            arrays[f"{policy}_node{node + 1}_times"] = np.asarray(times)
            arrays[f"{policy}_node{node + 1}_queue"] = np.asarray(values)
    rendered = result.render(num_points=int(spec.option("sample_points", 30)))
    return scalars, arrays, rendered


@runner("fig5")
def _run_fig5(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    from repro.experiments.fig5_cdf import run

    workloads = spec.option("workloads")
    result = run(
        params=spec.system.to_parameters(),
        workloads=tuple(tuple(w) for w in workloads) if workloads else None,
        with_monte_carlo=bool(spec.option("with_monte_carlo", False)),
        mc_realisations=spec.mc_realisations,
        seed=spec.seed,
    )
    scalars: Dict[str, Any] = {}
    arrays: Dict[str, np.ndarray] = {}
    for workload, panel in result.panels.items():
        key = f"w{workload[0]}_{workload[1]}"
        scalars[f"{key}_median_failure"] = panel.cdf_failure.quantile(0.5)
        scalars[f"{key}_median_no_failure"] = panel.cdf_no_failure.quantile(0.5)
        arrays[f"{key}_times"] = panel.times
        arrays[f"{key}_cdf_failure"] = panel.cdf_failure.probabilities
        arrays[f"{key}_cdf_no_failure"] = panel.cdf_no_failure.probabilities
        if panel.empirical_failure is not None:
            arrays[f"{key}_empirical_failure"] = panel.empirical_failure
    first = next(iter(result.panels.values()))
    scalars["headline_label"] = "median completion time, panel 1 (s)"
    scalars["headline"] = first.cdf_failure.quantile(0.5)
    return scalars, arrays, result.render()


@runner("table1")
def _run_table1(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    import numpy as np

    from repro.experiments.table1_lbp1 import run

    workloads = spec.option("workloads")
    result = run(
        params=spec.system.to_parameters(),
        workloads=tuple(tuple(w) for w in workloads),
        experiment_realisations=spec.experiment_realisations,
        seed=spec.seed,
    )
    scalars: Dict[str, Any] = {
        "headline_label": "theory, first workload (s)",
        "headline": result.rows[0].theory_with_failure,
    }
    for row in result.rows:
        key = f"w{row.workload[0]}_{row.workload[1]}"
        scalars[f"{key}_optimal_gain"] = row.optimal_gain
        scalars[f"{key}_theory"] = row.theory_with_failure
        scalars[f"{key}_experiment"] = row.experiment_with_failure
    arrays = {
        "optimal_gain": np.array([r.optimal_gain for r in result.rows]),
        "theory": np.array([r.theory_with_failure for r in result.rows]),
        "experiment": np.array([r.experiment_with_failure for r in result.rows]),
        "theory_no_failure": np.array([r.theory_no_failure for r in result.rows]),
    }
    return scalars, arrays, result.render()


@runner("table2")
def _run_table2(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    import numpy as np

    from repro.experiments.table2_lbp2 import run

    workloads = spec.option("workloads")
    result = run(
        params=spec.system.to_parameters(),
        workloads=tuple(tuple(w) for w in workloads),
        mc_realisations=spec.mc_realisations,
        experiment_realisations=spec.experiment_realisations,
        seed=spec.seed,
    )
    scalars: Dict[str, Any] = {
        "headline_label": "Monte-Carlo, first workload (s)",
        "headline": result.rows[0].monte_carlo,
    }
    for row in result.rows:
        key = f"w{row.workload[0]}_{row.workload[1]}"
        scalars[f"{key}_initial_gain"] = row.initial_gain
        scalars[f"{key}_monte_carlo"] = row.monte_carlo
        scalars[f"{key}_experiment"] = row.experiment
    arrays = {
        "initial_gain": np.array([r.initial_gain for r in result.rows]),
        "monte_carlo": np.array([r.monte_carlo for r in result.rows]),
        "experiment": np.array([r.experiment for r in result.rows]),
    }
    return scalars, arrays, result.render()


@runner("table3")
def _run_table3(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    from repro.experiments.table3_delay_crossover import run

    result = run(
        params=spec.system.to_parameters(),
        workload=spec.workload,
        delays=spec.delays,
        mc_realisations=spec.mc_realisations,
        seed=spec.seed,
        workers=ctx.workers,
        executor=ctx.executor,
        store=ctx.shard_store,
        refresh=ctx._refresh_shards,
    )
    crossover = result.crossover_delay
    scalars = {
        "headline_label": "crossover delay (s/task)",
        "headline": crossover if crossover is not None else float("nan"),
        "crossover_delay": crossover,
    }
    arrays = {
        "delays": result.sweep.delays,
        "lbp1": result.sweep.lbp1_means,
        "lbp2": result.sweep.lbp2_means,
    }
    if result.sweep.lbp1_theory is not None:
        arrays["lbp1_theory"] = result.sweep.lbp1_theory
    return scalars, arrays, result.render()


# ---------------------------------------------------------------------------
# Generic runners for scenario families beyond the paper
# ---------------------------------------------------------------------------


def _estimate(spec: ScenarioSpec, ctx: Orchestrator, params, policy, seed):
    """One Monte-Carlo estimate through the unified engine.

    Every run — serial, pooled or sharded — is the same plan→execute→merge
    pipeline; only the executor differs.  ``spec.shards >= 1`` dispatches
    to the orchestrator's shard executor (process pool / remote worker
    board) with the spec's shard count; anything else runs over the shared
    futures pool when one is configured and inline otherwise.  The work
    item carries a fully-serialized mc-point spec, so runners that built
    their policy programmatically (pinned analytical gains) or were handed
    a spawned seed get both folded back into spec fields first — which is
    also what keys the shard-level block cache for *all* of these runs.

    Returns ``(estimate, report)``; ``report`` is the engine's
    :class:`~repro.montecarlo.engine.EngineReport`.
    """
    from repro.distributed.work import int_seed, policy_spec_of
    from repro.montecarlo.engine import EngineRequest, run_engine

    on_event = None
    if ctx.shard_progress is not None:
        progress = ctx.shard_progress

        def on_event(event: Dict[str, Any]) -> None:
            progress({"point": spec.name, **event})

    executor = ctx.resolved_shard_executor() if spec.shards > 0 else ctx.executor
    common = dict(
        executor=executor,
        workers=ctx.workers,
        store=ctx.shard_store,
        refresh=ctx._refresh_shards,
        on_event=on_event,
        **ctx.shard_options,
    )
    try:
        effective = spec.with_(
            kind="mc_point",
            policy=policy_spec_of(policy),
            seed=int_seed(seed),
        )
        request = EngineRequest(spec=effective, **common)
    except ValueError:
        # A runner handed us a policy outside the built-in kinds: it cannot
        # travel inside a spec (no shard store, no remote workers), but the
        # engine's ad-hoc mode runs it through the same pipeline.
        request = EngineRequest(
            params=params,
            policy=policy,
            workload=tuple(spec.workload),
            num_realisations=spec.mc_realisations,
            seed=seed,
            backend=spec.backend,
            block_size=spec.shard_block,
            **common,
        )
    report = run_engine(request)
    return report.estimate, report


@runner("mc_point")
def _run_mc_point(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    """A single policy/system/workload Monte-Carlo estimate."""
    params = spec.system.to_parameters()
    policy = (spec.policy or PolicySpec()).build(params, spec.workload)
    estimate, report = _estimate(spec, ctx, params, policy, spec.seed)
    summary = estimate.summary
    gain = getattr(policy, "gain", None)
    scalars = {
        "headline_label": "mean completion time (s)",
        "headline": summary.mean,
        "policy": estimate.policy_name,
        "backend": spec.backend,
        "gain": gain if gain is None else float(gain),
        "mean_completion_time": summary.mean,
        "std_completion_time": summary.std,
        "ci_half_width": summary.half_width,
        "num_realisations": summary.n,
    }
    arrays = {"completion_times": estimate.completion_times}
    lines = [
        f"scenario {spec.name}: {estimate.policy_name} on workload {spec.workload}",
        f"  nodes: {spec.system.num_nodes}, realisations: {summary.n}, "
        f"backend: {spec.backend}",
        f"  mean completion time: {summary.mean:.2f} s "
        f"(95% CI ±{summary.half_width:.2f})",
        f"  min/max: {summary.minimum:.2f} / {summary.maximum:.2f} s",
    ]
    if spec.shards > 0:
        scalars["shards"] = spec.shards
        scalars["shard_block"] = spec.shard_block
        scalars["blocks_total"] = report.blocks_total
        lines.insert(
            2,
            f"  sharded: {spec.shards} shards over {report.blocks_total} "
            f"seed blocks of {spec.shard_block}",
        )
    if gain is not None:
        lines.insert(1, f"  gain: {float(gain):.2f}")
    return scalars, arrays, "\n".join(lines)


@runner("delay_point")
def _run_delay_point(spec: ScenarioSpec, ctx: Orchestrator) -> RunnerOutput:
    """One Table-3-style LBP-1 vs LBP-2 duel at the spec's transfer delay."""
    from repro.core.optimize import optimal_gain_lbp1, optimal_gain_lbp2_initial
    from repro.core.policies.lbp1 import LBP1
    from repro.core.policies.lbp2 import LBP2
    from repro.sim.rng import spawn_seeds

    params = spec.system.to_parameters()
    seeds = spawn_seeds(spec.seed, 2)

    optimum = optimal_gain_lbp1(params, spec.workload)
    lbp1 = LBP1(optimum.optimal_gain, sender=optimum.sender, receiver=optimum.receiver)
    lbp1_estimate, _ = _estimate(spec, ctx, params, lbp1, seeds[0])
    lbp1_mean = lbp1_estimate.mean_completion_time

    initial_gain = optimal_gain_lbp2_initial(params, spec.workload).optimal_gain
    lbp2_estimate, _ = _estimate(spec, ctx, params, LBP2(initial_gain), seeds[1])
    lbp2_mean = lbp2_estimate.mean_completion_time

    delay = params.delay.mean_delay_per_task
    winner = "lbp1" if lbp1_mean < lbp2_mean else "lbp2"
    scalars = {
        "headline_label": "best mean completion time (s)",
        "headline": min(lbp1_mean, lbp2_mean),
        "delay_per_task": delay,
        "lbp1_gain": optimum.optimal_gain,
        "lbp1_mean": lbp1_mean,
        "lbp1_theory": optimum.optimal_mean,
        "lbp2_initial_gain": initial_gain,
        "lbp2_mean": lbp2_mean,
        "winner": winner,
    }
    arrays: Dict[str, np.ndarray] = {}
    rendered = "\n".join(
        [
            f"scenario {spec.name}: per-task delay {delay:g} s, "
            f"workload {spec.workload}",
            f"  LBP-1 (K={optimum.optimal_gain:.2f}): {lbp1_mean:.2f} s "
            f"(theory {optimum.optimal_mean:.2f} s)",
            f"  LBP-2 (K={initial_gain:.2f}): {lbp2_mean:.2f} s",
            f"  winner: {winner.upper()}",
        ]
    )
    return scalars, arrays, rendered
