"""Tests for the system parameterisation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import (
    PAPER_MEAN_DELAY_PER_TASK,
    PAPER_SERVICE_RATES,
    NodeParameters,
    SystemParameters,
    TransferDelayModel,
    homogeneous_parameters,
    paper_parameters,
    paper_two_node_parameters,
    validate_workload,
)


class TestNodeParameters:
    def test_basic_derived_quantities(self):
        node = NodeParameters(service_rate=2.0, failure_rate=0.05, recovery_rate=0.1)
        assert node.mean_service_time == pytest.approx(0.5)
        assert node.mean_time_to_failure == pytest.approx(20.0)
        assert node.mean_recovery_time == pytest.approx(10.0)
        assert node.can_fail

    def test_reliable_node(self):
        node = NodeParameters(service_rate=1.0)
        assert node.mean_time_to_failure == math.inf
        assert node.mean_recovery_time == 0.0
        assert node.availability == 1.0
        assert not node.can_fail

    def test_availability_formula(self):
        node = NodeParameters(service_rate=1.0, failure_rate=0.05, recovery_rate=0.1)
        assert node.availability == pytest.approx(0.1 / 0.15)

    def test_rejects_non_positive_service_rate(self):
        with pytest.raises(ValueError):
            NodeParameters(service_rate=0.0)

    def test_rejects_negative_failure_rate(self):
        with pytest.raises(ValueError):
            NodeParameters(service_rate=1.0, failure_rate=-0.1)

    def test_rejects_failure_without_recovery(self):
        with pytest.raises(ValueError):
            NodeParameters(service_rate=1.0, failure_rate=0.1, recovery_rate=0.0)

    def test_rejects_initially_down_without_recovery(self):
        with pytest.raises(ValueError):
            NodeParameters(service_rate=1.0, initially_up=False)

    def test_without_failures(self):
        node = NodeParameters(service_rate=1.0, failure_rate=0.1, recovery_rate=0.2)
        clean = node.without_failures()
        assert clean.failure_rate == 0.0
        assert clean.recovery_rate == 0.0
        assert clean.service_rate == 1.0


class TestTransferDelayModel:
    def test_mean_delay_linear_in_batch_size(self):
        model = TransferDelayModel(mean_delay_per_task=0.02)
        assert model.mean_delay(50) == pytest.approx(1.0)
        assert model.mean_delay(0) == 0.0

    def test_fixed_overhead_added(self):
        model = TransferDelayModel(mean_delay_per_task=0.02, fixed_overhead=0.5)
        assert model.mean_delay(50) == pytest.approx(1.5)

    def test_batch_rate_is_inverse_mean(self):
        model = TransferDelayModel(mean_delay_per_task=0.02)
        assert model.batch_rate(50) == pytest.approx(1.0)

    def test_zero_delay_gives_infinite_rate(self):
        assert TransferDelayModel(0.0).batch_rate(10) == math.inf

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            TransferDelayModel(0.02).mean_delay(-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TransferDelayModel(0.02, kind="gaussian")

    def test_with_mean_delay_per_task(self):
        model = TransferDelayModel(0.02, fixed_overhead=0.1, kind="erlang")
        scaled = model.with_mean_delay_per_task(1.0)
        assert scaled.mean_delay_per_task == 1.0
        assert scaled.fixed_overhead == 0.1
        assert scaled.kind == "erlang"


class TestSystemParameters:
    def test_accessors(self, paper_params):
        assert paper_params.num_nodes == 2
        assert paper_params.service_rates == PAPER_SERVICE_RATES
        assert paper_params.total_service_rate == pytest.approx(sum(PAPER_SERVICE_RATES))
        assert paper_params.node(0).name == "crusoe"

    def test_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            SystemParameters(nodes=())

    def test_node_index_validation(self, paper_params):
        with pytest.raises(IndexError):
            paper_params.node(5)

    def test_transfer_rate_depends_on_batch_size(self, paper_params):
        assert paper_params.transfer_rate(0, 1, 50) == pytest.approx(1.0)
        assert paper_params.transfer_rate(0, 1, 100) == pytest.approx(0.5)

    def test_without_failures(self, paper_params):
        clean = paper_params.without_failures()
        assert all(rate == 0.0 for rate in clean.failure_rates)
        assert clean.service_rates == paper_params.service_rates

    def test_with_delay_per_task(self, paper_params):
        scaled = paper_params.with_delay_per_task(1.0)
        assert scaled.delay.mean_delay_per_task == 1.0
        assert paper_params.delay.mean_delay_per_task == PAPER_MEAN_DELAY_PER_TASK

    def test_pairwise_delay_overrides(self, paper_params):
        special = TransferDelayModel(5.0)
        overridden = paper_params.with_pairwise_delays([((0, 1), special)])
        assert overridden.delay_model(0, 1) is special
        assert overridden.delay_model(1, 0) is paper_params.delay

    def test_pairwise_override_validation(self, paper_params):
        with pytest.raises(ValueError):
            paper_params.with_pairwise_delays([((0, 0), TransferDelayModel(1.0))])
        with pytest.raises(IndexError):
            paper_params.with_pairwise_delays([((0, 7), TransferDelayModel(1.0))])

    def test_require_two_nodes(self, three_node_params, paper_params):
        paper_params.require_two_nodes()
        with pytest.raises(ValueError):
            three_node_params.require_two_nodes()

    def test_with_nodes_replaces_nodes(self, paper_params):
        replaced = paper_params.with_nodes([NodeParameters(1.0)])
        assert replaced.num_nodes == 1


class TestFactories:
    def test_paper_parameters_match_published_setup(self):
        params = paper_parameters()
        assert params.service_rates == (1.08, 1.86)
        assert params.failure_rates == (pytest.approx(0.05), pytest.approx(0.05))
        assert params.recovery_rates == (pytest.approx(0.1), pytest.approx(0.05))
        assert params.delay.mean_delay_per_task == 0.02

    def test_paper_parameters_without_failures(self):
        params = paper_parameters(with_failures=False)
        assert params.failure_rates == (0.0, 0.0)

    def test_paper_parameters_custom_delay(self):
        assert paper_parameters(mean_delay_per_task=1.0).delay.mean_delay_per_task == 1.0

    def test_alias_factory(self):
        assert paper_two_node_parameters().service_rates == (1.08, 1.86)

    def test_homogeneous_parameters(self):
        params = homogeneous_parameters(4, service_rate=2.0, failure_rate=0.1,
                                        recovery_rate=0.2)
        assert params.num_nodes == 4
        assert all(rate == 2.0 for rate in params.service_rates)
        assert params.node(2).name == "node-2"

    def test_homogeneous_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            homogeneous_parameters(0, service_rate=1.0)


class TestValidateWorkload:
    def test_accepts_valid_workloads(self, paper_params):
        assert validate_workload((100, 60), paper_params) == (100, 60)
        assert validate_workload([0, 0]) == (0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_workload((-1, 2))

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            validate_workload((1.5, 2))

    def test_rejects_wrong_length(self, paper_params):
        with pytest.raises(ValueError):
            validate_workload((1, 2, 3), paper_params)

    @given(loads=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, loads):
        assert validate_workload(loads) == tuple(loads)
