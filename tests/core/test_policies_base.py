"""Tests for the policy protocol and the Transfer data type."""

import pytest

from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.core.policies import LBP1, LBP2, NoBalancing


class TestTransfer:
    def test_valid_transfer(self):
        transfer = Transfer(0, 1, 10)
        assert transfer.num_tasks == 10
        assert not transfer.is_empty

    def test_empty_transfer(self):
        assert Transfer(0, 1, 0).is_empty

    def test_rejects_self_transfer(self):
        with pytest.raises(ValueError):
            Transfer(1, 1, 5)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            Transfer(0, 1, -1)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            Transfer(-1, 1, 5)

    def test_is_hashable_and_comparable(self):
        assert Transfer(0, 1, 5) == Transfer(0, 1, 5)
        assert len({Transfer(0, 1, 5), Transfer(0, 1, 5)}) == 1


class TestPolicyProtocol:
    def test_default_on_failure_is_noop(self, paper_params):
        policy = LBP1(0.5)
        assert policy.on_failure(0, (10, 10), paper_params) == []

    def test_default_on_recovery_is_noop(self, paper_params):
        for policy in (LBP1(0.5), LBP2(1.0), NoBalancing()):
            assert policy.on_recovery(0, (10, 10), paper_params) == []

    def test_policies_expose_names(self):
        assert LBP1(0.5).name == "LBP-1"
        assert LBP2(1.0).name == "LBP-2"
        assert NoBalancing().name == "no-balancing"

    def test_abstract_base_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            LoadBalancingPolicy()

    def test_workload_validation_shared_helper(self, paper_params):
        with pytest.raises(ValueError):
            LBP1(0.5).initial_transfers((10, -1), paper_params)
        with pytest.raises(ValueError):
            NoBalancing().initial_transfers((10, 10, 10), paper_params)
