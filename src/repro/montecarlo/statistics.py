"""Summary statistics of Monte-Carlo outputs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean, dispersion and confidence interval of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence_level: float

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.n == 0:
            return float("nan")
        return self.std / math.sqrt(self.n)

    @property
    def half_width(self) -> float:
        """Half width of the confidence interval."""
        return 0.5 * (self.ci_high - self.ci_low)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high


def summarize(values: Sequence[float], confidence_level: float = 0.95) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` of a sample.

    Uses the Student-t critical value, matching standard discrete-event
    simulation output analysis practice.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    if not 0 < confidence_level < 1:
        raise ValueError(f"confidence_level must lie in (0, 1), got {confidence_level!r}")
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    if data.size > 1 and std > 0:
        half = float(
            stats.t.ppf(0.5 + confidence_level / 2.0, df=data.size - 1)
            * std
            / math.sqrt(data.size)
        )
    else:
        half = 0.0
    return SummaryStatistics(
        n=int(data.size),
        mean=mean,
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci_low=mean - half,
        ci_high=mean + half,
        confidence_level=confidence_level,
    )


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample: returns ``(sorted values, F(values))``.

    Used to compare the Monte-Carlo completion times against the analytical
    CDF of eq. (5) (Fig. 5).
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("cannot build an empirical CDF from an empty sample")
    probabilities = np.arange(1, data.size + 1) / data.size
    return data, probabilities


def evaluate_empirical_cdf(values: Sequence[float], grid: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CDF of ``values`` on an arbitrary time grid."""
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("cannot build an empirical CDF from an empty sample")
    grid_arr = np.asarray(grid, dtype=float)
    return np.searchsorted(data, grid_arr, side="right") / data.size
