"""Discrete-event simulation (DES) engine.

This subpackage is a self-contained, generator-based discrete-event
simulation kernel in the style of SimPy.  It is the substrate on which the
distributed-computing system of the paper (compute elements, failure and
recovery processes, load-transfer channels, the three-layer test-bed
emulation) is built.

The main entry point is :class:`~repro.sim.engine.Environment`::

    from repro.sim import Environment

    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 3.0

Modules
-------
``engine``
    The :class:`Environment` simulation kernel (clock, event heap, run loop).
``events``
    Event primitives: :class:`Event`, :class:`Timeout`, :class:`AnyOf`,
    :class:`AllOf`.
``process``
    Generator-backed :class:`Process` objects with interrupt support.
``rng``
    Reproducible random-number stream management.
``distributions``
    Random-variate distributions used throughout the model (exponential,
    Erlang, deterministic, empirical, ...).
``monitor``
    Time-series and tally monitors used to record queue trajectories and
    summary statistics.
``resources``
    A small resource/store library (used by the test-bed communication
    layer).
"""

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.exceptions import Interrupt, SimulationError, StopSimulation
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    HyperExponential,
    Uniform,
)
from repro.sim.monitor import TallyMonitor, TimeSeriesMonitor
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Deterministic",
    "Distribution",
    "Empirical",
    "Environment",
    "Erlang",
    "Event",
    "Exponential",
    "HyperExponential",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "TallyMonitor",
    "Timeout",
    "TimeSeriesMonitor",
    "Uniform",
]
