"""Execution machinery of the unified Monte-Carlo engine.

An ensemble of N realisations is partitioned into fixed-size **seed
blocks** (deterministic per-block random streams spawned from the master
seed), blocks are grouped into **shards** — the schedulable work items —
and a load-balancing :class:`ShardScheduler` dispatches them to a
pluggable :class:`ShardExecutor`: in-process, a local process pool, a
wrapped shared futures pool, or the results service's fleet of remote
``repro worker`` processes.  Completed blocks are content-addressed in
the :class:`ShardStore`, so interrupted runs resume and enlarged
ensembles compute only the delta; merged results are bit-identical for
every shard count and executor (see :mod:`repro.distributed.plan` and the
exact-merge accumulators in :mod:`repro.montecarlo.statistics`).

The pipeline itself — plan → execute → merge — lives in
:mod:`repro.montecarlo.engine` and serves *every* Monte-Carlo run, not
just explicitly sharded ones; :func:`run_sharded_spec` is its
spec-oriented entry point.

Re-exports are lazy (PEP 562): importing this package costs nothing, which
keeps the service's request path numpy-free.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "repro.distributed.executors": (
        "EXECUTOR_NAMES",
        "FuturesShardExecutor",
        "InlineExecutor",
        "ProcessShardExecutor",
        "ShardExecutor",
        "ShardOutcome",
        "resolve_executor",
    ),
    "repro.distributed.plan": (
        "SeedBlock",
        "Shard",
        "block_key",
        "block_seed",
        "plan_blocks",
        "plan_shards",
        "shard_plan_key",
    ),
    "repro.distributed.runner": (
        "ShardedRunReport",
        "int_seed",
        "policy_spec_of",
        "run_sharded_spec",
    ),
    "repro.distributed.scheduler": (
        "ASSIGNMENT_POLICIES",
        "ShardExecutionError",
        "ShardScheduler",
    ),
    "repro.distributed.store": ("ShardStore",),
    "repro.distributed.work": (
        "execute_work_item",
        "make_adhoc_item",
        "make_work_item",
        "run_block",
    ),
    "repro.distributed.worker": ("run_worker",),
}

__getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
