"""Tests for the preemptive policy LBP-1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import paper_parameters
from repro.core.policies.lbp1 import LBP1


class TestConstruction:
    def test_gain_bounds_enforced(self):
        with pytest.raises(ValueError):
            LBP1(-0.1)
        with pytest.raises(ValueError):
            LBP1(1.1)

    def test_sender_receiver_must_be_given_together(self):
        with pytest.raises(ValueError):
            LBP1(0.5, sender=0)

    def test_sender_receiver_must_differ(self):
        with pytest.raises(ValueError):
            LBP1(0.5, sender=1, receiver=1)

    def test_with_gain_copies_pair(self):
        policy = LBP1(0.2, sender=1, receiver=0)
        copy = policy.with_gain(0.8)
        assert copy.gain == 0.8
        assert copy.sender == 1 and copy.receiver == 0


class TestTwoNodeBehaviour:
    def test_transfer_is_gain_times_sender_load(self, paper_params):
        transfers = LBP1(0.35, sender=0, receiver=1).initial_transfers(
            (100, 60), paper_params
        )
        assert len(transfers) == 1
        assert transfers[0].num_tasks == 35
        assert transfers[0].source == 0
        assert transfers[0].destination == 1

    def test_rounding_to_nearest_task(self, paper_params):
        transfers = LBP1(0.33, sender=0, receiver=1).initial_transfers(
            (10, 0), paper_params
        )
        assert transfers[0].num_tasks == 3

    def test_gain_zero_yields_no_transfer(self, paper_params):
        assert LBP1(0.0, sender=0, receiver=1).initial_transfers((100, 60), paper_params) == []

    def test_gain_one_sends_whole_queue(self, paper_params):
        transfers = LBP1(1.0, sender=0, receiver=1).initial_transfers((100, 60), paper_params)
        assert transfers[0].num_tasks == 100

    def test_default_pair_more_loaded_node_sends(self, paper_params):
        assert LBP1(0.5).initial_transfers((100, 60), paper_params)[0].source == 0
        assert LBP1(0.5).initial_transfers((60, 100), paper_params)[0].source == 1

    def test_default_pair_tie_breaks_to_node_zero(self, paper_params):
        assert LBP1(0.5).initial_transfers((80, 80), paper_params)[0].source == 0

    def test_empty_sender_queue_produces_nothing(self, paper_params):
        assert LBP1(0.9, sender=0, receiver=1).initial_transfers((0, 60), paper_params) == []

    def test_no_failure_time_action(self, paper_params):
        assert LBP1(0.5).on_failure(1, (40, 20), paper_params) == []

    def test_explicit_pair_out_of_range_rejected(self, paper_params):
        with pytest.raises(IndexError):
            LBP1(0.5, sender=0, receiver=2).initial_transfers((10, 10), paper_params)


class TestMultiNodeGeneralisation:
    def test_uses_excess_rule_for_three_nodes(self, three_node_params):
        transfers = LBP1(1.0).initial_transfers((100, 0, 0), three_node_params)
        assert all(t.source == 0 for t in transfers)
        assert {t.destination for t in transfers} == {1, 2}

    def test_gain_attenuates_multi_node_transfers(self, three_node_params):
        full = LBP1(1.0).initial_transfers((100, 0, 0), three_node_params)
        half = LBP1(0.5).initial_transfers((100, 0, 0), three_node_params)
        assert sum(t.num_tasks for t in half) < sum(t.num_tasks for t in full)


class TestProperties:
    @given(
        m0=st.integers(min_value=0, max_value=500),
        m1=st.integers(min_value=0, max_value=500),
        gain=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_transfer_never_exceeds_sender_load(self, m0, m1, gain):
        params = paper_parameters()
        transfers = LBP1(gain).initial_transfers((m0, m1), params)
        for transfer in transfers:
            assert transfer.num_tasks <= (m0, m1)[transfer.source]

    @given(gain=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_transfer_size_monotone_in_gain(self, gain):
        params = paper_parameters()
        smaller = LBP1(gain * 0.5, sender=0, receiver=1).initial_transfers((200, 0), params)
        larger = LBP1(gain, sender=0, receiver=1).initial_transfers((200, 0), params)
        size = lambda ts: sum(t.num_tasks for t in ts)
        assert size(smaller) <= size(larger)
