"""Distributed-system model: computing elements, failures, channels.

This subpackage models the distributed computing system of the paper on top
of the :mod:`repro.sim` discrete-event kernel:

* :mod:`repro.cluster.task` / :mod:`repro.cluster.workload` — tasks (the
  smallest indivisible unit of work) and initial workload generation;
* :mod:`repro.cluster.node` — computing elements (CEs) with exponential
  service, preemptible by failures;
* :mod:`repro.cluster.failure` — the alternating exponential
  failure/recovery process of each node;
* :mod:`repro.cluster.backup` — the per-node backup agent that executes
  compensation transfers at failure instants (LBP-2);
* :mod:`repro.cluster.network` — load-dependent random-delay transfer
  channels;
* :mod:`repro.cluster.trace` — queue-length trajectory recording (Fig. 4);
* :mod:`repro.cluster.system` — the :class:`DistributedSystem` façade that
  wires everything together and runs one realisation under a policy.
"""

from repro.cluster.task import Task, TaskState
from repro.cluster.workload import Workload, generate_workload
from repro.cluster.node import ComputeElement, NodeState
from repro.cluster.failure import FailureRecoveryProcess
from repro.cluster.backup import BackupAgent
from repro.cluster.network import Network, TransferRecord
from repro.cluster.trace import QueueTrace, SystemTrace
from repro.cluster.system import DistributedSystem, SimulationResult, simulate_once

__all__ = [
    "BackupAgent",
    "ComputeElement",
    "DistributedSystem",
    "FailureRecoveryProcess",
    "Network",
    "NodeState",
    "QueueTrace",
    "SimulationResult",
    "SystemTrace",
    "Task",
    "TaskState",
    "TransferRecord",
    "Workload",
    "generate_workload",
    "simulate_once",
]
