"""The ``repro worker`` process: pull shard work items over HTTP, execute,
post partial results back.

A worker is deliberately dumb: it registers with a running results service
(``repro serve``), then loops *claim → execute → post*.  All scheduling
intelligence — load balancing, retries, timeouts, reassignment on worker
death — lives on the service side (:mod:`repro.distributed.scheduler` over
:class:`repro.service.shards.ShardBoard`), so workers can appear, crash
and reconnect at any time without coordination.

Three fleet-efficiency mechanics live here:

* **warm start** — :func:`repro.distributed.work.warm_block_runtime` runs
  before the first claim, so numpy, the spec machinery and the backends
  are imported while the worker is idle, not inside its first shard;
* **batched claims** — one claim round-trip asks for up to ``batch`` work
  items and one result post ships every outcome of the batch (older
  services transparently degrade to one item per claim: the worker speaks
  the batched protocol, the reply tells it what the board understood);
* **backoff** — empty claims back off exponentially with jitter (capped at
  :data:`CLAIM_BACKOFF_CAP`), so a large idle fleet stops hammering
  ``/v1/workers/{id}/claim`` in lockstep.

Failures inside a work item are posted back as structured errors (the
scheduler decides whether to retry elsewhere); failures of the *service
connection* are retried with a backoff until ``max_idle`` expires.
"""

from __future__ import annotations

import random
import sys
import time
from typing import List, Optional

from repro.distributed.work import (
    execute_work_item,
    shard_outcome_error,
    warm_block_runtime,
    worker_name,
)
from repro.obs.metrics import REGISTRY

# Worker-process-local: these live in the `repro worker` process itself
# (snapshot/merge them if a fleet aggregator ever wants the totals).
_CLAIMS = REGISTRY.counter(
    "repro_worker_claims_total",
    "Work-claim attempts, by outcome (item/empty/error).",
    labelnames=("outcome",),
)
_CLAIM_SECONDS = REGISTRY.histogram(
    "repro_worker_claim_seconds",
    "Latency of the claim-work HTTP round-trip.",
)
_CLAIM_BATCH = REGISTRY.histogram(
    "repro_worker_claim_batch_items",
    "Work items received per non-empty claim (batched-claim payoff).",
)
_ITEMS = REGISTRY.counter(
    "repro_worker_items_total",
    "Work items executed, by outcome.",
    labelnames=("outcome",),
)
_BLOCKS = REGISTRY.counter(
    "repro_worker_blocks_total",
    "Seed blocks computed by this worker (blocks/sec numerator).",
)
_BUSY_SECONDS = REGISTRY.counter(
    "repro_worker_busy_seconds_total",
    "Seconds spent executing work items (blocks/sec denominator).",
)

#: Seconds between telemetry piggybacks on *empty* claims; result posts
#: always carry telemetry (results are the interesting moments).
TELEMETRY_INTERVAL = 5.0

#: Work items requested per claim round-trip unless the operator says
#: otherwise (``repro worker --batch``).
DEFAULT_CLAIM_BATCH = 4

#: Hard ceiling on the empty-claim backoff delay, seconds.
CLAIM_BACKOFF_CAP = 2.0


class ClaimBackoff:
    """Exponential backoff with jitter for empty work claims.

    The delay doubles per consecutive empty claim, from ``base`` up to the
    hard ``cap``, and each delay is jittered by ±``jitter`` (fraction of
    itself) so a fleet started in lockstep decorrelates instead of polling
    the service in synchronized waves.  ``reset()`` snaps back to ``base``
    the moment work appears.  Jitter never pushes a delay above ``cap`` or
    below zero, and ``jitter=0`` (tests) makes the schedule exact:
    ``base, 2·base, 4·base, …, cap, cap, …``.
    """

    def __init__(
        self,
        base: float = 0.2,
        cap: float = CLAIM_BACKOFF_CAP,
        factor: float = 2.0,
        jitter: float = 0.25,
        rng: Optional[random.Random] = None,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base must be > 0, got {base!r}")
        if cap < base:
            raise ValueError(f"cap must be >= base, got {cap!r} < {base!r}")
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor!r}")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
        self.base = base
        self.cap = cap
        self.factor = factor
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._misses = 0

    def reset(self) -> None:
        self._misses = 0

    def next_delay(self) -> float:
        delay = min(self.cap, self.base * self.factor**self._misses)
        self._misses += 1
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return min(self.cap, delay)


class _Telemetry:
    """Piggybacked fleet telemetry: cumulative snapshot + sequence number.

    The snapshot is the worker's whole-registry truth, so the service can
    replace (not add) on ingest — a re-posted payload after an HTTP retry
    is harmless.  ``seq`` increments per send so the aggregator can drop
    reordered duplicates.
    """

    def __init__(self, name: str, interval: float = TELEMETRY_INTERVAL) -> None:
        self.name = name
        self.interval = interval
        self._seq = 0
        self._last_sent: Optional[float] = None

    def payload(self) -> dict:
        self._seq += 1
        self._last_sent = time.monotonic()
        return {
            "name": self.name,
            "seq": self._seq,
            "metrics": REGISTRY.snapshot(),
        }

    def payload_if_due(self) -> Optional[dict]:
        if (
            self._last_sent is not None
            and time.monotonic() - self._last_sent < self.interval
        ):
            return None
        return self.payload()


def run_worker(
    connect: str,
    name: Optional[str] = None,
    poll_interval: float = 0.2,
    max_idle: Optional[float] = None,
    once: bool = False,
    batch: int = DEFAULT_CLAIM_BATCH,
    wire: str = "auto",
    log=print,
) -> int:
    """Serve shard work items from the service at ``connect`` until stopped.

    ``max_idle`` exits cleanly after that many seconds without work (used
    by tests and batch jobs); ``once`` exits after the first executed
    batch.  ``batch`` is the number of work items requested per claim
    round-trip (the service may hand back fewer).  ``wire`` picks the
    claim/result encoding: ``"auto"`` negotiates binary frames with boards
    that speak them (JSON otherwise), ``"json"`` pins plain JSON.  Returns
    a process exit code.
    """
    from repro.service.client import ServiceClient, ServiceError

    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch!r}")
    client = ServiceClient(connect, timeout=30.0, wire=wire)
    me = worker_name(name)
    telemetry = _Telemetry(me)
    backoff = ClaimBackoff(base=max(poll_interval, 0.05))

    warm_seconds = warm_block_runtime()
    log(f"repro worker {me}: block runtime warm in {warm_seconds:.2f}s", flush=True)

    def register() -> Optional[str]:
        """Register with retry — the service may not have bound yet
        (`repro serve & repro worker` is the documented startup pattern)."""
        started = time.monotonic()
        while True:
            try:
                return client.register_worker(me)
            except (ServiceError, OSError) as error:
                if max_idle is not None and time.monotonic() - started > max_idle:
                    log(
                        f"repro worker {me}: cannot register at {connect} "
                        f"({error}); exiting",
                        file=sys.stderr,
                    )
                    return None
                time.sleep(max(poll_interval, 0.5))

    worker_id = register()
    if worker_id is None:
        return 1
    log(f"repro worker {me} registered as {worker_id} at {connect}", flush=True)

    idle_since = time.monotonic()
    executed = 0
    claim_seq = 0
    frames_logged = False
    while True:
        claim_started = time.monotonic()
        claim_seq += 1
        try:
            claimed = client.claim_work_batch(
                worker_id,
                batch=batch,
                token=f"{worker_id}:{claim_seq}",
                telemetry=telemetry.payload_if_due(),
            )
            _CLAIM_SECONDS.observe(time.monotonic() - claim_started)
            if not frames_logged and client._peer_speaks_frames:
                frames_logged = True
                log(
                    f"repro worker {me}: wire upgraded to binary frames",
                    flush=True,
                )
        except ServiceError as error:
            _CLAIMS.labels(outcome="error").inc()
            if error.status == 404:
                # The board purged us as long-dead (e.g. after a laptop
                # sleep); a fresh registration picks up where we left off.
                worker_id = register()
                if worker_id is None:
                    return 1
                log(f"repro worker {me}: re-registered as {worker_id}")
                continue
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                log(f"repro worker {me}: service errors ({error}); exiting")
                return 1
            time.sleep(max(poll_interval, 0.5))
            continue
        except OSError as error:
            _CLAIMS.labels(outcome="error").inc()
            # The service may be restarting or gone; linger until max_idle.
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                log(f"repro worker {me}: service unreachable ({error}); exiting")
                return 1
            time.sleep(max(poll_interval, 0.5))
            continue

        items = claimed["items"]
        if not items:
            _CLAIMS.labels(outcome="empty").inc()
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                log(f"repro worker {me}: idle for {max_idle:g}s; exiting")
                return 0
            time.sleep(backoff.next_delay())
            continue

        _CLAIMS.labels(outcome="item").inc()
        _CLAIM_BATCH.observe(float(len(items)))
        backoff.reset()
        idle_since = time.monotonic()

        # Execute the whole batch, then ship every outcome in one post
        # (protocol >= 2) or one post per item (a v1 service).
        outcomes: List[dict] = []
        batch_failed = 0
        for item in items:
            shard = item.get("shard")
            log(f"repro worker {me}: executing shard {shard} of task {item.get('task')}")
            busy_started = time.monotonic()
            try:
                result = execute_work_item(item, worker=me)
            except Exception as error:  # noqa: BLE001 - worker survives bad items
                result, outcome_error = None, shard_outcome_error(error)
                _ITEMS.labels(outcome="failed").inc()
                batch_failed += 1
                log(
                    f"repro worker {me}: shard {shard} failed: {error}",
                    file=sys.stderr,
                )
            else:
                outcome_error = None
                _ITEMS.labels(outcome="ok").inc()
                _BLOCKS.inc(len(result["blocks"]))
            _BUSY_SECONDS.inc(time.monotonic() - busy_started)
            outcome: dict = {"id": item["id"]}
            if result is not None:
                outcome["result"] = result
            if outcome_error is not None:
                outcome["error"] = outcome_error
            outcomes.append(outcome)

        try:
            if claimed["protocol"] >= 2:
                client.post_work_results(
                    worker_id, outcomes, telemetry=telemetry.payload()
                )
            else:
                for outcome in outcomes:
                    client.post_work_result(
                        worker_id,
                        item_id=outcome["id"],
                        result=outcome.get("result"),
                        error=outcome.get("error"),
                        telemetry=telemetry.payload(),
                    )
        except (ServiceError, OSError) as error:
            # The results are lost (the scheduler's shard timeout will
            # reassign them); the worker itself survives and keeps polling.
            log(
                f"repro worker {me}: could not post {len(outcomes)} "
                f"outcome(s) ({error}); continuing",
                file=sys.stderr,
            )
        else:
            done = len(outcomes) - batch_failed
            executed += done
            if done:
                log(f"repro worker {me}: {done} shard(s) done")
        idle_since = time.monotonic()
        if once and executed:
            return 0
