"""The load-balancing / failure layer of the emulated test-bed.

Section 3 of the paper describes this layer as a multi-threaded process per
node: one thread runs the load-balancing policy at scheduled instants (the
joint balancing action at ``t = 0``), and a second thread implements the
backup system that, under LBP-2, computes and ships the compensation load at
every (non-catastrophic) failure of its node.  All decisions are *local*,
based on the state information the nodes exchanged over UDP.

:class:`BalancerLayer` is the per-node counterpart of that process in the
emulation.  Unlike the clean Monte-Carlo model (which gives the policy a
perfect, instantaneous view of all queues), the balancer layer works from
its :class:`~repro.testbed.communication.CommunicationLayer`'s *last
received* peer state — delayed, possibly stale, possibly incomplete if a
state packet was lost — which is exactly what distinguishes the paper's
"Exp." columns from its "MC" columns.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cluster.node import ComputeElement
from repro.cluster.task import Task
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.sim.engine import Environment


class BalancerLayer:
    """Per-node load-balancing / failure layer.

    Parameters
    ----------
    env:
        Simulation environment.
    node:
        The compute element this layer controls.
    policy:
        The load-balancing policy (shared by all nodes, as in the paper where
        identical software runs on every host).
    params:
        System parameters.
    comm:
        This node's communication endpoint.
    initial_workload:
        The task count this node starts with (reported in the first state
        broadcast).
    sync_wait:
        How long to wait for peer state information before taking the
        ``t = 0`` balancing action (the paper's synchronisation event).
    resync_interval:
        Period of the routine state-information broadcasts; ``None`` disables
        periodic resynchronisation.
    """

    def __init__(
        self,
        env: Environment,
        node: ComputeElement,
        policy: LoadBalancingPolicy,
        params: SystemParameters,
        comm,
        initial_workload: int,
        sync_wait: float = 0.05,
        resync_interval: Optional[float] = 5.0,
    ) -> None:
        self.env = env
        self.node = node
        self.policy = policy
        self.params = params
        self.comm = comm
        self.initial_workload = int(initial_workload)
        self.sync_wait = float(sync_wait)
        self.resync_interval = resync_interval

        self.initial_transfers_sent: List[Transfer] = []
        self.compensation_transfers_sent: List[Transfer] = []

        self._balancing_process = env.process(
            self._initial_balancing(), name=f"balancer-{node.index}"
        )
        if resync_interval is not None:
            env.process(self._resync_loop(), name=f"resync-{node.index}")

    # -- the t = 0 balancing thread ------------------------------------------------

    #: Number of guaranteed state broadcasts during the initial
    #: synchronisation (protects the peers' view against UDP loss) and the
    #: maximum number of rounds a node waits for a full view before deciding
    #: with whatever it has.
    MIN_SYNC_BROADCASTS = 3
    MAX_SYNC_ROUNDS = 10

    def _initial_balancing(self):
        # Announce the initial workload a few times (UDP packets can be
        # lost), giving the exchange a short synchronisation window, then
        # wait — up to a bound — until state information from every peer has
        # arrived before taking the joint t = 0 balancing decision.
        for round_index in range(self.MAX_SYNC_ROUNDS):
            if round_index < self.MIN_SYNC_BROADCASTS:
                self.comm.broadcast_state(
                    self.initial_workload, self.node.params.service_rate
                )
            yield self.env.timeout(self.sync_wait)
            if (
                round_index >= self.MIN_SYNC_BROADCASTS - 1
                and self.comm.has_full_view()
            ):
                break

        known = self.comm.known_queue_sizes(default=0)
        # The node always knows its own true queue.
        known[self.node.index] = self.initial_workload
        requested = self.policy.initial_transfers(known, self.params)

        for transfer in requested:
            if transfer.source != self.node.index or transfer.is_empty:
                continue  # every node only executes its own outgoing transfers
            batch = self.node.take_tasks(transfer.num_tasks)
            if not batch:
                continue
            self.comm.send_tasks(transfer.destination, batch, reason="initial")
            self.initial_transfers_sent.append(
                Transfer(transfer.source, transfer.destination, len(batch))
            )

    def _resync_loop(self):
        assert self.resync_interval is not None
        while True:
            yield self.env.timeout(self.resync_interval)
            self.comm.broadcast_state(
                self.node.queue_length, self.node.params.service_rate
            )

    # -- failure / recovery signals (the backup thread) -------------------------------

    def handle_stop_signal(self, time: float) -> List[Transfer]:
        """Stop execution and run the policy's failure-time action (backup role)."""
        self.node.fail()
        known = self.comm.known_queue_sizes(default=0)
        known[self.node.index] = self.node.queue_length
        requested = self.policy.on_failure(
            self.node.index, known, self.params, time=time
        )

        executed: List[Transfer] = []
        for transfer in requested:
            if transfer.source != self.node.index or transfer.is_empty:
                continue
            batch = self.node.take_tasks(transfer.num_tasks)
            if not batch:
                break
            self.comm.send_tasks(
                transfer.destination, batch, reason="failure-compensation"
            )
            executed.append(
                Transfer(transfer.source, transfer.destination, len(batch))
            )
        self.compensation_transfers_sent.extend(executed)
        return executed

    def handle_resume_signal(self, time: float) -> None:
        """Resume execution after a recovery and refresh the peers' view."""
        del time
        self.node.recover()
        self.comm.broadcast_state(self.node.queue_length, self.node.params.service_rate)
