"""A deliberately small asyncio HTTP/1.1 server (stdlib only).

The results service needs five things from HTTP — request parsing, path
routing with ``{param}`` captures, JSON responses, a streamed NDJSON
response for job-progress events, and clean error mapping — and nothing
else.  The container ships no aiohttp/uvicorn, and pulling a framework in
for this would also drag its import cost onto the numpy-free request path
the service is built to protect, so the ~200 lines live here instead.

Connections are single-request (``Connection: close``): the service's
clients are polling tools and tests, not high-fan-in browsers, and closing
per response keeps the state machine trivial.  Bodies are capped at 1 MiB —
every legitimate request body is a small JSON document.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.obs.metrics import REGISTRY

#: Upper bound on request-body size (bytes); JSON submissions are tiny.
MAX_BODY_BYTES = 1 << 20

# Per-route request metrics.  The label is the route *pattern*
# (``/v1/jobs/{id}``), not the raw path — cardinality stays bounded by
# the route table; anything that matched no route shares "(unmatched)".
_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by route pattern, method and status.",
    labelnames=("route", "method", "status"),
)
_HTTP_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds",
    "Time from request parse to response head, by route pattern.",
    labelnames=("route",),
)

#: Seconds a connection may take to deliver a complete request before it
#: is dropped — otherwise an idle peer pins its handler task and fd
#: forever on a long-running serve process.
REQUEST_READ_TIMEOUT = 30.0

#: Reason phrases for the status codes the service actually emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class HTTPError(Exception):
    """An error with a well-defined HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> Any:
        """The request body parsed as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as error:
            raise HTTPError(400, f"request body is not valid JSON: {error}")

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """A complete (non-streaming) HTTP response."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()
        return cls(status=status, body=body, headers=dict(headers or {}))

    @classmethod
    def empty(cls, status: int, headers: Optional[Dict[str, str]] = None) -> "Response":
        return cls(status=status, body=b"", headers=dict(headers or {}))


@dataclass
class StreamingResponse:
    """A response whose body is produced incrementally (NDJSON events).

    ``chunks`` yields text lines; each is flushed as soon as it is
    available and the connection closes when the iterator ends, so plain
    ``Connection: close`` framing is enough — no chunked encoding needed.
    """

    chunks: AsyncIterator[str]
    status: int = 200
    content_type: str = "application/x-ndjson"


#: A handler consumes the request plus captured path params.
Handler = Callable[..., Awaitable[Any]]

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)(:path)?\}")


class Router:
    """Maps ``(method, /path/{param}/...)`` patterns to async handlers.

    ``{param}`` captures one path segment; ``{param:path}`` captures
    greedily across slashes (scenario names like ``churn/fast`` are
    themselves slashed).
    """

    def __init__(self) -> None:
        self._routes: List[Tuple[str, str, re.Pattern, Handler]] = []

    def route(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        def capture(match: re.Match) -> str:
            name, greedy = match.group(1), match.group(2)
            return f"(?P<{name}>.+)" if greedy else f"(?P<{name}>[^/]+)"

        regex = re.compile("^" + _PARAM_RE.sub(capture, pattern) + "$")

        def decorate(handler: Handler) -> Handler:
            self._routes.append((method.upper(), pattern, regex, handler))
            return handler

        return decorate

    def dispatch(
        self, request: Request
    ) -> Tuple[Handler, Dict[str, str], str]:
        """The handler, path params and route pattern for ``request``.

        The pattern comes back so the server can label request metrics by
        route instead of raw path.  Unknown paths/methods raise 404/405.
        """
        path_matched = False
        for method, pattern, regex, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method == request.method:
                params = {k: unquote(v) for k, v in match.groupdict().items()}
                return handler, params, pattern
        if path_matched:
            raise HTTPError(405, f"method {request.method} not allowed here")
        raise HTTPError(404, f"no such endpoint: {request.path}")


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; ``None`` on a cleanly closed socket."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise HTTPError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HTTPError(400, "request head too large")

    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            num_bytes = int(length)
        except ValueError:
            raise HTTPError(400, f"bad Content-Length: {length!r}")
        if num_bytes > MAX_BODY_BYTES:
            raise HTTPError(400, "request body too large")
        body = await reader.readexactly(num_bytes)

    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, extra: Dict[str, str], length: Optional[int]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    if length != 0:
        lines.append(f"Content-Type: {content_type}")
    lines.extend(f"{name}: {value}" for name, value in sorted(extra.items()))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class HTTPServer:
    """Serves a :class:`Router` over asyncio streams."""

    def __init__(self, router: Router) -> None:
        self.router = router
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        route_label = "(unmatched)"
        request = None
        started = time.monotonic()
        try:
            try:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader), timeout=REQUEST_READ_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    return
                if request is None:
                    return
                handler, params, route_label = self.router.dispatch(request)
                result = await handler(request, **params)
            except HTTPError as error:
                result = Response.json(
                    {"error": error.message}, status=error.status
                )
            except Exception as error:  # noqa: BLE001 - boundary of the server
                result = Response.json(
                    {"error": f"{type(error).__name__}: {error}"}, status=500
                )

            if not isinstance(result, (Response, StreamingResponse)):
                result = Response.json(result)
            _HTTP_REQUESTS.labels(
                route=route_label,
                # request stays None when the head itself was malformed.
                method=request.method if request is not None else "(invalid)",
                status=str(result.status),
            ).inc()
            _HTTP_SECONDS.labels(route=route_label).observe(
                time.monotonic() - started
            )

            if isinstance(result, StreamingResponse):
                writer.write(_head(result.status, result.content_type, {}, None))
                await writer.drain()
                async for chunk in result.chunks:
                    writer.write(chunk.encode())
                    await writer.drain()
            else:
                response = result
                writer.write(
                    _head(
                        response.status,
                        response.content_type,
                        response.headers,
                        len(response.body),
                    )
                )
                writer.write(response.body)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
