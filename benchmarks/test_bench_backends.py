"""Ablation: execution backends on the mc-scaling throughput workload.

The same Monte-Carlo estimate computed by both registered backends; the
pytest-benchmark wall times are the raw form of what `python -m repro
bench` reports (speed-up of the vectorized batch kernel over the
event-driven reference simulator).
"""

import pytest

from repro.core.parameters import paper_parameters
from repro.core.policies import LBP1
from repro.montecarlo.parallel import run_monte_carlo_auto

WORKLOAD = (100, 60)


@pytest.mark.benchmark(group="backends")
@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_backend_throughput(benchmark, bench_once, backend):
    estimate = bench_once(
        benchmark,
        run_monte_carlo_auto,
        paper_parameters(),
        LBP1(0.35),
        WORKLOAD,
        500,
        seed=111,
        backend=backend,
    )
    assert estimate.num_realisations == 500
    assert estimate.mean_completion_time == pytest.approx(115.3, rel=0.08)
