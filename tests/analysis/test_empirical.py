"""Tests for empirical density estimation."""

import numpy as np
import pytest

from repro.analysis.empirical import EmpiricalDensity, empirical_density, histogram_pdf


class TestEmpiricalDensity:
    def test_integral_close_to_one(self, rng):
        density = empirical_density(rng.exponential(1.0, size=5000), bins=40)
        assert density.integral() == pytest.approx(1.0, rel=1e-6)

    def test_bin_structure(self, rng):
        density = empirical_density(rng.exponential(1.0, size=100), bins=10)
        assert len(density.bin_centers) == 10
        assert len(density.bin_widths) == 10
        assert len(density.bin_edges) == 11
        assert density.n_samples == 100

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDensity(bin_edges=np.array([0.0, 1.0]), density=np.array([1.0, 2.0]),
                             n_samples=2)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            empirical_density([])

    def test_non_finite_samples_rejected(self):
        with pytest.raises(ValueError):
            empirical_density([1.0, float("nan")])

    def test_evaluate_inside_and_outside_support(self, rng):
        density = empirical_density(rng.uniform(0, 1, size=1000), bins=10)
        inside = density.evaluate([0.5])
        outside = density.evaluate([5.0, -1.0])
        assert inside[0] > 0
        assert np.all(outside == 0.0)

    def test_mean_of_uniform_sample(self, rng):
        density = empirical_density(rng.uniform(0, 2, size=20000), bins=50)
        assert density.mean() == pytest.approx(1.0, abs=0.05)

    def test_histogram_pdf_helper(self, rng):
        centers, values = histogram_pdf(rng.exponential(1.0, size=500), bins=20)
        assert len(centers) == len(values) == 20

    def test_exponential_shape_decreasing(self, rng):
        """For exponential data the estimated density is (roughly) decreasing."""
        density = empirical_density(rng.exponential(1.0, size=50_000), bins=15)
        values = density.density
        assert values[0] > values[5] > values[-1]
