"""The :class:`DistributedSystem` façade: one simulated realisation.

This module wires nodes, failure processes, backup agents and the network
together and executes one realisation of the workload under a given
load-balancing policy.  It is the Monte-Carlo counterpart of the paper's
wireless-LAN experiments: the quantity of interest is the *overall completion
time*, the instant the last task in the system (queued, in service or in
transit) finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.backup import BackupAgent
from repro.cluster.failure import FailureRecoveryProcess
from repro.cluster.network import Network, TransferRecord
from repro.cluster.node import ComputeElement
from repro.cluster.task import Task
from repro.cluster.trace import SystemTrace, TraceEvent
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.sim.distributions import Distribution
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams, SeedLike


class IncompleteSimulationError(RuntimeError):
    """Raised when the workload did not finish before the simulation horizon."""


@dataclass
class SimulationResult:
    """Outcome of one simulated realisation."""

    completion_time: float
    policy_name: str
    workload: Tuple[int, ...]
    total_tasks: int
    tasks_completed_per_node: Tuple[int, ...]
    failures_per_node: Tuple[int, ...]
    recoveries_per_node: Tuple[int, ...]
    busy_time_per_node: Tuple[float, ...]
    initial_transfers: List[Transfer] = field(default_factory=list)
    transfer_records: List[TransferRecord] = field(default_factory=list)
    trace: Optional[SystemTrace] = None

    @property
    def total_completed(self) -> int:
        """Total number of tasks completed across all nodes."""
        return int(sum(self.tasks_completed_per_node))

    @property
    def total_failures(self) -> int:
        """Total number of failure events observed."""
        return int(sum(self.failures_per_node))

    @property
    def total_transferred(self) -> int:
        """Total number of tasks that crossed the network."""
        return int(sum(record.num_tasks for record in self.transfer_records))

    def utilisation(self, node: int) -> float:
        """Fraction of the makespan node ``node`` spent processing tasks."""
        if self.completion_time == 0.0:
            return 0.0
        return self.busy_time_per_node[node] / self.completion_time


class DistributedSystem:
    """A simulated distributed computing system executing one workload.

    Parameters
    ----------
    params:
        Stochastic system parameters.
    policy:
        The load-balancing policy to apply.
    workload:
        Initial task counts per node (a :class:`~repro.cluster.workload.Workload`
        or a plain sequence of integers).
    seed:
        Root seed; alternatively pass a pre-built ``streams`` collection.
    streams:
        A :class:`~repro.sim.rng.RandomStreams` instance (overrides ``seed``).
    preemption:
        Failure preemption semantics of the nodes (``"resume"``/``"restart"``).
    record_trace:
        Record queue-length trajectories and discrete events (Fig. 4).
    size_distribution:
        Optional distribution of abstract task sizes.
    """

    def __init__(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        seed: SeedLike = None,
        streams: Optional[RandomStreams] = None,
        preemption: str = "resume",
        record_trace: bool = False,
        size_distribution: Optional[Distribution] = None,
    ) -> None:
        self.params = params
        self.policy = policy
        self.workload = workload if isinstance(workload, Workload) else Workload(tuple(workload))
        if self.workload.num_nodes != params.num_nodes:
            raise ValueError(
                f"workload spans {self.workload.num_nodes} nodes but the system "
                f"has {params.num_nodes}"
            )
        self.streams = streams if streams is not None else RandomStreams(seed)

        self.env = Environment()
        self.trace = SystemTrace(params.num_nodes) if record_trace else None

        self._outstanding = self.workload.total
        self._completion_event = self.env.event()
        if self._outstanding == 0:
            self._completion_event.succeed(0.0)

        # -- nodes ---------------------------------------------------------
        self.nodes: List[ComputeElement] = []
        for index in range(params.num_nodes):
            node = ComputeElement(
                env=self.env,
                index=index,
                params=params.node(index),
                rng=self.streams.stream(f"node-{index}.service"),
                preemption=preemption,
                on_task_completed=self._on_task_completed,
                on_queue_change=self._on_queue_change,
            )
            self.nodes.append(node)

        # -- network ---------------------------------------------------------
        self.network = Network(
            env=self.env,
            params=params,
            rng=self.streams.stream("network.delay"),
            deliver=self._deliver,
            on_transfer_started=self._on_transfer_started,
            on_transfer_arrived=self._on_transfer_arrived,
        )

        # -- backup agents and failure processes ------------------------------
        self.backups: List[BackupAgent] = [
            BackupAgent(node, self.network, params) for node in self.nodes
        ]
        self.failure_processes: List[FailureRecoveryProcess] = [
            FailureRecoveryProcess(
                env=self.env,
                node=node,
                rng=self.streams.stream(f"node-{index}.failure"),
                on_failure=self._on_failure,
                on_recovery=self._on_recovery,
            )
            for index, node in enumerate(self.nodes)
        ]

        # -- initial workload and the policy's t = 0 action ---------------------
        materialised = self.workload.materialise(
            rng=self.streams.stream("workload.sizes"),
            size_distribution=size_distribution,
        )
        for index, node in enumerate(self.nodes):
            node.assign_initial(materialised[index])

        self.initial_transfers = self._execute_initial_transfers()

    # -- set-up helpers ---------------------------------------------------------

    def _execute_initial_transfers(self) -> List[Transfer]:
        requested = self.policy.initial_transfers(tuple(self.workload), self.params)
        executed: List[Transfer] = []
        for transfer in requested:
            if transfer.is_empty:
                continue
            source_node = self.nodes[transfer.source]
            batch = source_node.take_tasks(transfer.num_tasks)
            if not batch:
                continue
            self.network.transfer(
                transfer.source, transfer.destination, batch, reason="initial"
            )
            executed.append(
                Transfer(transfer.source, transfer.destination, len(batch))
            )
        return executed

    # -- event plumbing -----------------------------------------------------------

    def _deliver(self, destination: int, tasks: List[Task]) -> None:
        self.nodes[destination].receive(tasks)

    def _on_task_completed(self, node: ComputeElement, task: Task) -> None:
        self._outstanding -= 1
        if self.trace is not None:
            self.trace.record_event(
                TraceEvent(self.env.now, "task_completed", node=node.index)
            )
        if self._outstanding == 0 and not self._completion_event.triggered:
            self._completion_event.succeed(self.env.now)
            if self.trace is not None:
                self.trace.record_event(TraceEvent(self.env.now, "completion"))

    def _on_queue_change(self, node: ComputeElement) -> None:
        if self.trace is not None:
            self.trace.record_queue(node.index, self.env.now, node.queue_length)

    def _on_failure(self, node: ComputeElement, time: float) -> None:
        if self.trace is not None:
            self.trace.record_event(TraceEvent(time, "failure", node=node.index))
        queue_sizes = self.queue_sizes()
        self.backups[node.index].handle_failure(self.policy, queue_sizes, time)

    def _on_recovery(self, node: ComputeElement, time: float) -> None:
        if self.trace is not None:
            self.trace.record_event(TraceEvent(time, "recovery", node=node.index))
        requested = self.policy.on_recovery(
            node.index, self.queue_sizes(), self.params, time=time
        )
        for transfer in requested:
            batch = self.nodes[transfer.source].take_tasks(transfer.num_tasks)
            if batch:
                self.network.transfer(
                    transfer.source, transfer.destination, batch, reason="recovery"
                )

    def _on_transfer_started(self, record: TransferRecord) -> None:
        if self.trace is not None:
            self.trace.record_event(
                TraceEvent(
                    record.started_at,
                    "transfer_started",
                    node=record.source,
                    detail=f"{record.num_tasks} tasks to node {record.destination}",
                )
            )

    def _on_transfer_arrived(self, record: TransferRecord) -> None:
        if self.trace is not None:
            self.trace.record_event(
                TraceEvent(
                    record.arrived_at,
                    "transfer_arrived",
                    node=record.destination,
                    detail=f"{record.num_tasks} tasks from node {record.source}",
                )
            )

    # -- observation --------------------------------------------------------------

    def queue_sizes(self) -> Tuple[int, ...]:
        """Current queue length (waiting + in service) of every node."""
        return tuple(node.queue_length for node in self.nodes)

    @property
    def tasks_outstanding(self) -> int:
        """Tasks not yet completed (queued, in service or in transit)."""
        return self._outstanding

    # -- execution -----------------------------------------------------------------

    def run(self, horizon: Optional[float] = None) -> SimulationResult:
        """Run until the workload completes and return the realisation summary.

        Parameters
        ----------
        horizon:
            Optional wall-clock bound on simulated time.  If the workload has
            not completed by then an :class:`IncompleteSimulationError` is
            raised (this guards against parameterisations where completion is
            impossible, e.g. a permanently failed node holding tasks).
        """
        if horizon is not None:
            timeout = self.env.timeout(horizon)
            self.env.run(until=self.env.any_of([self._completion_event, timeout]))
            if not self._completion_event.triggered:
                raise IncompleteSimulationError(
                    f"workload incomplete after horizon={horizon} "
                    f"({self._outstanding} tasks outstanding)"
                )
            completion_time = float(self._completion_event.value)
        else:
            completion_time = float(self.env.run(until=self._completion_event))

        return SimulationResult(
            completion_time=completion_time,
            policy_name=self.policy.name,
            workload=tuple(self.workload),
            total_tasks=self.workload.total,
            tasks_completed_per_node=tuple(n.tasks_completed for n in self.nodes),
            failures_per_node=tuple(n.failures for n in self.nodes),
            recoveries_per_node=tuple(n.recoveries for n in self.nodes),
            busy_time_per_node=tuple(n.busy_time for n in self.nodes),
            initial_transfers=list(self.initial_transfers),
            transfer_records=list(self.network.records),
            trace=self.trace,
        )


def simulate_once(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    seed: SeedLike = None,
    **kwargs,
) -> SimulationResult:
    """Build a :class:`DistributedSystem` and run a single realisation."""
    horizon = kwargs.pop("horizon", None)
    system = DistributedSystem(params, policy, workload, seed=seed, **kwargs)
    return system.run(horizon=horizon)
