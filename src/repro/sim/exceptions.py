"""Exception types used by the simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no future events remain."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a target event.

    The ``value`` attribute carries the value of the event that triggered the
    stop, which becomes the return value of ``run``.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the process was interrupted.  The
        cluster model uses this to signal node failures to the service
        process of a compute element.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Interrupt(cause={self.cause!r})"
