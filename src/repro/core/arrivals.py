"""Dynamic load balancing with external workload arrivals (paper §5 outlook).

The conclusion of the paper sketches how LBP-1/LBP-2 extend to systems where
"new external workloads arrive regularly ... at random instants": simply
execute a balancing episode at every external arrival.  This module
implements that dynamic variant as a simulation model:

* jobs (batches of tasks) arrive according to a Poisson process and are
  assigned to a home node (uniformly or by a user-supplied rule);
* at every arrival the policy's :meth:`initial_transfers` is re-run on the
  *current* queue lengths, and the resulting transfers are executed;
* failure-time behaviour is inherited unchanged from the policy (so a
  dynamic LBP-2 still compensates at every failure instant);
* the reported metrics are throughput and mean job sojourn time over a
  finite horizon, the natural analogues of the overall completion time for
  an open system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.backup import BackupAgent
from repro.cluster.failure import FailureRecoveryProcess
from repro.cluster.network import Network
from repro.cluster.node import ComputeElement
from repro.cluster.task import Task
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.sim.distributions import Exponential
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams, SeedLike

__all__ = ["ArrivalProcessConfig", "DynamicSystem", "DynamicRunResult"]


@dataclass(frozen=True)
class ArrivalProcessConfig:
    """Configuration of the external arrival stream."""

    rate: float
    mean_batch_size: float = 10.0
    assignment: str = "uniform"  # or "fastest", "slowest"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate!r}")
        if self.mean_batch_size < 1:
            raise ValueError("mean_batch_size must be at least 1")
        if self.assignment not in ("uniform", "fastest", "slowest"):
            raise ValueError(f"unknown assignment rule {self.assignment!r}")


@dataclass
class DynamicRunResult:
    """Metrics of one dynamic (open-system) run."""

    horizon: float
    jobs_arrived: int
    tasks_arrived: int
    tasks_completed: int
    mean_sojourn_time: float
    completed_sojourn_times: np.ndarray
    balancing_episodes: int
    failures_per_node: Tuple[int, ...]
    queue_lengths_at_end: Tuple[int, ...]

    @property
    def throughput(self) -> float:
        """Tasks completed per unit time over the horizon."""
        if self.horizon == 0:
            return 0.0
        return self.tasks_completed / self.horizon


class DynamicSystem:
    """An open distributed system with Poisson job arrivals and re-balancing.

    Parameters
    ----------
    params:
        System parameters (node speeds, failure/recovery rates, delays).
    policy:
        Load-balancing policy; its initial-transfer rule is re-run at every
        job arrival, and its failure-time rule at every failure instant.
    arrivals:
        Arrival-stream configuration.
    seed:
        Root seed of the realisation.
    """

    def __init__(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        arrivals: ArrivalProcessConfig,
        seed: SeedLike = None,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.params = params
        self.policy = policy
        self.arrivals = arrivals
        self.streams = streams if streams is not None else RandomStreams(seed)
        self.env = Environment()

        self._task_counter = 0
        self._arrival_times: Dict[int, float] = {}
        self._sojourn_times: List[float] = []
        self.jobs_arrived = 0
        self.tasks_arrived = 0
        self.balancing_episodes = 0

        self.nodes: List[ComputeElement] = [
            ComputeElement(
                env=self.env,
                index=index,
                params=params.node(index),
                rng=self.streams.stream(f"dynamic.node-{index}.service"),
                on_task_completed=self._on_task_completed,
            )
            for index in range(params.num_nodes)
        ]
        self.network = Network(
            env=self.env,
            params=params,
            rng=self.streams.stream("dynamic.network"),
            deliver=lambda destination, batch: self.nodes[destination].receive(batch),
        )
        self.backups = [BackupAgent(node, self.network, params) for node in self.nodes]
        self.failure_processes = [
            FailureRecoveryProcess(
                env=self.env,
                node=node,
                rng=self.streams.stream(f"dynamic.node-{index}.failure"),
                on_failure=self._on_failure,
            )
            for index, node in enumerate(self.nodes)
        ]
        self._interarrival = Exponential(arrivals.rate)
        self._arrival_rng = self.streams.stream("dynamic.arrivals")
        self.env.process(self._arrival_loop(), name="external-arrivals")

    # -- plumbing -----------------------------------------------------------------

    def _on_task_completed(self, node: ComputeElement, task: Task) -> None:
        arrived = self._arrival_times.pop(task.task_id, None)
        if arrived is not None:
            self._sojourn_times.append(self.env.now - arrived)

    def _on_failure(self, node: ComputeElement, time: float) -> None:
        queue_sizes = tuple(n.queue_length for n in self.nodes)
        self.backups[node.index].handle_failure(self.policy, queue_sizes, time)

    def _pick_home_node(self) -> int:
        if self.arrivals.assignment == "uniform":
            return int(self._arrival_rng.integers(0, self.params.num_nodes))
        rates = self.params.service_rates
        if self.arrivals.assignment == "fastest":
            return int(np.argmax(rates))
        return int(np.argmin(rates))

    def _arrival_loop(self):
        while True:
            yield self.env.timeout(self._interarrival.sample(self._arrival_rng))
            batch_size = max(
                1, int(self._arrival_rng.poisson(self.arrivals.mean_batch_size))
            )
            home = self._pick_home_node()
            tasks = []
            for _ in range(batch_size):
                task = Task(task_id=self._task_counter, origin=home)
                self._task_counter += 1
                self._arrival_times[task.task_id] = self.env.now
                tasks.append(task)
            self.jobs_arrived += 1
            self.tasks_arrived += batch_size
            # New tasks join the home node's queue exactly like an initial
            # workload assignment would.
            self.nodes[home].assign_initial(tasks)
            self._rebalance()

    def _rebalance(self) -> None:
        queue_sizes = [node.queue_length for node in self.nodes]
        requested = self.policy.initial_transfers(queue_sizes, self.params)
        self.balancing_episodes += 1
        for transfer in requested:
            if transfer.is_empty:
                continue
            batch = self.nodes[transfer.source].take_tasks(transfer.num_tasks)
            if batch:
                self.network.transfer(
                    transfer.source, transfer.destination, batch, reason="arrival-episode"
                )

    # -- execution -------------------------------------------------------------------

    def run(self, horizon: float) -> DynamicRunResult:
        """Run the open system for ``horizon`` simulated seconds."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon!r}")
        self.env.run(until=horizon)
        sojourns = np.asarray(self._sojourn_times, dtype=float)
        return DynamicRunResult(
            horizon=float(horizon),
            jobs_arrived=self.jobs_arrived,
            tasks_arrived=self.tasks_arrived,
            tasks_completed=int(sum(node.tasks_completed for node in self.nodes)),
            mean_sojourn_time=float(sojourns.mean()) if sojourns.size else float("nan"),
            completed_sojourn_times=sojourns,
            balancing_episodes=self.balancing_episodes,
            failures_per_node=tuple(node.failures for node in self.nodes),
            queue_lengths_at_end=tuple(node.queue_length for node in self.nodes),
        )
