"""Baseline policies the paper's policies are compared against.

The introduction of the paper motivates LBP-1/LBP-2 against two implicit
alternatives:

* doing nothing at all (each node processes only its own initial workload),
  and
* the naive action-upon-failure strategy that dumps the *entire* unprocessed
  queue of a failing node onto the network, which performs poorly when
  transfer delays are large ("the transfer of such large load may be
  accompanied by a large, random delay, which may potentially result in idle
  times for the other nodes").

These baselines, plus a gain-free speed-proportional one-shot split, are
implemented here so the benchmark harness can quantify the benefit of the
paper's policies.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy, Transfer


class NoBalancing(LoadBalancingPolicy):
    """Do nothing: every node processes exactly its initial workload."""

    name = "no-balancing"

    def initial_transfers(
        self, workload: Sequence[int], params: SystemParameters
    ) -> List[Transfer]:
        self._validated(workload, params)
        return []


class ProportionalOneShot(LoadBalancingPolicy):
    """One-shot split of the total workload in proportion to service rates.

    Equivalent to LBP-2's initial action with gain 1 but *without* the
    normalised-backlog weighting of eq. (6): the target allocation is
    computed directly and each overloaded node ships its surplus to the
    underloaded nodes.  This is the "divide by processing speed alone"
    strategy the paper's earlier work shows to be suboptimal under random
    delays.
    """

    name = "proportional-one-shot"

    def initial_transfers(
        self, workload: Sequence[int], params: SystemParameters
    ) -> List[Transfer]:
        loads = list(self._validated(workload, params))
        rates = [float(r) for r in params.service_rates]
        rate_sum = sum(rates)
        total = sum(loads)
        targets = [r / rate_sum * total for r in rates]

        surplus = {i: loads[i] - targets[i] for i in range(len(loads))}
        senders = sorted(
            (i for i, s in surplus.items() if s > 0), key=lambda i: -surplus[i]
        )
        receivers = sorted(
            (i for i, s in surplus.items() if s < 0), key=lambda i: surplus[i]
        )

        transfers: List[Transfer] = []
        for sender in senders:
            available = int(round(surplus[sender]))
            available = min(available, loads[sender])
            for receiver in receivers:
                if available <= 0:
                    break
                deficit = int(round(-surplus[receiver]))
                if deficit <= 0:
                    continue
                num = min(available, deficit)
                if num > 0:
                    transfers.append(Transfer(sender, receiver, num))
                    surplus[receiver] += num
                    available -= num
                    surplus[sender] -= num
        return transfers


class SendAllOnFailure(LoadBalancingPolicy):
    """Naive reactive strategy: ship the whole queue of a failing node away.

    No initial balancing is performed.  When node ``j`` fails, its entire
    unprocessed queue is split among the other nodes in proportion to their
    service rates and put on the network immediately.  With non-negligible
    transfer delays this floods the channel exactly as the paper's
    introduction warns.
    """

    name = "send-all-on-failure"

    def initial_transfers(
        self, workload: Sequence[int], params: SystemParameters
    ) -> List[Transfer]:
        self._validated(workload, params)
        return []

    def on_failure(
        self,
        failed_node: int,
        queue_sizes: Sequence[int],
        params: SystemParameters,
        time: float = 0.0,
    ) -> List[Transfer]:
        available = int(queue_sizes[failed_node])
        if available <= 0:
            return []
        rates = [float(r) for r in params.service_rates]
        others = [i for i in range(params.num_nodes) if i != failed_node]
        other_rate_sum = sum(rates[i] for i in others)
        weights = [rates[i] / other_rate_sum for i in others]

        transfers: List[Transfer] = []
        remaining = available
        for receiver, weight in zip(others, weights):
            num = int(round(weight * available))
            num = min(num, remaining)
            if num > 0:
                transfers.append(Transfer(failed_node, receiver, num))
                remaining -= num
        # Round-off remainder goes to the fastest other node.
        if remaining > 0 and others:
            fastest = max(others, key=lambda i: rates[i])
            transfers.append(Transfer(failed_node, fastest, remaining))
        return transfers
