"""Per-node backup agents.

Section 3 of the paper describes each computing element as carrying a
*backup system* "that can only send or receive tasks": it saves the context
of the running application so that a recovered node can resume, and — under
LBP-2 — it is the component that executes the compensation transfer at the
node's failure instants (the node itself is down at that moment, so the
action must come from somewhere that survives the failure).

:class:`BackupAgent` mirrors that architecture element.  It holds a reference
to its node, listens for failure notifications from the system, asks the
policy what to send, removes the tasks from the (frozen) queue of the failed
node and hands them to the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster.network import Network
from repro.cluster.node import ComputeElement
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy, Transfer


@dataclass
class BackupActionRecord:
    """One compensation action performed by a backup agent."""

    time: float
    failed_node: int
    transfers: List[Transfer] = field(default_factory=list)
    tasks_sent: int = 0


class BackupAgent:
    """Executes a policy's failure-time transfers on behalf of a failed node."""

    def __init__(
        self,
        node: ComputeElement,
        network: Network,
        params: SystemParameters,
    ) -> None:
        self.node = node
        self.network = network
        self.params = params
        self.actions: List[BackupActionRecord] = []

    @property
    def total_tasks_sent(self) -> int:
        """Total tasks this agent has shipped at failure instants."""
        return sum(action.tasks_sent for action in self.actions)

    def handle_failure(
        self,
        policy: LoadBalancingPolicy,
        queue_sizes: Sequence[int],
        time: float,
    ) -> BackupActionRecord:
        """Consult ``policy`` and execute its failure-time transfers.

        The requested transfer sizes are capped by the number of *waiting*
        tasks still held by the failed node (the task whose context the
        backup saved stays put so the node can resume it on recovery).
        """
        requested = policy.on_failure(
            self.node.index, queue_sizes, self.params, time=time
        )
        record = BackupActionRecord(time=time, failed_node=self.node.index)

        for transfer in requested:
            if transfer.source != self.node.index:
                raise ValueError(
                    "a backup agent can only ship tasks away from its own node "
                    f"(policy requested {transfer.source} -> {transfer.destination})"
                )
            if transfer.is_empty:
                continue
            batch = self.node.take_tasks(transfer.num_tasks)
            if not batch:
                break
            self.network.transfer(
                self.node.index,
                transfer.destination,
                batch,
                reason="failure-compensation",
            )
            record.transfers.append(
                Transfer(transfer.source, transfer.destination, len(batch))
            )
            record.tasks_sent += len(batch)

        self.actions.append(record)
        return record
