"""The binary wire-frame codec: round-trip identity and defensive decode.

The frame format carries every block result on the wire (worker board)
and on disk (ShardStore v2 segments), so the gates here are exactness —
``decode(encode(x)) == x`` including bit-identical floats — and that no
malformed input ever escapes as anything but :class:`FrameError`.
"""

from __future__ import annotations

import json
import math
import struct

import pytest

import repro.distributed.frames as frames
from repro.distributed.frames import (
    FLAG_F8_P7Z,
    FLAG_TREE_ZLIB,
    FRAME_MAGIC,
    FRAME_VERSION,
    MIN_F8_LEN,
    MIN_U8_LEN,
    FrameError,
    decode_frame,
    encode_frame,
    is_frame,
)


def _flags(frame: bytes) -> int:
    return frame[5]


def _block_payload(samples: int = 250, blocks: int = 2) -> dict:
    import numpy as np

    rng = np.random.default_rng(99)
    return {
        "results": [
            {
                "id": f"it-{i}",
                "shard": i,
                "blocks": [
                    {
                        "index": b,
                        "completion_times": [
                            float(t) for t in rng.normal(115.8, 38.6, samples)
                        ],
                        "stats": {"count": samples, "mean": 115.8},
                    }
                    for b in range(blocks)
                ],
            }
            for i in range(3)
        ]
    }


class TestRoundTrip:
    def test_block_result_payload_is_identity(self):
        payload = _block_payload()
        assert decode_frame(encode_frame(payload)) == payload

    def test_floats_round_trip_bit_identically(self):
        """Every representable double survives, including the awkward
        ones (denormals, -0.0, huge exponents, float precision edges)."""
        values = [
            0.0, -0.0, 1.0, -1.0, 1e308, -1e308, 5e-324, 2.2250738585072014e-308,
            math.pi, 1 / 3, 0.1, 115.82342196969803, float("inf"), -float("inf"),
        ]
        out = decode_frame(encode_frame({"v": values}))["v"]
        assert [struct.pack("<d", v) for v in out] == [
            struct.pack("<d", v) for v in values
        ]

    def test_short_lists_stay_inline(self):
        payload = {"few": [1.0, 2.0], "ints": [1, 2, 3]}
        frame = encode_frame(payload)
        # No pools: counts in the prefix are zero.
        _, _, _, _, f8_count, u8_count = frames._PREFIX.unpack_from(frame, 0)
        assert (f8_count, u8_count) == (0, 0)
        assert decode_frame(frame) == payload

    def test_root_list_payload_is_hoisted_and_restored(self):
        payload = [float(i) for i in range(MIN_F8_LEN)]
        assert decode_frame(encode_frame(payload)) == payload

    def test_int_pool_round_trip(self):
        payload = {"seeds": list(range(MIN_U8_LEN)), "big": [(1 << 64) - 1] * 20}
        assert decode_frame(encode_frame(payload)) == payload

    def test_out_of_range_ints_stay_in_the_tree(self):
        payload = {"neg": [-1] * 20, "huge": [1 << 64] * 20}
        frame = encode_frame(payload)
        _, _, _, _, _, u8_count = frames._PREFIX.unpack_from(frame, 0)
        assert u8_count == 0
        assert decode_frame(frame) == payload

    def test_mixed_type_lists_stay_in_the_tree(self):
        payload = {"mixed": [1.0, 2.0, 3.0, "x"], "bools": [True] * 20}
        assert decode_frame(encode_frame(payload)) == payload

    def test_nested_hoists_under_dicts_and_lists(self):
        payload = {
            "a": [{"deep": [1.5] * 10}, {"deep": [2.5] * 10}],
            "b": {"c": {"d": [3.5] * 10}},
        }
        assert decode_frame(encode_frame(payload)) == payload

    def test_scalars_and_null_round_trip(self):
        for payload in (None, True, 0, 1.5, "text", {}, []):
            assert decode_frame(encode_frame(payload)) == payload

    def test_tuple_encodes_as_list(self):
        assert decode_frame(encode_frame({"t": (1.0, 2.0, 3.0, 4.0)})) == {
            "t": [1.0, 2.0, 3.0, 4.0]
        }


class TestCompressionPaths:
    def test_small_pool_skips_byte_plane_split(self):
        frame = encode_frame({"v": [1.5] * MIN_F8_LEN})
        assert not _flags(frame) & FLAG_F8_P7Z

    def test_large_pool_takes_byte_plane_split(self):
        payload = _block_payload()
        frame = encode_frame(payload)
        assert _flags(frame) & FLAG_F8_P7Z
        assert decode_frame(frame) == payload

    def test_large_tree_is_deflated(self):
        payload = {"items": [{"name": f"work-item-{i}", "shard": i}
                             for i in range(400)]}
        frame = encode_frame(payload)
        assert _flags(frame) & FLAG_TREE_ZLIB
        assert decode_frame(frame) == payload

    def test_incompressible_pool_falls_back_to_raw(self, monkeypatch):
        """If the plane split does not pay, the raw pool is kept."""
        monkeypatch.setattr(frames, "P7Z_MIN_COUNT", 10**9)
        payload = _block_payload()
        frame = encode_frame(payload)
        assert not _flags(frame) & FLAG_F8_P7Z
        assert decode_frame(frame) == payload

    def test_stdlib_fallback_matches_numpy_bytes_and_decode(self, monkeypatch):
        payload = _block_payload()
        with_numpy = encode_frame(payload)
        monkeypatch.setattr(frames, "_np", None)
        without_numpy = encode_frame(payload)
        assert with_numpy == without_numpy
        assert decode_frame(with_numpy) == payload
        monkeypatch.setattr(frames, "_np", False)  # re-probe for other tests

    def test_frames_beat_the_json_wire_rendering(self):
        payload = _block_payload()
        json_wire = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()
        assert len(json_wire) / len(encode_frame(payload)) >= 3.0


class TestSniff:
    def test_is_frame_accepts_real_frames(self):
        assert is_frame(encode_frame({"a": 1}))
        assert is_frame(memoryview(encode_frame({"a": 1})))

    def test_is_frame_rejects_other_bytes_and_types(self):
        assert not is_frame(b'{"a": 1}')
        assert not is_frame(b"RP")
        assert not is_frame("RPRF text")
        assert not is_frame(None)


class TestDefensiveDecode:
    def test_bad_magic(self):
        frame = bytearray(encode_frame({"a": 1}))
        frame[:4] = b"NOPE"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(encode_frame({"a": 1}))
        frame[4] = FRAME_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(frame))

    def test_unknown_flags(self):
        frame = bytearray(encode_frame({"a": 1}))
        frame[5] |= 0x80
        with pytest.raises(FrameError, match="flags"):
            decode_frame(bytes(frame))

    def test_shorter_than_prefix(self):
        with pytest.raises(FrameError, match="prefix"):
            decode_frame(FRAME_MAGIC)

    @pytest.mark.parametrize("keep", [0.3, 0.6, 0.9, 0.99])
    def test_truncation_anywhere_raises_cleanly(self, keep):
        frame = encode_frame(_block_payload())
        with pytest.raises(FrameError):
            decode_frame(frame[: int(len(frame) * keep)])

    def test_every_prefix_length_is_frameerror_or_decodes(self):
        """Sweeping all truncations of a small frame: nothing escapes as
        struct/zlib/KeyError."""
        frame = encode_frame({"v": [1.5] * MIN_F8_LEN, "q": list(range(MIN_U8_LEN))})
        for length in range(len(frame)):
            with pytest.raises(FrameError):
                decode_frame(frame[:length])

    def test_tree_that_is_not_a_wrapper(self):
        tree = json.dumps({"x": 1}).encode()
        frame = frames._PREFIX.pack(FRAME_MAGIC, FRAME_VERSION, 0, len(tree), 0, 0) + tree
        with pytest.raises(FrameError, match="wrapper"):
            decode_frame(frame)

    def test_tree_that_is_not_json(self):
        tree = b"not json"
        frame = frames._PREFIX.pack(FRAME_MAGIC, FRAME_VERSION, 0, len(tree), 0, 0) + tree
        with pytest.raises(FrameError):
            decode_frame(frame)

    def _hand_frame(self, wrapper: dict, f8_count: int, pool: bytes) -> bytes:
        tree = json.dumps(wrapper, separators=(",", ":")).encode()
        return (
            frames._PREFIX.pack(FRAME_MAGIC, FRAME_VERSION, 0, len(tree), f8_count, 0)
            + tree
            + pool
        )

    def test_out_of_range_pool_reference(self):
        pool = struct.pack("<4d", 1.0, 2.0, 3.0, 4.0)
        frame = self._hand_frame({"t": {"v": 0}, "f": [[["v"], 2, 4]]}, 4, pool)
        with pytest.raises(FrameError, match="out of range"):
            decode_frame(frame)

    def test_dangling_reference_path(self):
        pool = struct.pack("<4d", 1.0, 2.0, 3.0, 4.0)
        frame = self._hand_frame({"t": {"v": 0}, "f": [[["missing", 3], 0, 4]]}, 4, pool)
        with pytest.raises(FrameError, match="does not resolve"):
            decode_frame(frame)

    def test_malformed_reference_shape(self):
        pool = struct.pack("<4d", 1.0, 2.0, 3.0, 4.0)
        frame = self._hand_frame({"t": {"v": 0}, "f": [["v", 0]]}, 4, pool)
        with pytest.raises(FrameError, match="reference"):
            decode_frame(frame)

    def test_reference_table_not_a_list(self):
        pool = struct.pack("<4d", 1.0, 2.0, 3.0, 4.0)
        frame = self._hand_frame({"t": {"v": 0}, "f": {"v": 1}}, 4, pool)
        with pytest.raises(FrameError, match="reference table"):
            decode_frame(frame)

    def test_corrupt_top_plane(self):
        frame = bytearray(encode_frame(_block_payload()))
        assert frame[5] & FLAG_F8_P7Z
        frame[-3:] = b"\x00\x00\x00"  # inside the zlib-packed plane
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_decode_does_not_retain_the_source_buffer(self, tmp_path):
        """An mmap-backed decode must release the buffer on return (the
        ShardStore closes the map immediately after)."""
        import mmap

        path = tmp_path / "one.seg"
        payload = _block_payload()
        path.write_bytes(encode_frame(payload))
        with open(path, "rb") as handle:
            with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
                with memoryview(mapped) as view:
                    out = decode_frame(view)
        # Leaving both context managers without BufferError is the test;
        # the decoded payload stays fully usable afterwards.
        assert out == payload
