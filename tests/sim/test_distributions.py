"""Tests for the random-variate distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    HyperExponential,
    Uniform,
)


class TestExponential:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential(-1.0)

    def test_rejects_infinite_rate(self):
        with pytest.raises(ValueError):
            Exponential(float("inf"))

    def test_mean_and_rate_are_inverses(self):
        dist = Exponential(4.0)
        assert dist.mean == pytest.approx(0.25)
        assert dist.rate == pytest.approx(4.0)

    def test_from_mean(self):
        assert Exponential.from_mean(0.5).rate == pytest.approx(2.0)

    def test_from_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Exponential.from_mean(0.0)

    def test_sample_mean_converges(self, rng):
        dist = Exponential(2.0)
        samples = dist.sample_many(rng, 100_000)
        assert samples.mean() == pytest.approx(0.5, rel=0.02)

    def test_samples_are_non_negative(self, rng):
        assert np.all(Exponential(1.0).sample_many(rng, 1000) >= 0)

    def test_single_sample_is_float(self, rng):
        assert isinstance(Exponential(1.0).sample(rng), float)

    def test_memorylessness_statistically(self, rng):
        """P(X > s + t | X > s) ≈ P(X > t) for the exponential law."""
        dist = Exponential(1.0)
        samples = dist.sample_many(rng, 150_000)
        s, t = 0.7, 0.9
        conditional = np.mean(samples[samples > s] > s + t)
        unconditional = np.mean(samples > t)
        assert conditional == pytest.approx(unconditional, abs=0.01)


class TestDeterministic:
    def test_always_returns_value(self, rng):
        dist = Deterministic(3.5)
        assert dist.sample(rng) == 3.5
        assert np.all(dist.sample_many(rng, 10) == 3.5)

    def test_mean_equals_value(self):
        assert Deterministic(2.0).mean == 2.0

    def test_zero_value_has_infinite_rate(self):
        assert Deterministic(0.0).rate == float("inf")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestErlang:
    def test_mean_is_shape_over_rate(self):
        assert Erlang(shape=4, rate_=2.0).mean == pytest.approx(2.0)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            Erlang(shape=0, rate_=1.0)
        with pytest.raises(ValueError):
            Erlang(shape=2, rate_=0.0)

    def test_sample_mean_converges(self, rng):
        dist = Erlang(shape=5, rate_=2.0)
        assert dist.sample_many(rng, 100_000).mean() == pytest.approx(2.5, rel=0.03)

    def test_erlang_variance_below_exponential_with_same_mean(self, rng):
        erlang = Erlang(shape=10, rate_=10.0)   # mean 1
        exponential = Exponential(1.0)          # mean 1
        assert erlang.sample_many(rng, 50_000).var() < exponential.sample_many(
            rng, 50_000
        ).var()


class TestUniform:
    def test_mean(self):
        assert Uniform(1.0, 3.0).mean == pytest.approx(2.0)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 2.0)

    def test_samples_within_bounds(self, rng):
        samples = Uniform(0.5, 1.5).sample_many(rng, 1000)
        assert np.all((samples >= 0.5) & (samples <= 1.5))


class TestHyperExponential:
    def test_mean_is_mixture_of_means(self):
        dist = HyperExponential(rates=(1.0, 2.0), probabilities=(0.5, 0.5))
        assert dist.mean == pytest.approx(0.5 * 1.0 + 0.5 * 0.5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            HyperExponential(rates=(1.0,), probabilities=(0.5, 0.5))

    def test_rejects_probabilities_not_summing_to_one(self):
        with pytest.raises(ValueError):
            HyperExponential(rates=(1.0, 2.0), probabilities=(0.7, 0.5))

    def test_rejects_non_positive_rates(self):
        with pytest.raises(ValueError):
            HyperExponential(rates=(1.0, 0.0), probabilities=(0.5, 0.5))

    def test_sample_mean_converges(self, rng):
        dist = HyperExponential(rates=(1.0, 4.0), probabilities=(0.3, 0.7))
        assert dist.sample_many(rng, 200_000).mean() == pytest.approx(dist.mean, rel=0.03)


class TestEmpirical:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            Empirical([1.0, -0.5])

    def test_mean_matches_sample_mean(self):
        assert Empirical([1.0, 2.0, 3.0]).mean == pytest.approx(2.0)

    def test_resamples_only_observed_values(self, rng):
        dist = Empirical([1.0, 2.0, 4.0])
        draws = dist.sample_many(rng, 500)
        assert set(np.unique(draws)).issubset({1.0, 2.0, 4.0})

    def test_samples_view_is_read_only(self):
        dist = Empirical([1.0, 2.0])
        with pytest.raises(ValueError):
            dist.samples[0] = 10.0


class TestPropertyBased:
    @given(rate=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_exponential_mean_rate_roundtrip(self, rate):
        dist = Exponential(rate)
        assert dist.rate == pytest.approx(1.0 / dist.mean)

    @given(
        rate=st.floats(min_value=0.05, max_value=50.0),
        n=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_samples_always_non_negative(self, rate, n):
        rng = np.random.default_rng(0)
        assert np.all(Exponential(rate).sample_many(rng, n) >= 0.0)

    @given(
        shape=st.integers(min_value=1, max_value=50),
        rate=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_erlang_mean_formula(self, shape, rate):
        assert Erlang(shape, rate).mean == pytest.approx(shape / rate)
