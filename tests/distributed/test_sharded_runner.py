"""End-to-end tests of the sharded runner: the acceptance gates.

* shard-count invariance — identical merged ``SummaryStatistics`` for
  1, 2 and 7 shards at a fixed master seed, on both backends;
* shard-level caching — a resumed run reuses completed blocks (hit
  counts asserted), and growing the ensemble computes only the delta.
"""

import numpy as np
import pytest

from repro.distributed.executors import InlineExecutor, ProcessShardExecutor
from repro.distributed.runner import int_seed, policy_spec_of, run_sharded_spec
from repro.distributed.store import ShardStore
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _spec(**overrides):
    base = ScenarioSpec(
        name="sharded-test",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=20,
        seed=7,
        shards=1,
        shard_block=4,
    )
    return base.with_(**overrides) if overrides else base


class TestShardCountInvariance:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_merged_summary_identical_across_1_2_7_shards(self, backend):
        """The headline guarantee, exact (``==``) on both backends."""
        store = ShardStore()
        summaries = {}
        times = {}
        for shards in (1, 2, 7):
            report = run_sharded_spec(
                _spec(shards=shards, backend=backend),
                executor="inline",
                store=store,
            )
            summaries[shards] = report.estimate.summary
            times[shards] = report.estimate.completion_times
        assert summaries[1] == summaries[2] == summaries[7]
        np.testing.assert_array_equal(times[1], times[2])
        np.testing.assert_array_equal(times[1], times[7])

    def test_executor_choice_does_not_change_results(self):
        inline = run_sharded_spec(
            _spec(shards=3), executor=InlineExecutor(), use_store=False
        )
        with ProcessShardExecutor(2) as pool:
            pooled = run_sharded_spec(_spec(shards=3), executor=pool, use_store=False)
        assert inline.estimate.summary == pooled.estimate.summary
        np.testing.assert_array_equal(
            inline.estimate.completion_times, pooled.estimate.completion_times
        )

    def test_different_seeds_differ(self):
        a = run_sharded_spec(_spec(shards=2), use_store=False)
        b = run_sharded_spec(_spec(shards=2, seed=8), use_store=False)
        assert a.estimate.summary.mean != b.estimate.summary.mean


class TestCrossProcessTelemetry:
    """Trace propagation and the overhead ledger through a real pool."""

    def test_pool_run_stitches_subprocess_spans(self):
        import os

        from repro.obs.trace import Tracer

        tracer = Tracer()
        with tracer.activate():
            with ProcessShardExecutor(2) as pool:
                pool.warm()
                run_sharded_spec(_spec(shards=4), executor=pool, use_store=False)

        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        shard_spans = by_name.get("scheduler.shard", [])
        assert len(shard_spans) == 4
        # Worker spans executed in the pool subprocesses were shipped home
        # and grafted under their shard spans...
        shard_ids = {s.span_id for s in shard_spans}
        items = by_name.get("worker.item", [])
        assert len(items) == 4
        assert all(s.parent_id in shard_ids for s in items)
        assert by_name.get("worker.compute")
        # ...carrying foreign pids (the whole point of stitching).
        pids = {s.attrs.get("pid") for s in items}
        assert pids and os.getpid() not in pids
        # Offset normalization keeps every stitched span inside its
        # parent shard span's interval.
        shard_by_id = {s.span_id: s for s in shard_spans}
        for item in items:
            parent = shard_by_id[item.parent_id]
            assert item.start >= parent.start - 1e-9
            assert item.start + item.duration <= (
                parent.start + parent.duration + 1e-9
            )

    def test_attribution_components_sum_to_wall(self):
        report = run_sharded_spec(
            _spec(shards=4), executor="process", use_store=False
        )
        ledger = report.attribution
        assert set(report.shard_attribution) == {0, 1, 2, 3}
        identity = sum(
            ledger[key]
            for key in (
                "plan_seconds",
                "wire_seconds",
                "deserialize_seconds",
                "compute_seconds",
                "dispatch_seconds",
                "idle_seconds",
                "merge_seconds",
            )
        )
        assert identity == pytest.approx(report.wall_seconds, rel=0.05)
        # The ledger is folded into the flat timings dict as well.
        assert report.timings["wire_seconds"] == ledger["wire_seconds"]


class TestShardLevelCaching:
    def test_second_run_is_pure_cache_read(self):
        store = ShardStore()
        first = run_sharded_spec(_spec(shards=2), store=store)
        assert first.blocks_cached == 0 and first.blocks_total == 5
        assert store.hits == 0 and store.misses == 5

        resumed = run_sharded_spec(_spec(shards=2), store=store)
        assert resumed.blocks_cached == 5
        assert resumed.shards_dispatched == 0
        assert store.hits == 5
        assert resumed.estimate.summary == first.estimate.summary

    def test_blocks_shared_across_shard_counts(self):
        store = ShardStore()
        run_sharded_spec(_spec(shards=7), store=store)
        other = run_sharded_spec(_spec(shards=2), store=store)
        assert other.blocks_cached == other.blocks_total == 5

    def test_growing_the_ensemble_computes_only_the_delta(self):
        store = ShardStore()
        run_sharded_spec(_spec(shards=2, mc_realisations=20), store=store)
        grown = run_sharded_spec(
            _spec(shards=2, mc_realisations=28), store=store
        )
        # 20→28 at block 4: blocks 0–4 are reused, blocks 5–6 are new.
        assert grown.blocks_total == 7
        assert grown.blocks_cached == 5
        assert grown.estimate.summary.n == 28

    def test_prefix_sample_is_preserved_when_growing(self):
        store = ShardStore()
        small = run_sharded_spec(_spec(shards=2, mc_realisations=20), store=store)
        grown = run_sharded_spec(_spec(shards=2, mc_realisations=28), store=store)
        np.testing.assert_array_equal(
            grown.estimate.completion_times[:20], small.estimate.completion_times
        )

    def test_use_store_false_never_touches_disk(self, tmp_path):
        report = run_sharded_spec(_spec(shards=2), use_store=False)
        assert report.blocks_cached == 0
        assert len(ShardStore()) == 0

    def test_refresh_recomputes_and_repairs_the_store(self):
        """``refresh`` ignores stored blocks but overwrites them — the
        repair path a ``--force`` run provides."""
        from repro.distributed.plan import block_key, plan_blocks, shard_plan_key

        store = ShardStore()
        first = run_sharded_spec(_spec(shards=2), store=store)

        # Poison one stored block, then refresh: the bad entry is replaced.
        plan = shard_plan_key(_spec(shards=2))
        block = plan_blocks(20, 4)[0]
        poisoned = dict(store.get(block_key(plan, block)))
        poisoned["completion_times"] = [0.0] * 4
        store.put(block_key(plan, block), poisoned)

        reads_before = store.hits + store.misses  # poison read included
        refreshed = run_sharded_spec(_spec(shards=2), store=store, refresh=True)
        assert refreshed.blocks_cached == 0
        assert store.hits + store.misses == reads_before  # no store reads
        assert refreshed.estimate.summary == first.estimate.summary

        # And the store now serves the repaired blocks again.
        resumed = run_sharded_spec(_spec(shards=2), store=store)
        assert resumed.blocks_cached == 5
        assert resumed.estimate.summary == first.estimate.summary

    def test_interrupted_run_keeps_completed_blocks(self):
        """Blocks persist shard-by-shard, so a failed run resumes."""
        from repro.distributed.executors import InlineExecutor
        from repro.distributed.scheduler import ShardExecutionError

        class ExplodeOnSecondShard(InlineExecutor):
            def __init__(self):
                super().__init__()
                self.completed = 0

            def poll(self, timeout):
                if self.completed >= 1 and self._queue:
                    self._queue.clear()
                    raise ShardExecutionError("injected crash mid-run")
                outcomes = super().poll(timeout)
                self.completed += len(outcomes)
                return outcomes

        store = ShardStore()
        with pytest.raises(ShardExecutionError):
            run_sharded_spec(
                _spec(shards=5), executor=ExplodeOnSecondShard(), store=store
            )
        assert len(store) == 1  # the finished shard's block survived

        resumed = run_sharded_spec(_spec(shards=5), store=store)
        assert resumed.blocks_cached == 1
        assert resumed.blocks_total == 5


class TestHelpers:
    def test_policy_spec_round_trip(self):
        from repro.core.policies.lbp1 import LBP1
        from repro.core.policies.lbp2 import LBP2

        spec = policy_spec_of(LBP1(0.4, sender=0, receiver=1))
        assert spec.kind == "lbp1" and spec.gain == 0.4
        spec = policy_spec_of(LBP2(1.0, compensate=False))
        assert spec.kind == "lbp2" and not spec.compensate

    def test_int_seed_is_deterministic_and_int(self):
        child = np.random.SeedSequence(7).spawn(2)[1]
        assert int_seed(child) == int_seed(np.random.SeedSequence(7).spawn(2)[1])
        assert int_seed(5) == 5
        assert int_seed(None) == 0

    def test_requires_sharded_spec(self):
        with pytest.raises(ValueError, match="shards >= 1"):
            run_sharded_spec(_spec(shards=0), use_store=False)
