"""Plain-text rendering of experiment outputs.

The original paper presents its evaluation as figures and tables; this
reproduction renders the same rows and series as aligned plain text so the
benchmark harness and the examples can print them without a plotting
dependency.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.analysis.tables import Table


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return "nan"
        return float_format.format(float(value))
    return str(value)


def format_table(
    table: Union[Table, Sequence[Mapping[str, Any]]],
    float_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render a :class:`~repro.analysis.tables.Table` (or list of dicts) as text."""
    if isinstance(table, Table):
        columns = table.columns
        rows = table.rows()
        title = title if title is not None else table.title
    else:
        rows = [dict(r) for r in table]
        if not rows:
            return title or ""
        columns = list(rows[0].keys())

    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c, ""), float_format) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(columns))
    ]

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render a figure-style (x, y) series as two aligned text columns."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    table = Table([x_label, y_label], title=title or "")
    for xv, yv in zip(x_arr, y_arr):
        table.add_row({x_label: float(xv), y_label: float(yv)})
    return format_table(table, float_format=float_format)


def format_ascii_curve(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    label: str = "",
) -> str:
    """A very small ASCII rendering of a curve (monotone axis assumed).

    Only intended as a quick visual sanity check in example scripts; the
    numeric series remains the primary output.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size == 0:
        return label
    y_min, y_max = float(y_arr.min()), float(y_arr.max())
    span = y_max - y_min or 1.0
    lines = [label] if label else []
    for xv, yv in zip(x_arr, y_arr):
        bar = int(round((yv - y_min) / span * width))
        lines.append(f"{xv:>10.3f} | {'#' * bar}{' ' * (width - bar)} {yv:.3f}")
    return "\n".join(lines)
