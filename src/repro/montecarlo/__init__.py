"""Monte-Carlo harness: repeated realisations, statistics, parameter sweeps.

The paper validates its analytical model with Monte-Carlo simulation (500
realisations for Table 2, the "MC Simulation" curve of Fig. 3).  This
package provides the corresponding machinery on top of
:mod:`repro.cluster`:

* :mod:`repro.montecarlo.runner` — run N independent realisations of a
  policy/workload pair with per-realisation random streams;
* :mod:`repro.montecarlo.statistics` — summary statistics, confidence
  intervals and empirical CDFs of the realisation results;
* :mod:`repro.montecarlo.sweep` — gain sweeps (Fig. 3), delay sweeps
  (Table 3) and policy comparisons (Tables 1–2);
* :mod:`repro.montecarlo.parallel` — optional process-pool execution.
"""

from repro.montecarlo.runner import MonteCarloEstimate, MonteCarloRunner, run_monte_carlo
from repro.montecarlo.statistics import (
    ExactSum,
    MergeableHistogram,
    QuantileSketch,
    RunningStatistics,
    SummaryStatistics,
    empirical_cdf,
    summarize,
)
from repro.montecarlo.sweep import (
    DelaySweepResult,
    GainSweepResult,
    delay_sweep,
    gain_sweep,
    compare_policies,
)
from repro.montecarlo.parallel import run_monte_carlo_auto, run_monte_carlo_parallel

__all__ = [
    "DelaySweepResult",
    "ExactSum",
    "GainSweepResult",
    "MergeableHistogram",
    "MonteCarloEstimate",
    "MonteCarloRunner",
    "QuantileSketch",
    "RunningStatistics",
    "SummaryStatistics",
    "compare_policies",
    "delay_sweep",
    "empirical_cdf",
    "gain_sweep",
    "run_monte_carlo",
    "run_monte_carlo_auto",
    "run_monte_carlo_parallel",
    "summarize",
]
