"""Command-line entry point: regenerate the paper's evaluation from a shell.

Usage::

    python -m repro                      # quick summary (headline numbers)
    python -m repro fig3                 # regenerate one artefact
    python -m repro all                  # regenerate every figure and table
    python -m repro fig3 --quick         # reduced realisation counts

The heavy lifting lives in :mod:`repro.experiments`; this module only parses
arguments and prints the rendered tables/series.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_table3,
)

#: artefact name -> (full-size invocation, quick invocation)
_ARTEFACTS: Dict[str, Dict[str, Callable[[], object]]] = {
    "fig1": {
        "full": lambda: run_fig1(),
        "quick": lambda: run_fig1(tasks_per_node=500),
    },
    "fig2": {
        "full": lambda: run_fig2(),
        "quick": lambda: run_fig2(probes_per_size=15),
    },
    "fig3": {
        "full": lambda: run_fig3(mc_realisations=200, experiment_realisations=20),
        "quick": lambda: run_fig3(mc_realisations=40, experiment_realisations=5),
    },
    "fig4": {
        "full": lambda: run_fig4(),
        "quick": lambda: run_fig4(),
    },
    "fig5": {
        "full": lambda: run_fig5(with_monte_carlo=True),
        "quick": lambda: run_fig5(),
    },
    "table1": {
        "full": lambda: run_table1(),
        "quick": lambda: run_table1(experiment_realisations=5),
    },
    "table2": {
        "full": lambda: run_table2(mc_realisations=500, experiment_realisations=60),
        "quick": lambda: run_table2(mc_realisations=80, experiment_realisations=10),
    },
    "table3": {
        "full": lambda: run_table3(mc_realisations=300),
        "quick": lambda: run_table3(mc_realisations=80),
    },
}


def _summary() -> str:
    """Headline reproduction numbers, computed analytically (fast)."""
    from repro.core.optimize import optimal_gain_lbp1, optimal_gain_no_failure
    from repro.core.parameters import paper_parameters

    params = paper_parameters()
    failure = optimal_gain_lbp1(params, (100, 60))
    clean = optimal_gain_no_failure(params, (100, 60))
    lines = [
        "repro — Dhakal et al., IPDPS 2006 (load balancing under node failure/recovery)",
        "",
        f"  optimal LBP-1 gain with failures    : K = {failure.optimal_gain:.2f}"
        f"   (paper: 0.35)",
        f"  optimal LBP-1 gain without failures : K = {clean.optimal_gain:.2f}"
        f"   (paper: 0.45)",
        f"  minimum mean completion time        : {failure.optimal_mean:.1f} s"
        f" (paper: ~117 s)",
        "",
        "Regenerate individual artefacts with, e.g.:",
        "  python -m repro fig3",
        "  python -m repro table3 --quick",
        f"Available artefacts: {', '.join(sorted(_ARTEFACTS))}, all",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures and tables of the IPDPS 2006 paper.",
    )
    parser.add_argument(
        "artefact",
        nargs="?",
        choices=sorted(_ARTEFACTS) + ["all"],
        help="which figure/table to regenerate (omit for a quick summary)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced realisation counts (for a fast look)",
    )
    args = parser.parse_args(argv)

    if args.artefact is None:
        print(_summary())
        return 0

    names = sorted(_ARTEFACTS) if args.artefact == "all" else [args.artefact]
    mode = "quick" if args.quick else "full"
    for name in names:
        started = time.perf_counter()
        result = _ARTEFACTS[name][mode]()
        elapsed = time.perf_counter() - started
        print(f"=== {name} ({mode}, {elapsed:.1f} s) ===")
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
