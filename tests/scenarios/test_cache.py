"""Cache round-trip, hit/miss accounting and environment override."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.cache import CACHE_DIR_ENV, ResultCache, ScenarioResult, cache_key
from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec


@pytest.fixture
def spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="cached",
        kind="mc_point",
        system=SystemSpec.paper(),
        workload=(20, 12),
        policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
        mc_realisations=3,
        seed=9,
    )


def make_result(spec: ScenarioSpec) -> ScenarioResult:
    return ScenarioResult(
        name=spec.name,
        kind=spec.kind,
        spec_hash=spec.content_hash,
        scalars={"mean_completion_time": 14.409, "winner": "lbp1", "none": None},
        arrays={
            "completion_times": np.array([9.7, 14.4, 23.9]),
            "grid": np.arange(5, dtype=np.int64),
        },
        rendered="line one\nline two",
        runtime_seconds=1.25,
    )


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        assert cache.get(spec) is None
        assert not cache.contains(spec)
        assert cache.misses == 1

        cache.put(spec, make_result(spec))
        assert cache.contains(spec)
        loaded = cache.get(spec)
        assert loaded is not None
        assert cache.hits == 1

    def test_round_trip_is_bit_identical(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        original = make_result(spec)
        cache.put(spec, original)
        loaded = cache.get(spec)
        assert loaded.identical_to(original)
        assert loaded.from_cache and not original.from_cache
        assert loaded.rendered == original.rendered
        assert loaded.scalars == original.scalars
        np.testing.assert_array_equal(
            loaded.arrays["completion_times"], original.arrays["completion_times"]
        )
        assert loaded.arrays["grid"].dtype == np.int64
        assert loaded.runtime_seconds == original.runtime_seconds

    def test_different_spec_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        assert cache.get(spec.with_(seed=10)) is None

    def test_entry_is_keyed_by_cache_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        key = cache_key(spec)
        assert key != spec.content_hash
        assert (tmp_path / key[:2] / key / "meta.json").is_file()
        # A renamed but otherwise identical spec hits the same entry, and the
        # loaded result carries the requesting spec's name, not the stored one.
        renamed = cache.get(spec.with_(name="renamed"))
        assert renamed is not None
        assert renamed.name == "renamed"


class TestCacheKey:
    def test_key_is_stable(self, spec):
        assert cache_key(spec) == cache_key(spec)

    def test_backend_participates_in_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        vectorized = spec.with_(backend="vectorized")
        assert cache_key(vectorized) != cache_key(spec)
        # A result computed by one kernel is never served for another.
        assert cache.get(vectorized) is None

    def test_package_version_participates_in_key(self, tmp_path, spec, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        import repro.scenarios.cache as cache_module

        monkeypatch.setattr(cache_module, "__version__", "999.0.0")
        assert cache.get(spec) is None

    def test_meta_records_provenance(self, tmp_path, spec):
        import json

        cache = ResultCache(tmp_path)
        entry = cache.put(spec, make_result(spec))
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["backend"] == "reference"
        assert meta["repro_version"]
        assert meta["cache_key"] == cache_key(spec)
        assert meta["spec_hash"] == spec.content_hash


class TestMaintenance:
    def test_len_evict_clear(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(spec, make_result(spec))
        other = spec.with_(seed=11)
        cache.put(other, make_result(other))
        assert len(cache) == 2
        assert cache.evict(spec)
        assert not cache.evict(spec)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_corrupt_meta_reads_as_miss(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        entry = cache.put(spec, make_result(spec))
        (entry / "meta.json").write_text("{ not json")
        assert cache.get(spec) is None

    def test_overwrite_replaces_entry(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        updated = make_result(spec)
        updated.rendered = "updated"
        cache.put(spec, updated)
        assert cache.get(spec).rendered == "updated"


class TestEnvironment:
    def test_env_var_sets_root(self, tmp_path, monkeypatch, spec):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "envcache"
        cache.put(spec, make_result(spec))
        assert ResultCache().get(spec) is not None

    def test_explicit_root_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache(tmp_path / "explicit")
        assert cache.root == tmp_path / "explicit"


class TestMetadataReads:
    """The numpy-free read paths the results service is built on."""

    def test_peek_returns_scalars_without_arrays(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        assert cache.peek(spec) is None
        assert cache.misses == 1
        cache.put(spec, make_result(spec))
        peeked = cache.peek(spec)
        assert peeked.from_cache
        assert peeked.arrays == {}
        assert peeked.scalars["mean_completion_time"] == 14.409
        assert peeked.rendered == "line one\nline two"
        assert cache.hits == 1

    def test_load_meta_by_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        meta = cache.load_meta(cache.key_for(spec))
        assert meta["spec_hash"] == spec.content_hash
        assert meta["cache_key"] == cache.key_for(spec)
        assert cache.load_meta("0" * 64) is None

    def test_array_names_via_zipfile(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        assert cache.array_names(cache.key_for(spec)) == (
            "completion_times", "grid",
        )
        assert cache.array_names("0" * 64) == ()

    def test_find_hash_resolves_content_hash_to_cache_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        assert cache.find_hash(spec.content_hash) is None
        cache.put(spec, make_result(spec))
        assert cache.find_hash(spec.content_hash) == cache.key_for(spec)
        assert cache.find_hash("f" * 64) is None

    def test_find_hash_prefers_current_package_version(self, tmp_path, spec, monkeypatch):
        import repro.scenarios.cache as cache_module

        cache = ResultCache(tmp_path)
        monkeypatch.setattr(cache_module, "__version__", "0.9.9")
        cache.put(spec, make_result(spec))
        stale_key = cache.key_for(spec)
        monkeypatch.undo()
        cache.put(spec, make_result(spec))
        current_key = cache.key_for(spec)
        assert stale_key != current_key
        assert cache.find_hash(spec.content_hash) == current_key

    def test_metadata_reads_are_numpy_free(self, tmp_path, spec):
        import os
        import pathlib
        import subprocess
        import sys

        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        repo = pathlib.Path(__file__).resolve().parents[2]
        code = (
            "import sys\n"
            "from repro.scenarios.cache import ResultCache\n"
            "from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec\n"
            f"spec = ScenarioSpec.from_json({spec.to_json()!r})\n"
            f"cache = ResultCache({str(tmp_path)!r})\n"
            "assert cache.contains(spec)\n"
            "result = cache.peek(spec)\n"
            "assert result.scalars['winner'] == 'lbp1'\n"
            "key = cache.find_hash(spec.content_hash)\n"
            "assert cache.array_names(key) == ('completion_times', 'grid')\n"
            "assert 'numpy' not in sys.modules, 'numpy on the metadata path'\n"
        )
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    def test_put_writes_hash_index_for_o1_lookup(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        index = tmp_path / "by-hash" / spec.content_hash[:2] / spec.content_hash
        assert index.read_text() == cache.key_for(spec)

    def test_find_hash_repairs_missing_index(self, tmp_path, spec):
        import shutil

        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        shutil.rmtree(tmp_path / "by-hash")  # pre-index store layout
        assert cache.find_hash(spec.content_hash) == cache.key_for(spec)
        index = tmp_path / "by-hash" / spec.content_hash[:2] / spec.content_hash
        assert index.is_file()  # the scan rebuilt the pointer

    def test_stale_index_pointer_falls_back_to_scan(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        index = tmp_path / "by-hash" / spec.content_hash[:2] / spec.content_hash
        index.write_text("0" * 64)  # points at a nonexistent entry
        assert cache.find_hash(spec.content_hash) == cache.key_for(spec)

    def test_evict_removes_index_pointer(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        assert cache.evict(spec)
        assert cache.find_hash(spec.content_hash) is None
        index = tmp_path / "by-hash" / spec.content_hash[:2] / spec.content_hash
        assert not index.exists()

    def test_index_dir_does_not_count_as_entries(self, tmp_path, spec):
        cache = ResultCache(tmp_path)
        cache.put(spec, make_result(spec))
        assert len(cache) == 1
