"""Monte-Carlo harness: the unified execution engine, statistics, sweeps.

The paper validates its analytical model with Monte-Carlo simulation (500
realisations for Table 2, the "MC Simulation" curve of Fig. 3).  This
package provides the corresponding machinery on top of
:mod:`repro.cluster`:

* :mod:`repro.montecarlo.engine` — **the** Monte-Carlo engine: every
  ensemble is planned into seed blocks, executed through a shard executor
  (inline, process pool, shared futures pool, or the service's remote
  worker fleet) and merged exactly.  Serial, pooled, vectorized and
  sharded runs are all the same pipeline with different knobs;
* :mod:`repro.montecarlo.runner` — the per-block execution primitive
  (:class:`MonteCarloRunner`) and the legacy ``run_monte_carlo`` shim;
* :mod:`repro.montecarlo.statistics` — summary statistics, mergeable
  accumulators (exact-sum moments, histograms, quantile sketches) and
  empirical CDFs;
* :mod:`repro.montecarlo.sweep` — gain sweeps (Fig. 3), delay sweeps
  (Table 3) and policy comparisons (Tables 1–2), all routed through the
  engine;
* :mod:`repro.montecarlo.parallel` — deprecated process-pool shims kept
  for backwards compatibility;
* :mod:`repro.montecarlo.pooling` — the shared pool-size cap.

Re-exports are lazy (PEP 562): importing this package costs nothing, which
keeps numpy/scipy off the service's request path (executor resolution
imports :mod:`repro.montecarlo.pooling`).
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "repro.montecarlo.engine": (
        "EngineReport",
        "EngineRequest",
        "run_engine",
    ),
    "repro.montecarlo.parallel": (
        "run_monte_carlo_auto",
        "run_monte_carlo_parallel",
    ),
    "repro.montecarlo.pooling": ("cap_pool_size",),
    "repro.montecarlo.runner": (
        "MonteCarloEstimate",
        "MonteCarloRunner",
        "run_monte_carlo",
    ),
    "repro.montecarlo.statistics": (
        "ExactSum",
        "MergeableHistogram",
        "QuantileSketch",
        "RunningStatistics",
        "SummaryStatistics",
        "empirical_cdf",
        "summarize",
    ),
    "repro.montecarlo.sweep": (
        "DelaySweepResult",
        "GainSweepResult",
        "compare_policies",
        "delay_sweep",
        "gain_sweep",
    ),
}

__getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
