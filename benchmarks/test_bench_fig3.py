"""Benchmark: regenerate Fig. 3 (mean completion time vs gain K for LBP-1)."""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.fig3_gain_sweep import run as run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_gain_sweep(benchmark, bench_once):
    result = bench_once(
        benchmark,
        run_fig3,
        mc_realisations=150,
        experiment_realisations=15,
        seed=303,
    )
    print()
    print(result.render())

    # Shape checks from the paper:
    #  * optimum at K = 0.35 with failure, K = 0.45 without;
    #  * minimum mean completion time around 117 s;
    #  * the failure curve lies above the no-failure curve everywhere;
    #  * Monte-Carlo and emulated experiment track the theory curve.
    assert result.optimal_gain_theory == pytest.approx(
        common.PAPER_FIG3_OPTIMAL_GAIN_FAILURE, abs=0.051
    )
    assert result.optimal_gain_no_failure == pytest.approx(
        common.PAPER_FIG3_OPTIMAL_GAIN_NO_FAILURE, abs=0.051
    )
    assert result.minimum_mean_completion_time == pytest.approx(
        common.PAPER_FIG3_MIN_COMPLETION_TIME, rel=0.05
    )
    assert np.all(result.theory > result.theory_no_failure)
    relative_gap = np.abs(result.monte_carlo - result.theory) / result.theory
    assert np.median(relative_gap) < 0.08
