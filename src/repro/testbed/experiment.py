"""Complete test-bed experiments (the "Exp." columns of Tables 1 and 2).

A :class:`TestbedExperiment` assembles, for each emulated node, the three
software layers of the paper's architecture — application, communication and
load-balancing/failure — plus the failure injector, runs the workload to
completion and reports the overall completion time together with traffic and
calibration statistics.  :meth:`TestbedExperiment.run_many` repeats the
experiment (20 realisations in the paper's Table 1, 60 for its LBP-2 runs)
with independent random streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.node import ComputeElement
from repro.cluster.task import Task
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.statistics import SummaryStatistics, summarize
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams, SeedLike, spawn_seeds
from repro.testbed.application import ApplicationLayer, MatrixWorkloadGenerator
from repro.testbed.balancer import BalancerLayer
from repro.testbed.communication import CommunicationLayer, MessageLog, WirelessChannel
from repro.testbed.failure_injector import FailureInjector


@dataclass(frozen=True)
class TestbedConfig:
    """Tunables of the test-bed emulation that are not part of the model.

    The defaults are small compared to the task service times, matching the
    paper's observation that state packets are 20–34 bytes while data
    packets carry whole task batches.
    """

    __test__ = False  # not a pytest test class despite the name

    state_delay_mean: float = 0.002
    state_loss_probability: float = 0.005
    per_transfer_overhead: float = 0.01
    sync_wait: float = 0.05
    resync_interval: Optional[float] = 5.0
    mean_task_size: float = 1.0

    def __post_init__(self) -> None:
        if self.state_delay_mean < 0 or self.per_transfer_overhead < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.state_loss_probability < 1.0:
            raise ValueError("state_loss_probability must lie in [0, 1)")
        if self.sync_wait < 0:
            raise ValueError("sync_wait must be non-negative")
        if self.mean_task_size <= 0:
            raise ValueError("mean_task_size must be positive")


@dataclass
class TestbedResult:
    """Outcome of one emulated experiment."""

    __test__ = False  # not a pytest test class despite the name

    completion_time: float
    policy_name: str
    workload: Tuple[int, ...]
    tasks_completed_per_node: Tuple[int, ...]
    failures_per_node: Tuple[int, ...]
    execution_times_per_node: Dict[int, np.ndarray]
    message_log: MessageLog
    initial_transfers: list = field(default_factory=list)
    compensation_transfers: list = field(default_factory=list)


@dataclass
class TestbedCampaign:
    """Aggregate of several repeated experiments."""

    __test__ = False  # not a pytest test class despite the name

    results: List[TestbedResult]
    summary: SummaryStatistics

    @property
    def completion_times(self) -> np.ndarray:
        """Completion times of all realisations."""
        return np.array([result.completion_time for result in self.results])

    @property
    def mean_completion_time(self) -> float:
        """Sample mean over the realisations."""
        return self.summary.mean


class TestbedExperiment:
    """One emulated wireless-test-bed experiment.

    (The leading "Test" in the class name refers to the paper's test-bed;
    the ``__test__ = False`` marker below keeps pytest from trying to collect
    it as a test case when it is imported inside test modules.)

    Parameters
    ----------
    params:
        System parameters (node speeds, failure/recovery rates, delay model).
    policy:
        Load-balancing policy deployed on every node.
    workload:
        Initial workload vector.
    seed:
        Root seed of the experiment.
    config:
        Emulation-specific tunables (:class:`TestbedConfig`).
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        seed: SeedLike = None,
        config: Optional[TestbedConfig] = None,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.params = params
        self.policy = policy
        self.workload = workload if isinstance(workload, Workload) else Workload(tuple(workload))
        if self.workload.num_nodes != params.num_nodes:
            raise ValueError(
                f"workload spans {self.workload.num_nodes} nodes but the system "
                f"has {params.num_nodes}"
            )
        self.config = config or TestbedConfig()
        self.streams = streams if streams is not None else RandomStreams(seed)

        self.env = Environment()
        self._outstanding = self.workload.total
        self._completion_event = self.env.event()
        if self._outstanding == 0:
            self._completion_event.succeed(0.0)

        generator = MatrixWorkloadGenerator(mean_size=self.config.mean_task_size)
        workload_rng = self.streams.stream("testbed.workload")
        tasks = generator.generate(tuple(self.workload), workload_rng)

        # -- shared wireless medium -------------------------------------------
        self.channel = WirelessChannel(
            self.env,
            params,
            rng=self.streams.stream("testbed.channel"),
            state_delay_mean=self.config.state_delay_mean,
            state_loss_probability=self.config.state_loss_probability,
            per_transfer_overhead=self.config.per_transfer_overhead,
        )

        # -- per-node layers -----------------------------------------------------
        self.applications: List[ApplicationLayer] = []
        self.nodes: List[ComputeElement] = []
        self.comms: List[CommunicationLayer] = []
        self.balancers: List[BalancerLayer] = []
        self.injectors: List[FailureInjector] = []

        for index in range(params.num_nodes):
            application = ApplicationLayer(
                node_index=index,
                service_rate=params.node(index).service_rate,
                generator=generator,
            )
            node = ComputeElement(
                env=self.env,
                index=index,
                params=params.node(index),
                rng=self.streams.stream(f"testbed.node-{index}.service"),
                on_task_completed=self._on_task_completed,
                service_time_provider=application.execution_time,
            )
            comm = CommunicationLayer(self.env, index, self.channel, params.num_nodes)
            comm.bind_data_handler(self._deliver_tasks)
            comm.bind_state_dispatcher(self._dispatch_state)
            self.applications.append(application)
            self.nodes.append(node)
            self.comms.append(comm)

        for index, node in enumerate(self.nodes):
            node.assign_initial(tasks[index])
            self.balancers.append(
                BalancerLayer(
                    env=self.env,
                    node=node,
                    policy=policy,
                    params=params,
                    comm=self.comms[index],
                    initial_workload=self.workload.count(index),
                    sync_wait=self.config.sync_wait,
                    resync_interval=self.config.resync_interval,
                )
            )
            self.injectors.append(
                FailureInjector(
                    env=self.env,
                    node_index=index,
                    params=params.node(index),
                    rng=self.streams.stream(f"testbed.node-{index}.failure"),
                    on_stop=self._on_stop_signal,
                    on_resume=self._on_resume_signal,
                )
            )

    # -- wiring callbacks --------------------------------------------------------

    def _dispatch_state(self, destination: int, message) -> None:
        self.comms[destination].receive_state(message)

    def _deliver_tasks(self, destination: int, batch: List[Task]) -> None:
        self.nodes[destination].receive(batch)

    def _on_stop_signal(self, node_index: int, time: float) -> None:
        self.balancers[node_index].handle_stop_signal(time)

    def _on_resume_signal(self, node_index: int, time: float) -> None:
        self.balancers[node_index].handle_resume_signal(time)

    def _on_task_completed(self, node: ComputeElement, task: Task) -> None:
        self.applications[node.index].record_execution(
            task, self.applications[node.index].execution_time(task)
        )
        self._outstanding -= 1
        if self._outstanding == 0 and not self._completion_event.triggered:
            self._completion_event.succeed(self.env.now)

    # -- execution ------------------------------------------------------------------

    def run(self, horizon: Optional[float] = None) -> TestbedResult:
        """Run the experiment to completion and return its summary."""
        if horizon is not None:
            timeout = self.env.timeout(horizon)
            self.env.run(until=self.env.any_of([self._completion_event, timeout]))
            if not self._completion_event.triggered:
                raise RuntimeError(
                    f"test-bed run incomplete after horizon={horizon} "
                    f"({self._outstanding} tasks outstanding)"
                )
            completion_time = float(self._completion_event.value)
        else:
            completion_time = float(self.env.run(until=self._completion_event))

        return TestbedResult(
            completion_time=completion_time,
            policy_name=self.policy.name,
            workload=tuple(self.workload),
            tasks_completed_per_node=tuple(n.tasks_completed for n in self.nodes),
            failures_per_node=tuple(inj.num_failures for inj in self.injectors),
            execution_times_per_node={
                app.node_index: app.measured_times for app in self.applications
            },
            message_log=self.channel.log,
            initial_transfers=[
                t for b in self.balancers for t in b.initial_transfers_sent
            ],
            compensation_transfers=[
                t for b in self.balancers for t in b.compensation_transfers_sent
            ],
        )

    @classmethod
    def run_many(
        cls,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        num_realisations: int,
        seed: SeedLike = None,
        config: Optional[TestbedConfig] = None,
        horizon: Optional[float] = None,
    ) -> TestbedCampaign:
        """Repeat the experiment ``num_realisations`` times (as in Table 1/2)."""
        if num_realisations < 1:
            raise ValueError("num_realisations must be >= 1")
        seeds = spawn_seeds(seed, num_realisations)
        results = []
        for child in seeds:
            experiment = cls(
                params,
                policy,
                workload,
                streams=RandomStreams(child),
                config=config,
            )
            results.append(experiment.run(horizon=horizon))
        times = [result.completion_time for result in results]
        return TestbedCampaign(results=results, summary=summarize(times))
