"""repro: load balancing under random node failure and recovery.

A faithful, self-contained Python reproduction of

    S. Dhakal, M. M. Hayat, J. E. Pezoa, C. T. Abdallah, J. D. Birdwell and
    J. Chiasson, "Load Balancing in the Presence of Random Node Failure and
    Recovery", 20th International Parallel and Distributed Processing
    Symposium (IPDPS), 2006.

The package provides:

* the two load-balancing policies of the paper — the preemptive **LBP-1**
  and the reactive **LBP-2** — plus baselines (:mod:`repro.core.policies`);
* the regeneration-theory analysis of the two-node system: expected overall
  completion time (eq. (4)) and its distribution function (eq. (5))
  (:mod:`repro.core`);
* a from-scratch discrete-event simulation kernel (:mod:`repro.sim`) and a
  distributed-system model with failing/recovering nodes and random,
  load-dependent transfer delays (:mod:`repro.cluster`);
* a Monte-Carlo harness (:mod:`repro.montecarlo`);
* an emulation of the paper's three-layer wireless test-bed
  (:mod:`repro.testbed`);
* experiment drivers regenerating every figure and table of the paper's
  evaluation (:mod:`repro.experiments`);
* pluggable Monte-Carlo execution backends — the event-driven reference
  simulator and a vectorized NumPy batch kernel — plus the benchmark
  harness comparing them (:mod:`repro.backends`).

Quick start
-----------
>>> from repro import paper_parameters, optimal_gain_lbp1
>>> params = paper_parameters()
>>> result = optimal_gain_lbp1(params, (100, 60))
>>> round(result.optimal_gain, 2)
0.35
"""

from repro._version import __version__

# The public names are re-exported lazily (PEP 562): importing the bare
# ``repro`` package — which every ``python -m repro`` invocation does — must
# not pay for scipy/the solver stack, so that cached scenario lookups and
# ``--help`` stay fast.  ``from repro import LBP1`` still works unchanged.
_EXPORTS = {
    "repro.core": (
        "LBP1",
        "LBP2",
        "CompletionTimeSolver",
        "GainOptimizationResult",
        "LoadBalancingPolicy",
        "NoBalancing",
        "NodeParameters",
        "ProportionalOneShot",
        "SendAllOnFailure",
        "SystemParameters",
        "Transfer",
        "TransferDelayModel",
        "completion_time_cdf",
        "completion_time_cdf_lbp1",
        "expected_completion_time",
        "expected_completion_time_lbp1",
        "expected_completion_time_no_failure",
        "optimal_gain_lbp1",
        "optimal_gain_no_failure",
        "paper_parameters",
    ),
    "repro.cluster": (
        "DistributedSystem",
        "SimulationResult",
        "Workload",
        "simulate_once",
    ),
    "repro.montecarlo": (
        "EngineReport",
        "EngineRequest",
        "MonteCarloEstimate",
        "compare_policies",
        "delay_sweep",
        "gain_sweep",
        "run_engine",
        "run_monte_carlo",
    ),
    "repro.sim": ("Environment", "RandomStreams"),
    "repro.backends": (
        "BackendUnsupportedError",
        "ExecutionBackend",
        "backend_names",
        "get_backend",
        "resolve_backend",
    ),
}

from repro._lazy import lazy_exports

__getattr__, __dir__, __all__ = lazy_exports(
    __name__, _EXPORTS, extra_all=("__version__",)
)
