"""Monitors: record time series and summary statistics during a simulation.

The queue-trajectory figures of the paper (Fig. 4) are produced from
:class:`TimeSeriesMonitor` records, and the Monte-Carlo harness aggregates
per-realisation results through :class:`TallyMonitor`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


class TimeSeriesMonitor:
    """Piecewise-constant time series of an observed quantity.

    Each call to :meth:`record` appends a ``(time, value)`` pair.  The series
    is interpreted as right-continuous and piecewise constant, which matches
    queue-length trajectories exactly.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation at ``time``."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"observations must be recorded in time order "
                f"(got {time} after {self._times[-1]})"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    # -- accessors --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Observation times as an array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Observed values as an array."""
        return np.asarray(self._values, dtype=float)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays."""
        return self.times, self.values

    def value_at(self, time: float) -> float:
        """Value of the (right-continuous) series at ``time``."""
        if not self._times:
            raise ValueError("monitor is empty")
        idx = int(np.searchsorted(self._times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"time {time} precedes the first observation")
        return self._values[idx]

    def sample_on_grid(self, grid: Sequence[float]) -> np.ndarray:
        """Evaluate the piecewise-constant series on a time grid."""
        grid_arr = np.asarray(grid, dtype=float)
        if not self._times:
            raise ValueError("monitor is empty")
        idx = np.searchsorted(self._times, grid_arr, side="right") - 1
        if np.any(idx < 0):
            raise ValueError("grid extends before the first observation")
        return np.asarray(self._values, dtype=float)[idx]

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted average of the series on ``[t0, until]``."""
        if len(self._times) == 0:
            raise ValueError("monitor is empty")
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        end = float(until) if until is not None else times[-1]
        if end < times[0]:
            raise ValueError("'until' precedes the first observation")
        if end == times[0]:
            return float(values[0])
        cut = np.searchsorted(times, end, side="right")
        times = np.append(times[:cut], end)
        values = values[:cut]
        durations = np.diff(times)
        return float(np.sum(values * durations) / (end - times[0]))


class TallyMonitor:
    """Accumulator of scalar observations with summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []

    def record(self, value: float) -> None:
        """Add one observation."""
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value!r}")
        self._values.append(float(value))

    def extend(self, values: Sequence[float]) -> None:
        """Add several observations."""
        for value in values:
            self.record(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """All observations as an array."""
        return np.asarray(self._values, dtype=float)

    @property
    def mean(self) -> float:
        """Sample mean."""
        if not self._values:
            raise ValueError("monitor is empty")
        return float(np.mean(self._values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single observation)."""
        if not self._values:
            raise ValueError("monitor is empty")
        if len(self._values) == 1:
            return 0.0
        return float(np.std(self._values, ddof=1))

    @property
    def min(self) -> float:
        if not self._values:
            raise ValueError("monitor is empty")
        return float(np.min(self._values))

    @property
    def max(self) -> float:
        if not self._values:
            raise ValueError("monitor is empty")
        return float(np.max(self._values))

    def standard_error(self) -> float:
        """Standard error of the mean."""
        n = len(self._values)
        if n == 0:
            raise ValueError("monitor is empty")
        return self.std / math.sqrt(n)

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        from scipy import stats

        if not 0 < level < 1:
            raise ValueError(f"level must be in (0, 1), got {level!r}")
        if not self._values:
            raise ValueError("monitor is empty")
        half = stats.norm.ppf(0.5 + level / 2.0) * self.standard_error()
        return self.mean - half, self.mean + half
