"""Content-addressed on-disk result store for scenario runs.

The cache directory contains one sub-directory per :func:`cache_key`
(sharded by the first two hex digits, the git object-store layout) holding

* ``meta.json`` — the spec that produced the result, the scalar outputs and
  the rendered text report, and
* ``arrays.npz`` — every array output, stored losslessly so a cache hit is
  bit-identical to the original computation.

:func:`cache_key` folds the package version and the spec's
execution-backend name into :attr:`ScenarioSpec.content_hash`: a new
release (which may change any kernel) or a different backend can never be
served a stale result computed by another.

The cache root is, in order of precedence, the ``root`` constructor
argument, the ``REPRO_CACHE_DIR`` environment variable, or
``~/.cache/repro``.  Corrupt or partially-written entries are treated as
misses and overwritten on the next store.

numpy is imported lazily, only where arrays are actually (de)serialized:
the metadata paths (:meth:`ResultCache.contains`, :meth:`ResultCache.peek`,
:meth:`ResultCache.find_hash`, :meth:`ResultCache.array_names`) never touch
the numerical stack, which keeps cache-hit lookups — and the results
service built on them — importable without numpy/scipy.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

from repro._version import __version__
from repro.obs.metrics import REGISTRY
from repro.scenarios.spec import ScenarioSpec

# One family shared with the shard store (same names, different `store`
# label) — repro.obs is stdlib-only, so these stay off the numpy path.
_CACHE_REQUESTS = REGISTRY.counter(
    "repro_cache_requests_total",
    "Cache lookups by store and outcome.",
    labelnames=("store", "outcome"),
)
_CACHE_WRITES = REGISTRY.counter(
    "repro_cache_writes_total",
    "Cache entries written, by store.",
    labelnames=("store",),
)
_CACHE_WRITE_BYTES = REGISTRY.counter(
    "repro_cache_write_bytes_total",
    "Bytes written into the cache, by store.",
    labelnames=("store",),
)
_CACHE_READ_BYTES = REGISTRY.counter(
    "repro_cache_read_bytes_total",
    "Bytes read back out of the cache, by store.",
    labelnames=("store",),
)

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache root when neither argument nor environment specify one.
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Version of the on-disk entry layout; bumped on incompatible changes so
#: stale entries read as misses instead of loading garbage.
#:
#: History: 2 — ``meta.json`` records the producing package version and
#: execution backend.
CACHE_FORMAT_VERSION = 2


def cache_key(spec: ScenarioSpec) -> str:
    """The on-disk key for ``spec``: content hash salted with provenance.

    The salt covers the package version and the backend name (the backend
    is also inside the content hash, but keeping it visible in the key
    derivation makes the invalidation contract explicit): upgrading the
    package or switching kernels can never surface a result computed under
    the old code.
    """
    backend = getattr(spec, "backend", "reference")
    payload = f"{spec.content_hash}\nrepro=={__version__}\nbackend={backend}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ScenarioResult:
    """Uniform, serializable outcome of one scenario run.

    Every runner kind reduces its artefact to the same three channels —
    ``scalars`` (headline numbers), ``arrays`` (the curves/samples behind
    them) and ``rendered`` (the plain-text report) — which is what makes
    results cacheable and comparable across kinds.
    """

    name: str
    kind: str
    spec_hash: str
    scalars: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    rendered: str = ""
    runtime_seconds: float = 0.0
    from_cache: bool = False

    def render(self) -> str:
        """The plain-text report (mirrors the experiment drivers' API)."""
        return self.rendered

    def identical_to(self, other: "ScenarioResult") -> bool:
        """Bit-exact equality of the scientific content (not provenance)."""
        import numpy as np

        if (
            self.spec_hash != other.spec_hash
            or self.scalars != other.scalars
            or self.rendered != other.rendered
            or set(self.arrays) != set(other.arrays)
        ):
            return False
        return all(
            self.arrays[k].shape == other.arrays[k].shape
            and self.arrays[k].dtype == other.arrays[k].dtype
            and np.array_equal(self.arrays[k], other.arrays[k])
            for k in self.arrays
        )


class ResultCache:
    """Content-addressed store mapping spec hashes to :class:`ScenarioResult`."""

    def __init__(self, root: Union[None, str, Path] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0

    # -- layout ------------------------------------------------------------

    def key_for(self, spec: ScenarioSpec) -> str:
        """The cache key of ``spec`` (see :func:`cache_key`)."""
        return cache_key(spec)

    def entry_dir(self, key: str) -> Path:
        """Directory holding the entry for cache key ``key``."""
        return self.root / key[:2] / key

    def contains(self, spec: ScenarioSpec) -> bool:
        """Whether a completed entry exists for this spec."""
        return (self.entry_dir(self.key_for(spec)) / "meta.json").is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*/meta.json"))

    # -- store / load ------------------------------------------------------

    def put(self, spec: ScenarioSpec, result: ScenarioResult) -> Path:
        """Persist ``result`` under the spec's cache key (atomically)."""
        import numpy as np

        key = self.key_for(spec)
        entry = self.entry_dir(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(prefix=f".{key[:12]}-", dir=entry.parent)
        )
        try:
            meta = {
                "format_version": CACHE_FORMAT_VERSION,
                "repro_version": __version__,
                "backend": getattr(spec, "backend", "reference"),
                "spec": spec.to_dict(),
                "spec_hash": spec.content_hash,
                "cache_key": key,
                "name": result.name,
                "kind": result.kind,
                "scalars": result.scalars,
                "rendered": result.rendered,
                "runtime_seconds": result.runtime_seconds,
            }
            if result.arrays:
                np.savez(staging / "arrays.npz", **result.arrays)
            # meta.json is written last: its presence marks the entry complete.
            (staging / "meta.json").write_text(
                json.dumps(meta, sort_keys=True, indent=1)
            )
            written_bytes = sum(
                p.stat().st_size for p in staging.iterdir() if p.is_file()
            )
            if entry.exists():
                shutil.rmtree(entry)
            try:
                staging.rename(entry)
            except OSError:
                # Lost a race against another process storing the same
                # content-addressed entry; its result is identical by
                # construction, so keep it and discard ours.
                if not (entry / "meta.json").is_file():
                    raise
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        _CACHE_WRITES.labels(store="result").inc()
        _CACHE_WRITE_BYTES.labels(store="result").inc(written_bytes)
        self._write_hash_index(spec.content_hash, key)
        return entry

    def load_meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The ``meta.json`` payload stored under cache key ``key``.

        Returns ``None`` for missing, corrupt or incompatibly-formatted
        entries.  Reads no arrays and imports no numpy.
        """
        try:
            raw = (self.entry_dir(key) / "meta.json").read_bytes()
            meta = json.loads(raw)
        except (OSError, ValueError):
            return None
        if meta.get("format_version") != CACHE_FORMAT_VERSION:
            return None
        _CACHE_READ_BYTES.labels(store="result").inc(len(raw))
        return meta

    def array_names(self, key: str) -> Tuple[str, ...]:
        """Names of the arrays stored under ``key``, without loading them.

        ``arrays.npz`` is a zip of ``<name>.npy`` members, so the listing
        needs only :mod:`zipfile` — the service advertises available arrays
        on cache hits without importing numpy.
        """
        npz_path = self.entry_dir(key) / "arrays.npz"
        if not npz_path.is_file():
            return ()
        try:
            with zipfile.ZipFile(npz_path) as archive:
                return tuple(
                    sorted(
                        name[: -len(".npy")]
                        for name in archive.namelist()
                        if name.endswith(".npy")
                    )
                )
        except (OSError, zipfile.BadZipFile):
            return ()

    def _hash_index_path(self, content_hash: str) -> Path:
        """Pointer file mapping a raw content hash to its cache key."""
        return self.root / "by-hash" / content_hash[:2] / content_hash

    def find_hash(self, content_hash: str) -> Optional[str]:
        """The cache key of an entry whose spec has ``content_hash``.

        The store is keyed by :func:`cache_key` (hash salted with package
        version), so a raw content hash — the identifier the HTTP results
        API exposes — is resolved through a pointer file written at
        :meth:`put` time (an O(1) read, kept honest by re-validating the
        target entry).  Entries that predate the index, or whose pointer
        was lost, fall back to a metadata scan that repairs the pointer;
        entries written by the current package version win over stale
        ones.
        """
        index = self._hash_index_path(content_hash)
        try:
            key = index.read_text().strip()
        except OSError:
            key = ""
        if key:
            meta = self.load_meta(key)
            if meta is not None and meta.get("spec_hash") == content_hash:
                return key

        matches = []
        for meta_path in sorted(self.root.glob("??/*/meta.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            if (
                meta.get("format_version") == CACHE_FORMAT_VERSION
                and meta.get("spec_hash") == content_hash
            ):
                matches.append(meta)
        for meta in matches:
            if meta.get("repro_version") == __version__:
                self._write_hash_index(content_hash, meta["cache_key"])
                return meta["cache_key"]
        if matches:
            self._write_hash_index(content_hash, matches[0]["cache_key"])
            return matches[0]["cache_key"]
        return None

    def _write_hash_index(self, content_hash: str, key: str) -> None:
        index = self._hash_index_path(content_hash)
        try:
            index.parent.mkdir(parents=True, exist_ok=True)
            index.write_text(key)
        except OSError:
            pass  # the index is an accelerator; the scan path still works

    def _result_from_meta(
        self,
        meta: Dict[str, Any],
        spec: Optional[ScenarioSpec] = None,
        arrays: Optional[Dict[str, "np.ndarray"]] = None,
    ) -> ScenarioResult:
        # The requesting spec's name wins over the stored one: renames keep
        # cached results valid (the name is excluded from the content hash),
        # and the caller should see the name it asked for.
        return ScenarioResult(
            name=spec.name if spec is not None else meta["name"],
            kind=meta["kind"],
            spec_hash=meta["spec_hash"],
            scalars=meta["scalars"],
            arrays=arrays or {},
            rendered=meta["rendered"],
            runtime_seconds=meta["runtime_seconds"],
            from_cache=True,
        )

    def peek(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The cached result for ``spec`` *without* its arrays, or ``None``.

        A metadata-only read: scalars, the rendered report and provenance
        come back, ``result.arrays`` stays empty.  Never imports numpy —
        this is the fast path the results service serves cache hits from.
        """
        meta = self.load_meta(self.key_for(spec))
        if meta is None:
            self.misses += 1
            _CACHE_REQUESTS.labels(store="result", outcome="miss").inc()
            return None
        self.hits += 1
        _CACHE_REQUESTS.labels(store="result", outcome="hit").inc()
        return self._result_from_meta(meta, spec=spec)

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """Load the cached result for ``spec``, or ``None`` on a miss."""
        key = self.key_for(spec)
        meta = self.load_meta(key)
        if meta is None:
            self.misses += 1
            _CACHE_REQUESTS.labels(store="result", outcome="miss").inc()
            return None
        arrays: Dict[str, "np.ndarray"] = {}
        npz_path = self.entry_dir(key) / "arrays.npz"
        if npz_path.is_file():
            import numpy as np

            try:
                with np.load(npz_path) as npz:
                    arrays = {name: npz[name] for name in npz.files}
                _CACHE_READ_BYTES.labels(store="result").inc(
                    npz_path.stat().st_size
                )
            except (OSError, ValueError):
                self.misses += 1
                _CACHE_REQUESTS.labels(store="result", outcome="miss").inc()
                return None
        self.hits += 1
        _CACHE_REQUESTS.labels(store="result", outcome="hit").inc()
        return self._result_from_meta(meta, spec=spec, arrays=arrays)

    # -- maintenance -------------------------------------------------------

    def evict(self, spec: ScenarioSpec) -> bool:
        """Drop the entry for ``spec``; returns whether one existed."""
        key = self.key_for(spec)
        entry = self.entry_dir(key)
        if not entry.exists():
            return False
        shutil.rmtree(entry)
        index = self._hash_index_path(spec.content_hash)
        try:
            if index.read_text().strip() == key:
                index.unlink()
        except OSError:
            pass
        return True

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = len(self)
        if self.root.is_dir():
            shutil.rmtree(self.root)
        return removed
