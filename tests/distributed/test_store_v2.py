"""ShardStore v2: columnar segments, v1 read-through, migration, and the
corruption drills.

The store's contract is *clean misses*: any damaged byte — truncated
segment, torn index line, stale format version, foreign bytes where a
frame should be — must read as "not cached" (so the engine recomputes the
block) and never as an exception or, worse, a wrong payload.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.distributed.frames import encode_frame
from repro.distributed.store import (
    BLOCK_FORMAT_VERSION,
    STORE_FORMAT_VERSION,
    ShardStore,
)
from repro.obs.metrics import REGISTRY


def _block(index: int = 0) -> dict:
    return {
        "index": index,
        "completion_times": [float(i) + 0.5 for i in range(8)],
        "stats": {"count": 8, "mean": 4.0},
    }


def _write_v1(store: ShardStore, key: str, block: dict) -> None:
    """A legacy v1 document, byte-for-byte what the old store wrote."""
    path = store.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {"format_version": BLOCK_FORMAT_VERSION, "key": key, "block": block},
            sort_keys=True,
        )
    )


def _read_bytes_metric() -> float:
    family = REGISTRY.snapshot().get("repro_cache_read_bytes_total", {})
    return sum(
        series["value"]
        for series in family.get("series", [])
        if series["labels"].get("store") == "shard"
    )


class TestV2Layout:
    def test_store_format_version_is_2(self):
        assert STORE_FORMAT_VERSION == 2

    def test_put_get_round_trip_via_segments(self, tmp_path):
        store = ShardStore(tmp_path)
        block = _block()
        store.put("a" * 40, block)
        assert store.get("a" * 40) == block
        assert store.hits == 1 and store.misses == 0
        # The bytes live in a segment + sidecar, not a per-key JSON file.
        assert not store.path_for("a" * 40).exists()
        segments = list(store.segment_dir.glob("*.seg"))
        sidecars = list(store.segment_dir.glob("*.idx"))
        assert len(segments) == 1 and len(sidecars) == 1

    def test_one_segment_per_writer_many_blocks(self, tmp_path):
        store = ShardStore(tmp_path)
        for i in range(10):
            store.put(f"{i:02d}" + "f" * 38, _block(i))
        assert len(list(store.segment_dir.glob("*.seg"))) == 1
        assert len(store) == 10
        for i in range(10):
            assert store.get(f"{i:02d}" + "f" * 38) == _block(i)

    def test_fresh_instance_reads_another_writers_segment(self, tmp_path):
        writer = ShardStore(tmp_path)
        writer.put("b" * 40, _block(3))
        reader = ShardStore(tmp_path)
        assert reader.get("b" * 40) == _block(3)
        assert reader.hits == 1

    def test_rewrite_shadows_earlier_append(self, tmp_path):
        store = ShardStore(tmp_path)
        store.put("c" * 40, _block(1))
        store.put("c" * 40, _block(2))
        assert store.get("c" * 40) == _block(2)
        assert len(ShardStore(tmp_path)) == 1

    def test_read_bytes_metric_counts_segment_reads(self, tmp_path):
        store = ShardStore(tmp_path)
        store.put("d" * 40, _block())
        before = _read_bytes_metric()
        assert ShardStore(tmp_path).get("d" * 40) == _block()
        assert _read_bytes_metric() > before

    def test_clear_removes_segments_and_key_dirs(self, tmp_path):
        store = ShardStore(tmp_path)
        store.put("e" * 40, _block())
        _write_v1(store, "f" * 40, _block())
        assert store.clear() == 2
        assert len(store) == 0
        assert not store.segment_dir.exists()
        # Emptied two-hex v1 dirs are gone too.
        assert not list(store.root.glob("??"))
        store.put("e" * 40, _block(9))  # the store stays usable
        assert store.get("e" * 40) == _block(9)


class TestV1ReadThroughAndMigration:
    def test_v1_documents_read_transparently(self, tmp_path):
        store = ShardStore(tmp_path)
        _write_v1(store, "1a" + "c" * 38, _block(7))
        assert store.get("1a" + "c" * 38) == _block(7)
        assert store.hits == 1

    def test_mixed_v1_v2_directory(self, tmp_path):
        store = ShardStore(tmp_path)
        _write_v1(store, "aa" + "0" * 38, _block(1))
        store.put("bb" + "0" * 38, _block(2))
        assert len(store) == 2
        assert store.get("aa" + "0" * 38) == _block(1)
        assert store.get("bb" + "0" * 38) == _block(2)

    def test_v2_shadows_v1_for_the_same_key(self, tmp_path):
        store = ShardStore(tmp_path)
        key = "cc" + "1" * 38
        _write_v1(store, key, _block(1))
        store.put(key, _block(2))
        assert store.get(key) == _block(2)

    def test_migrate_rewrites_v1_into_segments(self, tmp_path):
        store = ShardStore(tmp_path)
        keys = [f"{i:02d}" + "a" * 38 for i in range(5)]
        for i, key in enumerate(keys):
            _write_v1(store, key, _block(i))
        counts = store.migrate()
        assert counts == {"migrated": 5, "skipped": 0}
        assert not list(store.root.glob("??/*.json"))
        assert not list(store.root.glob("??"))  # emptied dirs removed
        fresh = ShardStore(tmp_path)
        for i, key in enumerate(keys):
            assert fresh.get(key) == _block(i)

    def test_migrate_skips_corrupt_documents(self, tmp_path):
        store = ShardStore(tmp_path)
        _write_v1(store, "aa" + "b" * 38, _block())
        bad = store.root / "zz"
        bad.mkdir(parents=True)
        (bad / ("zz" + "b" * 38 + ".json")).write_text("{not json")
        counts = store.migrate()
        assert counts == {"migrated": 1, "skipped": 1}

    def test_stale_v1_format_version_is_a_miss(self, tmp_path):
        store = ShardStore(tmp_path)
        key = "dd" + "2" * 38
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"format_version": 999, "block": _block()}))
        assert store.get(key) is None
        assert store.misses == 1

    def test_cli_migrate_command(self, tmp_path):
        import subprocess
        import sys

        store = ShardStore(tmp_path)
        _write_v1(store, "ee" + "3" * 38, _block(4))
        out = subprocess.run(
            [sys.executable, "-m", "repro", "store", "migrate",
             "--root", str(tmp_path)],
            capture_output=True, text=True, check=True,
            env=dict(os.environ, PYTHONPATH="src"),
        )
        assert "migrated 1" in out.stdout
        assert ShardStore(tmp_path).get("ee" + "3" * 38) == _block(4)


class TestStagingSweep:
    def test_stale_v1_staging_files_are_swept_on_init(self, tmp_path):
        first = ShardStore(tmp_path)
        shard_dir = first.root / "ab"
        shard_dir.mkdir(parents=True)
        stale = shard_dir / (".ab" + "c" * 38 + ".json-1234abcd")
        stale.write_text("{}")
        ShardStore(tmp_path)  # init sweeps
        assert not stale.exists()

    def test_sweep_leaves_real_documents_alone(self, tmp_path):
        first = ShardStore(tmp_path)
        _write_v1(first, "ab" + "c" * 38, _block())
        second = ShardStore(tmp_path)
        assert second.get("ab" + "c" * 38) == _block()


class TestCorruption:
    """The drills: every way the disk can lie must read as a clean miss."""

    def _seeded(self, tmp_path) -> ShardStore:
        store = ShardStore(tmp_path)
        store.put("aa" + "9" * 38, _block(1))
        return store

    def test_truncated_segment_is_a_clean_miss(self, tmp_path):
        self._seeded(tmp_path)
        reader = ShardStore(tmp_path)
        (segment,) = reader.segment_dir.glob("*.seg")
        data = segment.read_bytes()
        segment.write_bytes(data[: len(data) // 2])
        assert reader.get("aa" + "9" * 38) is None
        assert reader.misses == 1

    def test_zeroed_frame_bytes_are_a_clean_miss(self, tmp_path):
        self._seeded(tmp_path)
        reader = ShardStore(tmp_path)
        (segment,) = reader.segment_dir.glob("*.seg")
        segment.write_bytes(b"\x00" * segment.stat().st_size)
        assert reader.get("aa" + "9" * 38) is None

    def test_torn_index_line_is_pending_not_fatal(self, tmp_path):
        store = self._seeded(tmp_path)
        (idx,) = store.segment_dir.glob("*.idx")
        whole = idx.read_bytes()
        # A writer died mid-append: the final line has no newline yet.
        idx.write_bytes(whole[:-10])
        reader = ShardStore(tmp_path)
        assert reader.get("aa" + "9" * 38) is None  # entry not yet visible
        # The write completes later; the same reader then sees it.
        idx.write_bytes(whole)
        assert reader.get("aa" + "9" * 38) == _block(1)

    def test_corrupt_complete_index_line_is_skipped(self, tmp_path):
        store = self._seeded(tmp_path)
        store.put("bb" + "8" * 38, _block(2))
        (idx,) = store.segment_dir.glob("*.idx")
        lines = idx.read_bytes().splitlines(keepends=True)
        lines[0] = b"{torn garbage}\n"
        idx.write_bytes(b"".join(lines))
        reader = ShardStore(tmp_path)
        assert reader.get("aa" + "9" * 38) is None
        assert reader.get("bb" + "8" * 38) == _block(2)

    def test_index_pointing_past_the_segment_is_a_miss(self, tmp_path):
        store = self._seeded(tmp_path)
        (idx,) = store.segment_dir.glob("*.idx")
        idx.write_text(
            json.dumps({"key": "cc" + "7" * 38, "offset": 10_000, "length": 64})
            + "\n"
        )
        reader = ShardStore(tmp_path)
        assert reader.get("cc" + "7" * 38) is None

    def test_stale_frame_version_in_segment_is_a_miss(self, tmp_path):
        store = ShardStore(tmp_path)
        key = "dd" + "6" * 38
        frame = bytearray(
            encode_frame(
                {"format_version": BLOCK_FORMAT_VERSION, "key": key,
                 "block": _block()}
            )
        )
        frame[4] = 200  # an unknown future frame version
        store.segment_dir.mkdir(parents=True)
        seg = store.segment_dir / "000001-deadbeef.seg"
        seg.write_bytes(bytes(frame))
        seg.with_suffix(".idx").write_text(
            json.dumps({"key": key, "offset": 0, "length": len(frame)}) + "\n"
        )
        assert store.get(key) is None

    def test_stale_block_format_version_is_a_miss(self, tmp_path):
        store = ShardStore(tmp_path)
        key = "ee" + "5" * 38
        frame = encode_frame({"format_version": 999, "key": key, "block": _block()})
        store.segment_dir.mkdir(parents=True)
        seg = store.segment_dir / "000002-deadbeef.seg"
        seg.write_bytes(frame)
        seg.with_suffix(".idx").write_text(
            json.dumps({"key": key, "offset": 0, "length": len(frame)}) + "\n"
        )
        assert store.get(key) is None

    def test_key_mismatch_inside_the_frame_is_a_miss(self, tmp_path):
        """An index entry pointing at some *other* key's frame must not
        serve the wrong block."""
        store = self._seeded(tmp_path)
        (idx,) = store.segment_dir.glob("*.idx")
        entry = json.loads(idx.read_text())
        entry["key"] = "ff" + "4" * 38
        idx.write_text(json.dumps(entry) + "\n")
        reader = ShardStore(tmp_path)
        assert reader.get("ff" + "4" * 38) is None

    def test_corrupted_blocks_are_recomputed_exactly(self, tmp_path, monkeypatch):
        """The acceptance drill: damage the cache under a sharded run and
        the resumed run recomputes the lost blocks bit-identically."""
        import numpy as np

        from repro.distributed.runner import run_sharded_spec
        from repro.scenarios.spec import PolicySpec, ScenarioSpec, SystemSpec

        spec = ScenarioSpec(
            name="corruption-drill", kind="mc_point", system=SystemSpec.paper(),
            workload=(20, 12),
            policy=PolicySpec(kind="lbp1", gain=0.35, sender=0, receiver=1),
            mc_realisations=20, seed=7, shards=2, shard_block=4,
        )
        store = ShardStore(tmp_path)
        first = run_sharded_spec(spec, executor="inline", store=store)
        assert store.misses == 5 and store.hits == 0

        for segment in store.segment_dir.glob("*.seg"):
            data = segment.read_bytes()
            segment.write_bytes(data[: len(data) // 3])

        damaged = ShardStore(tmp_path)
        resumed = run_sharded_spec(spec, executor="inline", store=damaged)
        assert damaged.misses > 0  # the damage was actually exercised
        assert resumed.estimate.summary == first.estimate.summary
        np.testing.assert_array_equal(
            resumed.estimate.completion_times, first.estimate.completion_times
        )
