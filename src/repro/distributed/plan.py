"""Shard planning: seed blocks, shard partitioning, shard-cache keys.

The unit of randomness and of shard-level caching is the **seed block**: a
fixed-size contiguous range of realisations whose random streams derive
from the master seed and the *block index alone*.  Shards — the work items
the scheduler dispatches to executors and remote workers — are contiguous
groups of blocks.  Because the sample drawn for block ``j`` never depends
on how blocks are grouped, the merged ensemble is bit-identical for any
shard count, and a block computed under one shard count is a cache hit
under every other.

Block cache keys derive from a *plan key*: the spec's canonical form minus
its name, realisation count and shard configuration, salted with the
package version and backend exactly like :func:`repro.scenarios.cache
.cache_key`.  Dropping ``mc_realisations`` from the key is what makes
"add realisations to a cached scenario" a delta computation — the old
blocks keep their keys and only the new (or resized final) blocks run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.sim.rng import SeedLike

from repro._version import __version__
from repro.scenarios.spec import ScenarioSpec

#: Schema version of the shard plan (block seeding + key derivation); a bump
#: invalidates every block-cache entry.
SHARD_FORMAT_VERSION = 1

#: Spawn-key tag separating block seed streams from every other consumer of
#: the master seed sequence (per-realisation spawns use bare indices, named
#: streams use hashed tags — see :mod:`repro.sim.rng`).
BLOCK_SPAWN_TAG = 0x5EED_B10C


@dataclass(frozen=True)
class SeedBlock:
    """One fixed-size range of realisations with its own seed stream."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.start < 0 or self.stop <= self.start:
            raise ValueError(f"malformed seed block {self!r}")

    @property
    def num_realisations(self) -> int:
        return self.stop - self.start

    def to_item(self) -> Tuple[int, int, int]:
        """Compact JSON form used in work items: ``[index, start, stop]``."""
        return (self.index, self.start, self.stop)

    @classmethod
    def from_item(cls, item: Sequence[int]) -> "SeedBlock":
        index, start, stop = item
        return cls(index=int(index), start=int(start), stop=int(stop))


@dataclass(frozen=True)
class Shard:
    """A contiguous group of seed blocks — one schedulable work item."""

    index: int
    blocks: Tuple[SeedBlock, ...]

    @property
    def num_realisations(self) -> int:
        return sum(block.num_realisations for block in self.blocks)

    @property
    def block_indices(self) -> Tuple[int, ...]:
        return tuple(block.index for block in self.blocks)


def plan_blocks(num_realisations: int, block_size: int) -> Tuple[SeedBlock, ...]:
    """Partition ``num_realisations`` into fixed-size seed blocks."""
    if num_realisations < 1:
        raise ValueError(
            f"num_realisations must be >= 1, got {num_realisations!r}"
        )
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size!r}")
    return tuple(
        SeedBlock(index=j, start=start, stop=min(start + block_size, num_realisations))
        for j, start in enumerate(range(0, num_realisations, block_size))
    )


def plan_shards(
    blocks: Sequence[SeedBlock], num_shards: int, start_index: int = 0
) -> Tuple[Shard, ...]:
    """Group ``blocks`` into at most ``num_shards`` contiguous, even shards.

    The shard count is capped at the block count (a shard with no work is
    pointless) and the first ``len(blocks) % shards`` shards take one extra
    block, so shard sizes differ by at most one block.  ``start_index``
    offsets the shard indices — the adaptive planner dispatches a probe
    wave and a main wave through one scheduler, and shard indices must stay
    unique across both.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards!r}")
    if start_index < 0:
        raise ValueError(f"start_index must be >= 0, got {start_index!r}")
    blocks = tuple(blocks)
    if not blocks:
        return ()
    num_shards = min(num_shards, len(blocks))
    base, extra = divmod(len(blocks), num_shards)
    shards = []
    cursor = 0
    for index in range(num_shards):
        take = base + (1 if index < extra else 0)
        shards.append(
            Shard(
                index=start_index + index,
                blocks=blocks[cursor : cursor + take],
            )
        )
        cursor += take
    return tuple(shards)


#: Target ratio of a shard's compute time to one dispatch round-trip's
#: overhead: a dispatch should amortize ≥ ~20× what it costs.
DEFAULT_AMORTIZATION = 20.0

#: Shards offered per executor slot when cost information cannot bound the
#: count — enough surplus for the least-loaded policy to rebalance around
#: a slow slot, without a per-block dispatch storm.
DEFAULT_OVERSUBSCRIPTION = 4


def adaptive_shard_count(
    num_blocks: int,
    slots: int,
    block_seconds: Optional[float] = None,
    round_trip_seconds: Optional[float] = None,
    amortization: float = DEFAULT_AMORTIZATION,
    oversubscription: int = DEFAULT_OVERSUBSCRIPTION,
) -> int:
    """How many shards to cut ``num_blocks`` blocks into.

    Balances two pressures measured by the engine's calibration:

    * **parallelism / balance** — aim for ``slots × oversubscription``
      shards so every slot works and the least-loaded policy can steer
      around slow slots;
    * **amortization** — with a measured per-block compute cost and a
      per-dispatch round-trip overhead, cap the shard count so each
      dispatch computes at least ``amortization ×`` its own overhead
      (``total_compute / (amortization × round_trip)`` shards).

    Amortization yields to parallelism: the count never drops below
    ``min(slots, num_blocks)`` — idling a slot to save round-trips can
    never beat using it.  The result is always in ``[1, num_blocks]``.
    Sizing only regroups blocks; block identities (and therefore the
    ``BLOCK_SPAWN_TAG`` seed streams) are untouched by construction.
    """
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be >= 0, got {num_blocks!r}")
    if num_blocks == 0:
        return 1
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots!r}")
    if amortization <= 0:
        raise ValueError(f"amortization must be > 0, got {amortization!r}")
    if oversubscription < 1:
        raise ValueError(
            f"oversubscription must be >= 1, got {oversubscription!r}"
        )
    target = slots * oversubscription
    if (
        block_seconds is not None
        and round_trip_seconds is not None
        and block_seconds > 0
        and round_trip_seconds > 0
    ):
        total_compute = num_blocks * block_seconds
        amortized_cap = int(total_compute / (amortization * round_trip_seconds))
        target = min(target, amortized_cap)
    target = max(target, min(slots, num_blocks))
    return max(1, min(target, num_blocks))


def block_seed(master: "SeedLike", index: int) -> "np.random.SeedSequence":
    """The seed sequence of block ``index`` under master seed ``master``.

    Extends the master's spawn key with ``(BLOCK_SPAWN_TAG, index)``, so the
    block stream depends only on the master seed and the block index —
    never on shard grouping — and cannot collide with per-realisation or
    named-stream spawns from the same master.
    """
    import numpy as np

    root = (
        master
        if isinstance(master, np.random.SeedSequence)
        else np.random.SeedSequence(master)
    )
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (BLOCK_SPAWN_TAG, index),
    )


def shard_plan_key(spec: ScenarioSpec) -> str:
    """The sharding-invariant identity of a spec's seed-block universe.

    Everything that changes the per-block sample is in: system, workload,
    policy, seed, backend, package version, shard format.  Everything that
    merely changes how blocks are *grouped or counted* is out: ``name``,
    ``mc_realisations``, ``shards``.  ``shard_block`` is dropped too — a
    block's identity already carries its range, so differently-sized blocks
    can never alias.
    """
    payload = spec.to_dict()
    for key in ("name", "mc_realisations", "shards", "shard_block"):
        payload.pop(key, None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    salted = (
        f"{hashlib.sha256(canonical.encode('utf-8')).hexdigest()}"
        f"\nrepro=={__version__}"
        f"\nbackend={spec.backend}"
        f"\nshard-format={SHARD_FORMAT_VERSION}"
    )
    return hashlib.sha256(salted.encode("utf-8")).hexdigest()


def block_key(plan_key: str, block: SeedBlock) -> str:
    """The shard-cache key of one seed block under ``plan_key``."""
    payload = f"{plan_key}:block={block.index}:range={block.start}-{block.stop}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
