"""A small typed client for the results service (stdlib ``http.client``).

Synchronous on purpose: its consumers are tests, scripts and notebooks that
want a blocking ``submit → wait → result`` flow, and keeping it off asyncio
means it can drive a service running in another process, another thread or
another machine identically.  One connection per request mirrors the
server's single-request connections.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import quote, urlsplit

import http.client


class ServiceError(Exception):
    """A non-2xx response from the service, carrying the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass
class JobView:
    """Typed snapshot of a job record."""

    id: str
    state: str
    total_points: int
    completed_points: int
    results: List[Dict[str, Any]]
    error: Optional[str]
    request: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobView":
        return cls(
            id=payload["id"],
            state=payload["state"],
            total_points=payload["total_points"],
            completed_points=payload["completed_points"],
            results=payload["results"],
            error=payload["error"],
            request=payload.get("request", {}),
        )

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    @property
    def content_hashes(self) -> Tuple[str, ...]:
        return tuple(point["content_hash"] for point in self.results)


@dataclass
class ResultView:
    """Typed snapshot of a cached result fetched by content hash."""

    name: str
    kind: str
    spec_hash: str
    cache_key: str
    backend: str
    scalars: Dict[str, Any]
    rendered: str
    arrays: Tuple[str, ...]
    etag: str
    array_values: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any], etag: str) -> "ResultView":
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            spec_hash=payload["spec_hash"],
            cache_key=payload["cache_key"],
            backend=payload["backend"],
            scalars=payload["scalars"],
            rendered=payload["rendered"],
            arrays=tuple(payload["arrays"]),
            etag=etag,
            array_values=payload.get("array_values", {}),
        )


class ServiceClient:
    """Talk to a running results service at ``base_url``.

    ``wire`` controls the worker-endpoint encoding: ``"auto"`` (default)
    advertises the binary frame format (:mod:`repro.distributed.frames`)
    via ``Accept`` on every claim and upgrades to frame-encoded bodies the
    moment the board answers in frames; ``"json"`` pins plain JSON.  Both
    rollout directions are safe: an old board ignores the ``Accept`` header
    and keeps replying JSON (the client never upgrades), and an old client
    never advertises, so a new board answers it in JSON.
    """

    def __init__(
        self, base_url: str, timeout: float = 60.0, wire: str = "auto"
    ) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.hostname is None:
            raise ValueError(f"cannot parse service URL {base_url!r}")
        if wire not in ("auto", "json"):
            raise ValueError(f"wire must be 'auto' or 'json', got {wire!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.wire = wire
        #: Flips true on the first frame-encoded reply from the board.
        self._peer_speaks_frames = False

    # -- plumbing ----------------------------------------------------------

    def _exchange(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One raw request/response round-trip (body bytes untouched)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=dict(headers or {}))
            response = connection.getresponse()
            raw = response.read()
            response_headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, response_headers, raw
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        body = None if payload is None else json.dumps(payload)
        status, response_headers, raw = self._exchange(
            method, path, body, headers
        )
        parsed = json.loads(raw) if raw else None
        return status, response_headers, parsed

    def _json(self, method: str, path: str, payload: Any = None) -> Any:
        status, _headers, parsed = self._request(method, path, payload)
        if status >= 400:
            message = (parsed or {}).get("error", "") if isinstance(parsed, dict) else ""
            raise ServiceError(status, message)
        return parsed

    def _wire_json(self, method: str, path: str, payload: Any = None) -> Any:
        """A worker-endpoint exchange in the negotiated encoding.

        Requests advertise frames via ``Accept``; bodies stay JSON until
        the board has demonstrably answered in frames at least once, so a
        frame body is never sent to a JSON-only board.
        """
        if self.wire != "auto":
            return self._json(method, path, payload)
        from repro.distributed.frames import (
            FRAME_CONTENT_TYPE,
            FrameError,
            decode_frame,
            encode_frame,
        )

        headers = {"Accept": FRAME_CONTENT_TYPE}
        if payload is None:
            body: Any = None
        elif self._peer_speaks_frames:
            body = encode_frame(payload)
            headers["Content-Type"] = FRAME_CONTENT_TYPE
        else:
            body = json.dumps(payload)
            headers["Content-Type"] = "application/json"
        status, response_headers, raw = self._exchange(
            method, path, body, headers
        )
        content_type = (
            (response_headers.get("content-type") or "").partition(";")[0].strip()
        )
        if content_type == FRAME_CONTENT_TYPE:
            try:
                parsed: Any = decode_frame(raw)
            except FrameError as error:
                raise ServiceError(status, f"bad frame reply: {error}")
            self._peer_speaks_frames = True
        else:
            parsed = json.loads(raw) if raw else None
        if status >= 400:
            message = (parsed or {}).get("error", "") if isinstance(parsed, dict) else ""
            raise ServiceError(status, message)
        return parsed

    def _text(self, method: str, path: str) -> str:
        """A non-JSON body (Prometheus text, NDJSON traces)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path)
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                message = ""
                try:
                    message = json.loads(raw).get("error", "")
                except ValueError:
                    pass
                raise ServiceError(response.status, message)
            return raw.decode("utf-8")
        finally:
            connection.close()

    # -- endpoints ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        """The service's /metrics endpoint, raw Prometheus text."""
        return self._text("GET", "/metrics")

    def job_trace(self, job_id: str) -> List[Dict[str, Any]]:
        """The job's span log as a list of span dicts (may be empty)."""
        text = self._text("GET", f"/v1/jobs/{job_id}/trace")
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def catalog(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/scenarios")

    def scenario(self, name: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/scenarios/{quote(name, safe='')}")

    def submit(
        self,
        scenario: Optional[str] = None,
        scenarios: Optional[List[str]] = None,
        family: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
        quick: bool = False,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        force: bool = False,
        shards: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> JobView:
        payload: Dict[str, Any] = {"quick": quick, "force": force}
        if seed is not None:
            payload["seed"] = seed
        if backend is not None:
            payload["backend"] = backend
        if shards is not None:
            payload["shards"] = shards
        if executor is not None:
            payload["executor"] = executor
        for key, value in (
            ("scenario", scenario),
            ("scenarios", scenarios),
            ("family", family),
            ("spec", spec),
        ):
            if value is not None:
                payload[key] = value
        return JobView.from_payload(self._json("POST", "/v1/jobs", payload))

    def jobs(self) -> List[JobView]:
        payload = self._json("GET", "/v1/jobs")
        return [JobView.from_payload(job) for job in payload["jobs"]]

    def job(self, job_id: str) -> JobView:
        return JobView.from_payload(self._json("GET", f"/v1/jobs/{job_id}"))

    def wait(self, job_id: str, timeout: float = 120.0, interval: float = 0.2) -> JobView:
        """Poll until the job finishes; raises on timeout or failure."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view.finished:
                if view.state == "failed":
                    raise ServiceError(500, f"job {job_id} failed: {view.error}")
                return view
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {view.state} after {timeout}s "
                    f"({view.completed_points}/{view.total_points} points)"
                )
            time.sleep(interval)

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream a job's NDJSON progress events until it finishes."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                message = ""
                if raw:
                    try:
                        message = json.loads(raw).get("error", "")
                    except ValueError:
                        pass
                raise ServiceError(response.status, message)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    # -- shard-worker API (used by `repro worker`) -------------------------

    def register_worker(self, name: str) -> str:
        """Register as a shard worker; returns the assigned worker id."""
        payload = self._json("POST", "/v1/workers", {"name": name})
        return payload["worker_id"]

    def claim_work(
        self,
        worker_id: str,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """The next shard work item queued for this worker, or ``None``.

        ``telemetry`` (``{"metrics": snapshot, "seq": n, "name": ...}``)
        piggybacks the worker's cumulative metrics snapshot on the claim —
        no extra round trip for fleet aggregation.
        """
        body = {"telemetry": telemetry} if telemetry else None
        payload = self._wire_json("POST", f"/v1/workers/{worker_id}/claim", body)
        return payload.get("item")

    def claim_work_batch(
        self,
        worker_id: str,
        batch: int = 1,
        token: Optional[str] = None,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Claim up to ``batch`` work items in one round-trip.

        Returns ``{"items": [...], "protocol": n}``.  A protocol-2 board
        answers the batched form directly; a v1 board ignores the ``batch``
        field and replies with a single ``item``, which is normalised into
        a 0- or 1-element list with ``protocol`` 1 — so callers can pick
        their result-posting style off the reply.  ``token`` makes the
        claim idempotent on protocol-2 boards: retrying the same token
        after a lost response re-delivers the same items instead of
        claiming fresh ones.
        """
        body: Dict[str, Any] = {"batch": int(batch)}
        if token is not None:
            body["token"] = token
        if telemetry:
            body["telemetry"] = telemetry
        payload = self._wire_json("POST", f"/v1/workers/{worker_id}/claim", body)
        if "items" in payload:
            return {
                "items": list(payload.get("items") or []),
                "protocol": int(payload.get("protocol") or 2),
            }
        item = payload.get("item")
        return {"items": [item] if item is not None else [], "protocol": 1}

    def post_work_results(
        self,
        worker_id: str,
        outcomes: List[Dict[str, Any]],
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> List[bool]:
        """Post a batch of shard outcomes in one round-trip (protocol 2).

        Each outcome is ``{"id": item_id, "result": ...}`` or
        ``{"id": item_id, "error": ...}``.  Returns per-outcome acceptance
        flags in order; ``False`` means that item was reassigned.
        """
        payload: Dict[str, Any] = {"results": list(outcomes)}
        if telemetry is not None:
            payload["telemetry"] = telemetry
        response = self._wire_json(
            "POST", f"/v1/workers/{worker_id}/results", payload
        )
        accepted = response.get("accepted")
        if isinstance(accepted, list):
            return [bool(flag) for flag in accepted]
        return [bool(accepted)] * len(outcomes)

    def post_work_result(
        self,
        worker_id: str,
        item_id: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Post a shard outcome; ``False`` means the item was reassigned."""
        payload: Dict[str, Any] = {"id": item_id}
        if result is not None:
            payload["result"] = result
        if error is not None:
            payload["error"] = error
        if telemetry is not None:
            payload["telemetry"] = telemetry
        response = self._wire_json(
            "POST", f"/v1/workers/{worker_id}/results", payload
        )
        return bool(response.get("accepted"))

    def shard_workers(self) -> List[Dict[str, Any]]:
        """The service's registered shard workers (fleet view)."""
        return self._json("GET", "/v1/workers")["workers"]

    def fleet(self) -> Dict[str, Any]:
        """The aggregated fleet telemetry summary (``GET /v1/fleet``)."""
        return self._json("GET", "/v1/fleet")

    def runs(
        self, limit: int = 50, offset: int = 0, **filters: Any
    ) -> Dict[str, Any]:
        """A page of the run-history ledger (``GET /v1/runs``).

        ``filters`` forwards as query parameters: ``kind``, ``scenario``,
        ``backend``, ``executor``, ``spec_hash``, ``since``, ``until``.
        """
        params = {"limit": limit, "offset": offset, **filters}
        query = "&".join(
            f"{quote(str(k), safe='')}={quote(str(v), safe='')}"
            for k, v in params.items()
            if v is not None
        )
        return self._json("GET", f"/v1/runs?{query}")

    def run_record(self, run_id: str) -> Dict[str, Any]:
        """One run-history record plus its sentinel verdict."""
        return self._json("GET", f"/v1/runs/{quote(run_id, safe='')}")

    def result(
        self,
        content_hash: str,
        etag: Optional[str] = None,
        include_arrays: bool = False,
    ) -> Optional[ResultView]:
        """Fetch a cached result by content hash.

        With ``etag`` set, a matching ``304 Not Modified`` returns ``None``
        — the caller's copy is current.  Unknown hashes raise
        :class:`ServiceError` (404).
        """
        path = f"/v1/results/{content_hash}"
        if include_arrays:
            path += "?arrays=1"
        headers = {"If-None-Match": etag} if etag else None
        status, response_headers, parsed = self._request("GET", path, headers=headers)
        if status == 304:
            return None
        if status >= 400:
            message = (parsed or {}).get("error", "") if isinstance(parsed, dict) else ""
            raise ServiceError(status, message)
        return ResultView.from_payload(parsed, etag=response_headers.get("etag", ""))
