"""Excess-load computation and partitioning (eqs. (6)–(7) of the paper).

LBP-2's initial balancing action divides the total system workload in
proportion to the nodes' processing speeds.  Node ``j``'s *excess load* is

.. math::

    L^{excess}_j = \\Bigl(m_j - \\frac{\\lambda_{dj}}{\\sum_k \\lambda_{dk}}
                   \\sum_l m_l\\Bigr)^+ ,

i.e. whatever it holds above its speed-weighted fair share.  The excess is
then partitioned among the other ``n - 1`` nodes with fractions

.. math::

    p_{ij} = \\frac{1}{n-2}\\Bigl(1 -
             \\frac{\\lambda_{di}^{-1} m_i}{\\sum_{l \\ne j} \\lambda_{dl}^{-1} m_l}\\Bigr)
    \\qquad (n \\ge 3), \\qquad p_{ij} = 1 \\; (n = 2),

which hands a larger portion to nodes whose *normalised* backlog
(``m_i / λ_di``, i.e. expected local drain time) is smaller.  Finally a
user-chosen gain ``K ∈ [0, 1]`` attenuates the transfer:
``L_ij = K · p_ij · L^{excess}_j``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.parameters import SystemParameters, validate_workload
from repro.core.policies.base import Transfer

# This module is deliberately numpy-free: the policy specs of the scenario
# subsystem import it at module load, and the service/CLI request path must
# stay importable without the numerical stack.  The arrays involved are tiny
# (one entry per node), so scalar arithmetic is just as fast.


def fair_shares(workload: Sequence[int], params: SystemParameters) -> Tuple[float, ...]:
    """Speed-weighted fair share of the total workload for every node.

    Node ``j``'s share is ``(λ_dj / Σ_k λ_dk) · Σ_l m_l``.
    """
    loads = validate_workload(workload, params)
    total = float(sum(loads))
    rates = [float(r) for r in params.service_rates]
    rate_sum = sum(rates)
    return tuple(r / rate_sum * total for r in rates)


def excess_loads(workload: Sequence[int], params: SystemParameters) -> Tuple[float, ...]:
    """Excess load ``(m_j - fair share)^+`` of every node (eq. (6) text)."""
    loads = validate_workload(workload, params)
    shares = fair_shares(loads, params)
    return tuple(max(m - s, 0.0) for m, s in zip(loads, shares))


def partition_fractions(
    workload: Sequence[int], params: SystemParameters, sender: int
) -> Tuple[float, ...]:
    """Partition fractions ``p_{i,sender}`` of the sender's excess load (eq. (6)).

    Returns a tuple of length ``n`` with ``p[sender] = 0`` and the remaining
    entries summing to 1 (for any ``n >= 2``).
    """
    loads = validate_workload(workload, params)
    n = params.num_nodes
    if not 0 <= sender < n:
        raise IndexError(f"sender index {sender} out of range for {n} nodes")
    if n < 2:
        raise ValueError("partitioning requires at least two nodes")

    if n == 2:
        fractions = [0.0, 0.0]
        fractions[1 - sender] = 1.0
        return tuple(fractions)

    rates = [float(r) for r in params.service_rates]
    normalised_backlog = [m / r for m, r in zip(loads, rates)]  # λ_di^{-1} m_i
    others = [i for i in range(n) if i != sender]
    denom = float(sum(normalised_backlog[i] for i in others))

    fractions = [0.0] * n
    if denom == 0.0:
        # All receivers are empty: split the excess evenly.
        for i in others:
            fractions[i] = 1.0 / len(others)
    else:
        for i in others:
            fractions[i] = (1.0 - normalised_backlog[i] / denom) / (n - 2)
    return tuple(fractions)


def initial_excess_transfers(
    workload: Sequence[int],
    params: SystemParameters,
    gain: float,
) -> List[Transfer]:
    """The initial balancing action of LBP-2 (eq. (7)): ``L_ij = K p_ij L^excess_j``.

    Every overloaded node ``j`` computes its excess and sprays
    ``K · p_ij · L^{excess}_j`` tasks (rounded to integers) towards each other
    node ``i``.  Empty transfers are dropped.
    """
    if not 0.0 <= gain <= 1.0:
        raise ValueError(f"gain must lie in [0, 1], got {gain!r}")
    loads = validate_workload(workload, params)
    excesses = excess_loads(loads, params)

    transfers: List[Transfer] = []
    for sender, excess in enumerate(excesses):
        if excess <= 0.0:
            continue
        fractions = partition_fractions(loads, params, sender)
        for receiver, fraction in enumerate(fractions):
            if receiver == sender or fraction <= 0.0:
                continue
            num = int(round(gain * fraction * excess))
            num = min(num, loads[sender])
            if num > 0:
                transfers.append(Transfer(sender, receiver, num))
    return transfers
