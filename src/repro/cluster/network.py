"""The interconnect: load-dependent, random transfer delays.

The paper (Section 2 and Fig. 2) models the delay of moving a batch of ``L``
tasks between two nodes as a random variable whose mean grows linearly with
``L`` (≈ 0.02 s per task on the wireless test-bed) and whose law is well
approximated by an exponential.  :class:`Network` implements that model and
two alternatives:

* ``"exponential"`` — one exponential draw for the whole batch with mean
  ``overhead + d·L`` (the assumption under which the regeneration analysis
  is exact);
* ``"erlang"`` — the sum of ``L`` independent per-task exponential delays
  (same mean, lower variance; closer to the measured per-task histogram);
* ``"deterministic"`` — a fixed delay of ``overhead + d·L`` (the classical
  deterministic-delay assumption the paper argues against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cluster.task import Task
from repro.core.parameters import SystemParameters, TransferDelayModel
from repro.sim.engine import Environment


@dataclass
class TransferRecord:
    """Book-keeping entry for one batch transfer."""

    source: int
    destination: int
    num_tasks: int
    started_at: float
    delay: float
    arrived_at: Optional[float] = None
    reason: str = "initial"

    @property
    def in_flight(self) -> bool:
        """Whether the batch is still on the network."""
        return self.arrived_at is None


class Network:
    """Moves batches of tasks between nodes with random, load-dependent delay.

    Parameters
    ----------
    env:
        Simulation environment.
    params:
        System parameters (provide the per-link delay models).
    rng:
        Random stream for transfer delays.
    deliver:
        Callback ``f(destination_index, tasks)`` that hands a delivered batch
        to the receiving node.
    on_transfer_started / on_transfer_arrived:
        Optional tracing callbacks ``f(record)``.
    """

    def __init__(
        self,
        env: Environment,
        params: SystemParameters,
        rng: np.random.Generator,
        deliver: Callable[[int, List[Task]], None],
        on_transfer_started: Optional[Callable[[TransferRecord], None]] = None,
        on_transfer_arrived: Optional[Callable[[TransferRecord], None]] = None,
    ) -> None:
        self.env = env
        self.params = params
        self.rng = rng
        self._deliver = deliver
        self._on_started = on_transfer_started
        self._on_arrived = on_transfer_arrived

        self.records: List[TransferRecord] = []
        self._in_transit_tasks = 0

    # -- public interface -------------------------------------------------------

    @property
    def tasks_in_transit(self) -> int:
        """Number of tasks currently on the network."""
        return self._in_transit_tasks

    @property
    def total_transferred(self) -> int:
        """Total number of tasks ever put on the network."""
        return sum(record.num_tasks for record in self.records)

    def sample_delay(self, source: int, destination: int, num_tasks: int) -> float:
        """Draw a transfer delay for a batch of ``num_tasks`` tasks."""
        model = self.params.delay_model(source, destination)
        return sample_batch_delay(model, num_tasks, self.rng)

    def transfer(
        self,
        source: int,
        destination: int,
        tasks: Sequence[Task],
        reason: str = "initial",
    ) -> Optional[TransferRecord]:
        """Put ``tasks`` on the network from ``source`` towards ``destination``.

        Returns the :class:`TransferRecord`, or ``None`` for an empty batch.
        """
        batch = list(tasks)
        if not batch:
            return None
        if source == destination:
            raise ValueError("source and destination must differ")

        for task in batch:
            task.mark_in_transit()

        delay = self.sample_delay(source, destination, len(batch))
        record = TransferRecord(
            source=source,
            destination=destination,
            num_tasks=len(batch),
            started_at=self.env.now,
            delay=delay,
            reason=reason,
        )
        self.records.append(record)
        self._in_transit_tasks += len(batch)
        if self._on_started is not None:
            self._on_started(record)

        self.env.process(
            self._deliver_after_delay(record, batch),
            name=f"transfer-{source}->{destination}",
        )
        return record

    # -- internal -----------------------------------------------------------------

    def _deliver_after_delay(self, record: TransferRecord, batch: List[Task]):
        yield self.env.timeout(record.delay)
        record.arrived_at = self.env.now
        self._in_transit_tasks -= record.num_tasks
        self._deliver(record.destination, batch)
        if self._on_arrived is not None:
            self._on_arrived(record)


def sample_batch_delay(
    model: TransferDelayModel, num_tasks: int, rng: np.random.Generator
) -> float:
    """Draw one batch-transfer delay according to ``model``.

    The mean is ``model.mean_delay(num_tasks)`` for every ``kind``; only the
    variability differs.
    """
    if num_tasks < 0:
        raise ValueError(f"num_tasks must be >= 0, got {num_tasks!r}")
    if num_tasks == 0:
        return 0.0
    mean = model.mean_delay(num_tasks)
    if mean == 0.0:
        return 0.0
    if model.kind == "deterministic":
        return mean
    if model.kind == "erlang":
        # Sum of num_tasks iid exponentials, each with the per-task mean,
        # plus the deterministic overhead.
        variable = rng.gamma(num_tasks, model.mean_delay_per_task)
        return float(model.fixed_overhead + variable)
    # "exponential": a single draw for the whole batch.
    return float(rng.exponential(mean))
