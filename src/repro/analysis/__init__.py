"""Statistical analysis utilities: empirical pdfs, exponential fits, reporting.

Used by the test-bed calibration workflow (Figs. 1 and 2 of the paper: the
empirical processing-time and transfer-delay histograms and their
exponential approximations) and by the experiment drivers to render the
paper's tables as plain text.
"""

from repro.analysis.empirical import EmpiricalDensity, empirical_density, histogram_pdf
from repro.analysis.fitting import ExponentialFit, fit_exponential
from repro.analysis.linfit import LinearFit, fit_linear
from repro.analysis.reporting import format_series, format_table
from repro.analysis.tables import Table

__all__ = [
    "EmpiricalDensity",
    "ExponentialFit",
    "LinearFit",
    "Table",
    "empirical_density",
    "fit_exponential",
    "fit_linear",
    "format_series",
    "format_table",
    "histogram_pdf",
]
