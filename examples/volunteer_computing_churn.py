#!/usr/bin/env python
"""Volunteer-computing churn: the SETI@home-style scenario of the paper's intro.

The introduction of the paper motivates churn-aware load balancing with
systems like SETI@home, where a pool of dedicated servers is complemented by
volunteer desktops that "can go off-line anytime, regardless of the portion
of the load assigned to them".

This example builds such a pool: one fast, reliable dedicated node plus
three volunteer nodes with increasingly aggressive churn, all sharing a
non-negligible transfer delay.  It then compares four policies on a large
analysis batch:

* doing nothing (every node keeps its initial share),
* a speed-proportional one-shot split that ignores churn,
* the churn-aware preemptive LBP-1 (one-shot, attenuated gain), and
* the reactive LBP-2 (compensation at every failure).

Run it with ``python examples/volunteer_computing_churn.py``.
"""

import numpy as np

from repro import (
    LBP1,
    LBP2,
    NoBalancing,
    NodeParameters,
    ProportionalOneShot,
    SystemParameters,
    TransferDelayModel,
    compare_policies,
)
from repro.analysis.reporting import format_table
from repro.analysis.tables import Table


def build_volunteer_pool() -> SystemParameters:
    """One dedicated server plus three volunteer desktops with churn."""
    nodes = (
        # Dedicated work-unit server: moderate speed, effectively always on.
        NodeParameters(service_rate=2.0, failure_rate=1 / 3600.0,
                       recovery_rate=1 / 30.0, name="dedicated"),
        # Volunteers: their owners interrupt them ever more often.
        NodeParameters(service_rate=2.0, failure_rate=1 / 300.0,
                       recovery_rate=1 / 30.0, name="volunteer-a"),
        NodeParameters(service_rate=1.5, failure_rate=1 / 200.0,
                       recovery_rate=1 / 45.0, name="volunteer-b"),
        NodeParameters(service_rate=1.0, failure_rate=1 / 120.0,
                       recovery_rate=1 / 60.0, name="volunteer-c"),
    )
    # A wide-area link: 20 ms per task plus connection set-up.
    delay = TransferDelayModel(mean_delay_per_task=0.02, fixed_overhead=0.1)
    return SystemParameters(nodes=nodes, delay=delay)


def main() -> None:
    params = build_volunteer_pool()
    # The dedicated node received the whole analysis batch; the volunteers
    # start idle — the classic "work unit server" situation.
    workload = (600, 0, 0, 0)

    print("Volunteer pool:")
    for index, node in enumerate(params.nodes):
        availability = node.availability * 100.0
        print(f"  {node.name:<12} rate {node.service_rate:.1f} tasks/s, "
              f"mean up-time {node.mean_time_to_failure:6.0f} s, "
              f"steady-state availability {availability:5.1f} %")
    print()

    policies = [
        NoBalancing(),
        ProportionalOneShot(),
        LBP1(gain=0.6),   # attenuated one-shot spread (churn-aware)
        LBP1(gain=1.0),   # full one-shot spread (churn-oblivious strength)
        LBP2(gain=1.0),   # reactive compensation at every failure
    ]
    labels = {
        "no-balancing": "keep everything on the dedicated node",
        "proportional-one-shot": "speed-proportional split (ignores churn)",
        "LBP-1": "one-shot excess split with gain K",
        "LBP-2": "excess split + compensation at failures",
    }

    estimates = compare_policies(
        params, workload, policies, num_realisations=150, seed=11
    )

    table = Table(["policy", "gain", "mean completion (s)", "95% CI half-width"],
                  title="Completing 600 tasks on the volunteer pool")
    for (key, estimate), policy in zip(estimates.items(), policies):
        gain = getattr(policy, "gain", float("nan"))
        table.add_row({
            "policy": key,
            "gain": gain,
            "mean completion (s)": estimate.mean_completion_time,
            "95% CI half-width": estimate.summary.half_width,
        })
    print(format_table(table, float_format="{:.1f}"))
    print()
    for name, description in labels.items():
        print(f"  {name:<22} {description}")
    print()
    hoard = next(iter(estimates.values()))
    best = min(estimates.values(), key=lambda e: e.mean_completion_time)
    speedup = hoard.mean_completion_time / best.mean_completion_time
    print(f"Spreading the batch across the volunteer pool completes it "
          f"{speedup:.1f}x faster than hoarding it on the dedicated server, "
          "even though the volunteers keep dropping out.  Two of the paper's "
          "effects are visible in the table: attenuating the one-shot gain "
          "(K = 0.6 vs K = 1.0) pays off because a full spread strands work "
          "on the least reliable desktops, and LBP-2's compensation at every "
          "failure instant claws back most of what the one-shot policies lose "
          "to churn.")


if __name__ == "__main__":
    main()
