"""Unit tests for the shared pool-size cap (deduplicated sizing rule)."""

import pytest

from repro.montecarlo.pooling import cap_pool_size, default_pool_size


class TestCapPoolSize:
    def test_explicit_request_capped_at_item_count(self):
        assert cap_pool_size(8, 3) == 3

    def test_explicit_request_below_item_count_is_kept(self):
        assert cap_pool_size(2, 100) == 2

    def test_default_is_capped_at_item_count(self):
        assert cap_pool_size(None, 2) <= 2

    def test_default_is_at_least_one(self):
        assert cap_pool_size(None, 1) == 1

    def test_zero_items_rejected(self):
        with pytest.raises(ValueError, match="num_items"):
            cap_pool_size(4, 0)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="pool size"):
            cap_pool_size(0, 4)

    def test_default_pool_size_is_positive_and_polite(self):
        assert 1 <= default_pool_size() <= 4


class TestSharedUsage:
    def test_executor_resolution_uses_the_cap(self):
        """The shard-executor path sizes process pools with the same rule."""
        from repro.distributed.executors import ProcessShardExecutor, resolve_executor

        resolved = resolve_executor("process", workers=16, num_items=3)
        try:
            assert isinstance(resolved, ProcessShardExecutor)
            assert resolved.workers == 3
        finally:
            resolved.close()

    def test_futures_wrapper_slots_are_capped(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.distributed.executors import resolve_executor

        with ThreadPoolExecutor(max_workers=8) as pool:
            resolved = resolve_executor(pool, num_items=2)
            assert len(resolved.slots()) == 2
            resolved.close()
            # Closing the wrapper leaves the caller's pool usable.
            assert pool.submit(lambda: 1).result() == 1
