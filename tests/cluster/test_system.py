"""Tests for the full simulated distributed system."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.system import (
    DistributedSystem,
    IncompleteSimulationError,
    SimulationResult,
    simulate_once,
)
from repro.cluster.workload import Workload
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.core.policies import LBP1, LBP2, NoBalancing, SendAllOnFailure


class TestBasicRuns:
    def test_empty_workload_completes_instantly(self, fast_params):
        result = simulate_once(fast_params, NoBalancing(), (0, 0), seed=0)
        assert result.completion_time == 0.0
        assert result.total_completed == 0

    def test_all_tasks_completed(self, fast_params):
        result = simulate_once(fast_params, NoBalancing(), (20, 10), seed=1)
        assert result.total_completed == 30
        assert result.completion_time > 0

    def test_workload_node_count_mismatch_rejected(self, fast_params):
        with pytest.raises(ValueError):
            DistributedSystem(fast_params, NoBalancing(), (10, 10, 10), seed=0)

    def test_reproducible_given_seed(self, fast_params):
        a = simulate_once(fast_params, LBP1(0.4), (30, 10), seed=42).completion_time
        b = simulate_once(fast_params, LBP1(0.4), (30, 10), seed=42).completion_time
        assert a == b

    def test_different_seeds_differ(self, fast_params):
        a = simulate_once(fast_params, LBP1(0.4), (30, 10), seed=1).completion_time
        b = simulate_once(fast_params, LBP1(0.4), (30, 10), seed=2).completion_time
        assert a != b

    def test_accepts_workload_object(self, fast_params):
        result = simulate_once(fast_params, NoBalancing(), Workload((5, 5)), seed=0)
        assert result.total_tasks == 10

    def test_result_fields_consistent(self, fast_params):
        result = simulate_once(fast_params, LBP1(0.5), (25, 5), seed=3)
        assert isinstance(result, SimulationResult)
        assert result.total_tasks == 30
        assert sum(result.tasks_completed_per_node) == 30
        assert result.policy_name == "LBP-1"
        assert result.workload == (25, 5)
        assert all(b >= 0 for b in result.busy_time_per_node)
        assert 0.0 <= result.utilisation(0) <= 1.0


class TestPolicyExecution:
    def test_no_balancing_transfers_nothing(self, fast_params):
        result = simulate_once(fast_params, NoBalancing(), (20, 0), seed=0)
        assert result.initial_transfers == []
        assert result.total_transferred == 0

    def test_lbp1_initial_transfer_size(self, fast_params):
        result = simulate_once(
            fast_params, LBP1(0.5, sender=0, receiver=1), (20, 0), seed=0
        )
        assert len(result.initial_transfers) == 1
        assert result.initial_transfers[0].num_tasks == 10
        assert result.total_transferred == 10

    def test_lbp1_gain_zero_transfers_nothing(self, fast_params):
        result = simulate_once(
            fast_params, LBP1(0.0, sender=0, receiver=1), (20, 0), seed=0
        )
        assert result.initial_transfers == []

    def test_lbp2_compensates_on_failures(self):
        # High failure rate (to guarantee failures during the run) and slow
        # recovery (so the eq. (8) compensation size is at least one task).
        params = SystemParameters(
            nodes=(
                NodeParameters(2.0, failure_rate=0.5, recovery_rate=0.25),
                NodeParameters(3.0, failure_rate=0.5, recovery_rate=0.25),
            ),
            delay=TransferDelayModel(0.01),
        )
        result = simulate_once(params, LBP2(1.0), (60, 10), seed=5)
        reasons = {record.reason for record in result.transfer_records}
        assert result.total_failures > 0
        assert "failure-compensation" in reasons

    def test_send_all_on_failure_moves_whole_queue(self):
        params = SystemParameters(
            nodes=(
                NodeParameters(1.0, failure_rate=1.0, recovery_rate=0.2),
                NodeParameters(5.0, failure_rate=0.001, recovery_rate=1.0),
            ),
            delay=TransferDelayModel(0.001),
        )
        result = simulate_once(params, SendAllOnFailure(), (50, 0), seed=2)
        compensation = [
            record
            for record in result.transfer_records
            if record.reason == "failure-compensation"
        ]
        assert compensation, "the failing node should have shipped its queue"
        assert result.total_completed == 50

    def test_conservation_of_tasks(self, fast_params):
        """No tasks are created or lost by transfers, failures or recoveries."""
        result = simulate_once(fast_params, LBP2(1.0), (40, 20), seed=9)
        assert result.total_completed == 60


class TestTracing:
    def test_trace_disabled_by_default(self, fast_params):
        result = simulate_once(fast_params, NoBalancing(), (5, 5), seed=0)
        assert result.trace is None

    def test_trace_records_queues_and_completion(self, fast_params):
        system = DistributedSystem(
            fast_params, LBP1(0.4, sender=0, receiver=1), (20, 5), seed=0,
            record_trace=True,
        )
        result = system.run()
        assert result.trace is not None
        assert len(result.trace.queues[0]) > 0
        assert len(result.trace.queues[1]) > 0
        completions = result.trace.events_of_kind("completion")
        assert len(completions) == 1
        assert completions[0].time == pytest.approx(result.completion_time)

    def test_trace_queue_ends_at_zero(self, fast_params):
        system = DistributedSystem(
            fast_params, NoBalancing(), (10, 10), seed=1, record_trace=True
        )
        result = system.run()
        for node in (0, 1):
            values = result.trace.queues[node].values
            assert values[-1] == 0.0

    def test_failure_events_traced(self):
        params = SystemParameters(
            nodes=(
                NodeParameters(1.0, failure_rate=0.5, recovery_rate=1.0),
                NodeParameters(1.0, failure_rate=0.5, recovery_rate=1.0),
            ),
            delay=TransferDelayModel(0.01),
        )
        system = DistributedSystem(params, NoBalancing(), (30, 30), seed=3,
                                   record_trace=True)
        result = system.run()
        assert len(result.trace.failure_times()) == result.total_failures


class TestHorizon:
    def test_horizon_exceeded_raises(self, fast_params):
        system = DistributedSystem(fast_params, NoBalancing(), (1000, 1000), seed=0)
        with pytest.raises(IncompleteSimulationError):
            system.run(horizon=0.01)

    def test_horizon_large_enough_is_fine(self, fast_params):
        system = DistributedSystem(fast_params, NoBalancing(), (10, 10), seed=0)
        result = system.run(horizon=10_000.0)
        assert result.total_completed == 20


class TestStatisticalSanity:
    def test_single_reliable_node_mean_makespan(self):
        """With one working node and no transfers, E[T] = m / λ_d."""
        params = SystemParameters(
            nodes=(NodeParameters(4.0), NodeParameters(1.0)),
            delay=TransferDelayModel(0.0),
        )
        times = [
            simulate_once(params, NoBalancing(), (40, 0), seed=s).completion_time
            for s in range(150)
        ]
        assert np.mean(times) == pytest.approx(10.0, rel=0.08)

    def test_balancing_helps_unbalanced_workload(self, fast_params):
        """Moving load towards the idle node must reduce the mean makespan."""
        idle = [
            simulate_once(fast_params, NoBalancing(), (60, 0), seed=s).completion_time
            for s in range(60)
        ]
        balanced = [
            simulate_once(
                fast_params, LBP1(0.6, sender=0, receiver=1), (60, 0), seed=s
            ).completion_time
            for s in range(60)
        ]
        assert np.mean(balanced) < np.mean(idle)

    def test_preemption_modes_statistically_equivalent(self, fast_params):
        """Resume vs restart must not change the mean (exponential service)."""
        resume = [
            simulate_once(fast_params, NoBalancing(), (40, 40), seed=s,
                          preemption="resume").completion_time
            for s in range(80)
        ]
        restart = [
            simulate_once(fast_params, NoBalancing(), (40, 40), seed=s,
                          preemption="restart").completion_time
            for s in range(80)
        ]
        assert np.mean(resume) == pytest.approx(np.mean(restart), rel=0.15)


class TestPropertyBased:
    @given(
        m0=st.integers(min_value=0, max_value=40),
        m1=st.integers(min_value=0, max_value=40),
        gain=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_task_is_completed_exactly_once(self, m0, m1, gain, seed):
        params = SystemParameters(
            nodes=(
                NodeParameters(5.0, failure_rate=0.3, recovery_rate=0.6),
                NodeParameters(8.0, failure_rate=0.3, recovery_rate=0.5),
            ),
            delay=TransferDelayModel(0.01),
        )
        result = simulate_once(params, LBP1(gain), (m0, m1), seed=seed)
        assert result.total_completed == m0 + m1
        assert result.completion_time >= 0.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_lbp2_conserves_tasks_under_churn(self, seed):
        params = SystemParameters(
            nodes=(
                NodeParameters(5.0, failure_rate=0.5, recovery_rate=1.0),
                NodeParameters(8.0, failure_rate=0.5, recovery_rate=1.0),
            ),
            delay=TransferDelayModel(0.01),
        )
        result = simulate_once(params, LBP2(1.0), (30, 10), seed=seed)
        assert result.total_completed == 40
