"""Benchmark: regenerate Table 2 (LBP-2, Monte-Carlo and emulated experiment)."""

import pytest

from repro.experiments import common
from repro.experiments.table2_lbp2 import run as run_table2
from repro.experiments.table1_lbp1 import run as run_table1


@pytest.mark.benchmark(group="table2")
def test_table2_lbp2(benchmark, bench_once):
    result = bench_once(
        benchmark,
        run_table2,
        mc_realisations=common.PAPER_MC_REALISATIONS,
        experiment_realisations=common.PAPER_EXPERIMENT_REALISATIONS_LBP2,
        seed=707,
    )
    print()
    print(result.render())

    rows = {row.workload: row for row in result.rows}

    # Shape checks against the paper's Table 2:
    #  * initial gains are high (the paper finds 0.8-1.0; our no-failure
    #    optimum for the reversed workloads sits slightly lower);
    #  * MC and emulated experiment agree with each other;
    #  * the magnitudes line up with the paper's values (within ~10 %).
    for row in result.rows:
        assert row.initial_gain >= 0.6
        assert row.experiment == pytest.approx(row.monte_carlo, rel=0.15)

    assert rows[(200, 200)].monte_carlo == pytest.approx(
        common.PAPER_TABLE2[(200, 200)]["mc"], rel=0.10
    )
    assert rows[(200, 50)].monte_carlo == pytest.approx(
        common.PAPER_TABLE2[(200, 50)]["mc"], rel=0.10
    )


@pytest.mark.benchmark(group="table2")
def test_lbp2_beats_lbp1_for_every_table_workload(benchmark, bench_once):
    """The paper's comparison of Tables 1 and 2: LBP-2 wins at 0.02 s/task."""

    def both_tables():
        table1 = run_table1(experiment_realisations=8, seed=1606)
        table2 = run_table2(mc_realisations=150, experiment_realisations=8, seed=1707)
        return table1, table2

    table1, table2 = bench_once(benchmark, both_tables)
    lbp1_rows = {row.workload: row for row in table1.rows}
    lbp2_rows = {row.workload: row for row in table2.rows}
    wins = 0
    for workload in lbp1_rows:
        if lbp2_rows[workload].monte_carlo < lbp1_rows[workload].theory_with_failure:
            wins += 1
    # LBP-2 wins for (at least) the large majority of workloads, as in the paper.
    assert wins >= len(lbp1_rows) - 1
