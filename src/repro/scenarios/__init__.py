"""Scenario catalog and orchestration with content-addressed result caching.

This subsystem turns the reproduction from a set of bespoke per-figure
drivers into a data-driven catalog:

* :mod:`repro.scenarios.spec` — frozen :class:`ScenarioSpec` dataclasses
  with deterministic serialization and a stable content hash;
* :mod:`repro.scenarios.registry` — named scenarios (every paper artefact
  plus families such as delay/failure sweeps, multinode clusters, churn);
* :mod:`repro.scenarios.cache` — a content-addressed on-disk result store
  (``REPRO_CACHE_DIR`` or ``~/.cache/repro``) keyed by spec hash;
* :mod:`repro.scenarios.orchestrator` — the batch runner that expands
  families, shares one process pool across points and returns comparable
  :class:`ScenarioResult`\\ s.

Quick start
-----------
>>> from repro.scenarios import Orchestrator
>>> result = Orchestrator().run("smoke")   # doctest: +SKIP
>>> result.scalars["mean_completion_time"]  # doctest: +SKIP
"""

from repro.scenarios.cache import ResultCache, ScenarioResult
from repro.scenarios.orchestrator import Orchestrator, runner_kinds
from repro.scenarios.registry import (
    PAPER_ARTEFACTS,
    ScenarioEntry,
    ScenarioFamily,
    family_names,
    get_entry,
    get_family,
    register,
    register_family,
    resolve,
    scenario_names,
)
from repro.scenarios.spec import (
    DelaySpec,
    NodeSpec,
    PolicySpec,
    ScenarioSpec,
    SystemSpec,
)

__all__ = [
    "DelaySpec",
    "NodeSpec",
    "Orchestrator",
    "PAPER_ARTEFACTS",
    "PolicySpec",
    "ResultCache",
    "ScenarioEntry",
    "ScenarioFamily",
    "ScenarioResult",
    "ScenarioSpec",
    "SystemSpec",
    "family_names",
    "get_entry",
    "get_family",
    "register",
    "register_family",
    "resolve",
    "runner_kinds",
    "scenario_names",
]
