"""Cross-process trace propagation: ship span subtrees home and stitch them.

PR 6's tracer is process-local: spans recorded inside a pool subprocess or
a ``repro worker`` never reach the tracer that owns the job, so
``GET /v1/jobs/{id}/trace`` is blind below ``scheduler.shard``.  This
module closes that gap in three moves:

1. **Inject** — :func:`make_context` snapshots the active tracer (trace
   id, current span id, dispatch time) into a JSON-safe ``trace_ctx`` dict
   the scheduler attaches to each outgoing work item.
2. **Capture** — :func:`child_capture` (used by ``execute_work_item``)
   activates a fresh child :class:`~repro.obs.trace.Tracer` in the
   executing process when the item carries a ``trace_ctx``; the worker's
   spans land there, and :func:`export_subtree` serialises them — plus the
   child's receive/done clock readings — into the shard result.
3. **Stitch** — back in the scheduling process, :func:`stitch_subtree`
   maps the child's spans onto the parent tracer's timeline and grafts
   them under the shard's span.

The two processes share no clock: each tracer's timeline is seconds since
its own ``time.monotonic()`` epoch, and monotonic epochs are arbitrary
per process (and per boot, on another host).  The offset between the two
timelines is estimated NTP-style from the four timestamps we do have —
parent send ``t_send``, child receive ``c_recv``, child done ``c_done``,
parent ack ``t_recv``::

    offset = ((t_send - c_recv) + (t_recv - c_done)) / 2

i.e. assume the outbound and inbound wire delays are symmetric.  The
mapped child interval is then clamped into ``[t_send, t_recv]`` so clock
skew can never make a child span overhang its parent; what remains of the
round trip on either side of the mapped busy interval *is* the visible
wire/queue gap.
"""

from __future__ import annotations

import contextlib
import os
import socket
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span, Tracer, current_tracer

#: Schema tag for the ``trace_ctx`` dict and the shipped subtree.
TRACE_CTX_VERSION = 1


def make_context(**attrs: Any) -> Optional[Dict[str, Any]]:
    """A JSON-safe trace context for an outgoing work item, or ``None``.

    Returns ``None`` when no tracer is active — the common untraced path
    stays a single ``ContextVar`` read, and work items stay byte-identical
    to their pre-telemetry form.  ``sent_at`` is the dispatch timestamp on
    the parent tracer's timeline; the stitcher pairs it with the ack
    timestamp to estimate the clock offset.
    """
    tracer = current_tracer()
    if tracer is None:
        return None
    ctx: Dict[str, Any] = {
        "v": TRACE_CTX_VERSION,
        "trace": tracer.trace_id,
        "parent": tracer.current_span_id(),
        "sent_at": tracer.now(),
    }
    ctx.update(attrs)
    return ctx


@contextlib.contextmanager
def child_capture(trace_ctx: Optional[Dict[str, Any]]):
    """Activate a child tracer for one work item's execution.

    Yields the child :class:`Tracer` (or ``None`` when the item carries no
    context or an unknown schema version — old parents, old workers and
    untraced runs all degrade to exactly the PR 6 behaviour).
    """
    if not isinstance(trace_ctx, dict) or trace_ctx.get("v") != TRACE_CTX_VERSION:
        yield None
        return
    tracer = Tracer(trace_id=str(trace_ctx.get("trace", "")) or None)
    with tracer.activate():
        yield tracer


def export_subtree(
    tracer: Tracer,
    *,
    recv_at: float,
    done_at: float,
    worker: Optional[str] = None,
) -> Dict[str, Any]:
    """Serialise a child tracer for the trip home inside a shard result.

    ``recv_at``/``done_at`` are the child-timeline moments the item was
    picked up and finished — the child side of the offset estimate.  The
    process block identifies who executed the item so stitched spans stay
    attributable (`pid` is what the e2e test counts distinct values of).
    """
    return {
        "v": TRACE_CTX_VERSION,
        "trace": tracer.trace_id,
        "spans": [span.to_dict() for span in tracer.spans],
        "clock": {"recv": float(recv_at), "done": float(done_at)},
        "process": {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "worker": worker,
        },
    }


def clock_offset(
    t_send: float, t_recv: float, c_recv: float, c_done: float
) -> float:
    """Child-timeline → parent-timeline offset (add it to child times).

    The symmetric NTP estimate, then clamped so the mapped child interval
    ``[c_recv + offset, c_done + offset]`` cannot escape the parent's
    observed round trip ``[t_send, t_recv]`` — wildly skewed clocks (or a
    child busy-interval longer than the round trip, which only a broken
    clock produces) degrade to a best-fit placement, never to a child span
    that overhangs its parent.
    """
    offset = ((t_send - c_recv) + (t_recv - c_done)) / 2.0
    # Clamp: earliest mapped start >= t_send, latest mapped end <= t_recv.
    offset = max(offset, t_send - c_recv)
    offset = min(offset, t_recv - c_done)
    if c_done - c_recv > t_recv - t_send:
        # Busy interval longer than the round trip that contains it: no
        # offset satisfies both bounds, so pin the start and let the
        # per-span clamp in stitch_subtree trim the tail.
        offset = t_send - c_recv
    return offset


def stitch_subtree(
    tracer: Tracer,
    subtree: Optional[Dict[str, Any]],
    *,
    parent_id: Optional[int],
    t_send: float,
    t_recv: float,
) -> List[Span]:
    """Graft a shipped child subtree under ``parent_id`` on ``tracer``.

    Child span ids are remapped to fresh ids on the parent tracer (the two
    processes numbered independently); internal parent links are preserved
    and child roots attach to ``parent_id``.  Start times are shifted by
    the estimated clock offset and clamped into ``[t_send, t_recv]``.
    Returns the grafted spans ([] for missing/foreign subtrees — stitching
    is best-effort and never fails a shard that computed fine).
    """
    if not isinstance(subtree, dict) or subtree.get("v") != TRACE_CTX_VERSION:
        return []
    clock = subtree.get("clock") or {}
    try:
        c_recv = float(clock["recv"])
        c_done = float(clock["done"])
    except (KeyError, TypeError, ValueError):
        return []
    offset = clock_offset(t_send, t_recv, c_recv, c_done)
    process = subtree.get("process") or {}
    proc_attrs = {
        k: process[k] for k in ("pid", "host", "worker") if process.get(k) is not None
    }

    id_map: Dict[int, int] = {}
    grafted: List[Span] = []
    for payload in subtree.get("spans", ()):
        try:
            child = Span.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            continue
        start = min(max(child.start + offset, t_send), t_recv)
        duration = child.duration
        if duration is not None:
            duration = max(0.0, min(duration, t_recv - start))
        mapped_parent = (
            id_map.get(child.parent_id, parent_id)
            if child.parent_id is not None
            else parent_id
        )
        attrs = dict(child.attrs)
        for key, value in proc_attrs.items():
            attrs.setdefault(key, value)
        span = tracer.graft(
            child.name,
            start=start,
            duration=duration,
            parent_id=mapped_parent,
            attrs=attrs,
        )
        id_map[child.span_id] = span.span_id
        grafted.append(span)
    return grafted


def subtree_totals(subtree: Optional[Dict[str, Any]]) -> Dict[str, float]:
    """Per-category busy seconds inside a shipped subtree.

    Feeds the overhead ledger: ``deserialize`` sums ``worker.deserialize``
    spans, ``compute`` sums ``worker.compute`` spans, and ``busy`` is the
    child's own receive→done interval (so ``busy - deserialize - compute``
    is the remote framework overhead).  All zeros for missing subtrees.
    """
    totals = {"busy": 0.0, "deserialize": 0.0, "compute": 0.0}
    if not isinstance(subtree, dict) or subtree.get("v") != TRACE_CTX_VERSION:
        return totals
    clock = subtree.get("clock") or {}
    try:
        totals["busy"] = max(0.0, float(clock["done"]) - float(clock["recv"]))
    except (KeyError, TypeError, ValueError):
        pass
    for payload in subtree.get("spans", ()):
        name = payload.get("name")
        duration = payload.get("duration")
        if duration is None:
            continue
        if name == "worker.deserialize":
            totals["deserialize"] += float(duration)
        elif name == "worker.compute":
            totals["compute"] += float(duration)
    return totals
