"""The scenario results service: HTTP endpoints over the job queue.

Endpoint map (all JSON unless noted; ``{h}`` is a full spec content hash)::

    GET  /                     service descriptor (endpoints, version)
    GET  /healthz              liveness + job counts + heavy-module audit
    GET  /metrics              Prometheus text exposition of the registry
    GET  /v1/scenarios         machine-readable catalog (scenarios+families)
    GET  /v1/scenarios/{name}  one scenario (or family/point) in full detail
    POST /v1/jobs              submit a run/sweep; 202 with the job record
    GET  /v1/jobs              all jobs, newest first
    GET  /v1/jobs/{id}         poll one job (progress, per-point results)
    GET  /v1/jobs/{id}/events  NDJSON stream of progress events until done
    GET  /v1/jobs/{id}/trace   NDJSON span log of the job's execution
    GET  /v1/results/{h}       fetch a cached result by content hash
    GET  /v1/runs              run-history ledger, newest first (paginated)
    GET  /v1/runs/{id}         one run record plus its sentinel verdict
    GET  /v1/workers           registered shard workers (fleet view)
    POST /v1/workers           register a `repro worker` (returns worker id)
    POST /v1/workers/{id}/claim    pull the next shard work item (or null)
    POST /v1/workers/{id}/results  post a shard result (or structured error)

``/v1/results/{h}`` speaks conditional HTTP: the response carries an
``ETag`` (the version-salted cache key of :func:`repro.scenarios.cache
.cache_key`), and a request presenting it via ``If-None-Match`` gets
``304 Not Modified`` with no body.  Arrays are advertised by name; pass
``?arrays=1`` to inline their values (the only read path here that loads
numpy).

The whole request path — catalog, submission planning, cache-hit serving —
imports neither numpy nor scipy; ``/healthz`` reports whether they are
loaded (``heavy_modules``) precisely so tests and operators can audit that
promise from outside.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, AsyncIterator, Dict, Optional

from repro._version import __version__
from repro.obs.fleet import FleetAggregator
from repro.obs.metrics import REGISTRY, render_many
from repro.scenarios.cache import ResultCache
from repro.scenarios.catalog import (
    catalog_payload,
    family_payload,
    scenario_payload,
    supported_backends,
)
from repro.service.http import (
    HTTPError,
    HTTPServer,
    Request,
    Response,
    Router,
    StreamingResponse,
)
from repro.service.jobs import JobQueue

#: Modules whose absence from the request path the service guarantees.
HEAVY_MODULES = ("numpy", "scipy")

_ENDPOINTS = {
    "GET /": "this descriptor",
    "GET /healthz": "liveness, job counts, heavy-module audit",
    "GET /metrics": "Prometheus text exposition of the metrics registry",
    "GET /v1/scenarios": "scenario catalog (registry + families)",
    "GET /v1/scenarios/{name}": "one scenario, family or family/point in detail",
    "POST /v1/jobs": "submit a run or sweep (202 + job record)",
    "GET /v1/jobs": "list jobs",
    "GET /v1/jobs/{id}": "poll one job",
    "GET /v1/jobs/{id}/events": "NDJSON progress stream",
    "GET /v1/jobs/{id}/trace": "NDJSON span log of the job's execution",
    "GET /v1/results/{content_hash}": "fetch a cached result (ETag-aware)",
    "GET /v1/runs": "run-history ledger, newest first (paginated, filterable)",
    "GET /v1/runs/{run_id}": "one run-history record with its sentinel verdict",
    "GET /v1/fleet": "aggregated worker telemetry (items/s, busy, claims)",
    "GET /v1/workers": "registered shard workers (fleet view)",
    "POST /v1/workers": "register a shard worker (202 + worker id)",
    "POST /v1/workers/{id}/claim": "pull the next shard work item",
    "POST /v1/workers/{id}/results": "post a shard result",
}


class ResultsService:
    """Owns the router, the job queue and the HTTP server lifecycle."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        worker_timeout: Optional[float] = None,
        shard_options: Optional[Dict[str, Any]] = None,
        frame_wire: bool = True,
    ) -> None:
        from repro.service.shards import (
            DEFAULT_SHARD_TIMEOUT,
            DEFAULT_WORKER_TIMEOUT,
            ShardBoard,
        )

        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        #: Answer frame-advertising workers in frames (``repro serve
        #: --wire json`` pins the worker endpoints to plain JSON).
        self.frame_wire = bool(frame_wire)
        self.shard_options = dict(shard_options or {})
        # Without a shard timeout a worker that dies mid-shard would hang
        # its job forever (claimed items have no other reassignment path).
        self.shard_options.setdefault("shard_timeout", DEFAULT_SHARD_TIMEOUT)
        self.board = ShardBoard(
            worker_timeout=(
                DEFAULT_WORKER_TIMEOUT if worker_timeout is None else worker_timeout
            )
        )
        self.queue: Optional[JobQueue] = None
        #: Worker metrics snapshots, piggybacked on claim/result posts and
        #: merged into /metrics (worker-labelled) and GET /v1/fleet.
        self.fleet = FleetAggregator()
        self.router = Router()
        self._server = HTTPServer(self.router)
        self._register_routes()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Create the queue (needs a running loop) and bind the server."""
        self.queue = JobQueue(
            workers=self.workers,
            cache=self.cache,
            shard_board=self.board,
            shard_options=self.shard_options,
        )
        return await self._server.start(host, port)

    async def stop(self) -> None:
        await self._server.stop()
        if self.queue is not None:
            await self.queue.close()
            self.queue = None

    # -- handlers ----------------------------------------------------------

    def _register_routes(self) -> None:
        from repro.service.shards import CLAIM_PROTOCOL_VERSION

        route = self.router.route

        @route("GET", "/")
        async def index(request: Request) -> Response:
            return Response.json(
                {
                    "service": "repro scenario results service",
                    "version": __version__,
                    "endpoints": _ENDPOINTS,
                }
            )

        @route("GET", "/healthz")
        async def healthz(request: Request) -> Response:
            return Response.json(
                {
                    "status": "ok",
                    "version": __version__,
                    "jobs": self.queue.counts(),
                    "heavy_modules": {
                        name: name in sys.modules for name in HEAVY_MODULES
                    },
                }
            )

        @route("GET", "/metrics")
        async def metrics(request: Request) -> Response:
            # The queue-depth gauge is refreshed at scrape time: it is a
            # statement of *current* state, and scrapes may be long apart.
            from repro.service.jobs import _QUEUE_DEPTH

            if self.queue is not None:
                _QUEUE_DEPTH.set(self.queue.counts()["queued"])
            # One exposition, two sources: the service's own registry plus
            # every worker's last snapshot relabelled with worker="name".
            body = render_many(REGISTRY, self.fleet.registry())
            return Response(
                body=body.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )

        @route("GET", "/v1/scenarios")
        async def scenarios(request: Request) -> Response:
            return Response.json(catalog_payload())

        @route("GET", "/v1/scenarios/{name:path}")
        async def describe(request: Request, name: str) -> Response:
            return Response.json(self._describe(name))

        @route("POST", "/v1/jobs")
        async def submit(request: Request) -> Response:
            try:
                job = self.queue.submit(request.json())
            except ValueError as error:
                raise HTTPError(400, str(error))
            return Response.json(job.to_dict(), status=202)

        @route("GET", "/v1/jobs")
        async def jobs(request: Request) -> Response:
            records = [job.to_dict() for job in self.queue.jobs.values()]
            return Response.json({"jobs": records[::-1]})

        @route("GET", "/v1/jobs/{job_id}")
        async def job(request: Request, job_id: str) -> Response:
            return Response.json(self._job(job_id).to_dict())

        @route("GET", "/v1/jobs/{job_id}/events")
        async def events(request: Request, job_id: str) -> StreamingResponse:
            return StreamingResponse(self._event_lines(self._job(job_id)))

        @route("GET", "/v1/jobs/{job_id}/trace")
        async def job_trace(request: Request, job_id: str) -> Response:
            job = self._job(job_id)
            if job.trace is not None:
                body = job.trace.to_ndjson()
            elif job.state == "done":
                # Cache-served jobs never execute, so nothing was traced —
                # answer with a synthetic `cache.hit` span per point
                # instead of an empty (and easily misread) body.
                body = self._cache_hit_trace(job)
            else:
                body = ""  # queued/not-yet-started: genuinely nothing yet
            return Response(
                body=body.encode("utf-8"),
                content_type="application/x-ndjson",
            )

        @route("GET", "/v1/results/{content_hash}")
        async def result(request: Request, content_hash: str) -> Response:
            return await self._result(request, content_hash)

        @route("GET", "/v1/runs")
        async def runs(request: Request) -> Response:
            return Response.json(self._runs(request))

        @route("GET", "/v1/runs/{run_id}")
        async def run_record(request: Request, run_id: str) -> Response:
            return Response.json(self._run_record(run_id))

        @route("GET", "/v1/fleet")
        async def fleet(request: Request) -> Response:
            summary = self.fleet.summary()
            summary["board"] = self.board.worker_views()
            return Response.json(summary)

        @route("GET", "/v1/workers")
        async def workers(request: Request) -> Response:
            return Response.json({"workers": self.board.worker_views()})

        @route("POST", "/v1/workers")
        async def register_worker(request: Request) -> Response:
            payload = request.json()
            if not isinstance(payload, dict):
                raise HTTPError(400, "registration must be a JSON object")
            name = str(payload.get("name") or "worker")
            worker_id = self.board.register(name)
            return Response.json({"worker_id": worker_id, "name": name}, status=202)

        @route("POST", "/v1/workers/{worker_id}/claim")
        async def claim_work(request: Request, worker_id: str) -> Response:
            payload = self._worker_payload(request)
            batch: Optional[int] = None
            token: Optional[str] = None
            if isinstance(payload, dict):
                self._ingest_telemetry(worker_id, payload.get("telemetry"))
                if "batch" in payload:
                    # A protocol-2 worker: batched claim, batched answer.
                    try:
                        batch = int(payload["batch"])
                    except (TypeError, ValueError):
                        raise HTTPError(400, "claim 'batch' must be an integer")
                    if batch < 1:
                        raise HTTPError(400, "claim 'batch' must be >= 1")
                    raw_token = payload.get("token")
                    token = None if raw_token is None else str(raw_token)
            try:
                if batch is None:
                    # A v1 worker: single-item claim, answered in kind.
                    item = self.board.claim(worker_id)
                    return self._wire_response(request, {"item": item})
                items = self.board.claim_batch(
                    worker_id, batch=batch, token=token
                )
            except KeyError as error:
                raise HTTPError(404, str(error.args[0]))
            return self._wire_response(
                request, {"items": items, "protocol": CLAIM_PROTOCOL_VERSION}
            )

        @route("POST", "/v1/workers/{worker_id}/results")
        async def post_work_result(request: Request, worker_id: str) -> Response:
            payload = self._worker_payload(request)
            if not isinstance(payload, dict):
                raise HTTPError(400, "result payload must be a JSON object")
            self._ingest_telemetry(worker_id, payload.get("telemetry"))
            if "results" in payload:
                # Protocol 2: one post carries the whole batch's outcomes.
                outcomes = payload["results"]
                if not isinstance(outcomes, list):
                    raise HTTPError(400, "'results' must be a list of outcomes")
                for outcome in outcomes:
                    if not isinstance(outcome, dict) or "id" not in outcome:
                        raise HTTPError(
                            400, "each outcome needs at least an item 'id'"
                        )
                    if outcome.get("result") is None and outcome.get("error") is None:
                        raise HTTPError(
                            400, "each outcome needs 'result' or 'error'"
                        )
                try:
                    accepted_flags = self.board.post_results(worker_id, outcomes)
                except KeyError as exc:
                    raise HTTPError(404, str(exc.args[0]))
                return self._wire_response(request, {"accepted": accepted_flags})
            if "id" not in payload:
                raise HTTPError(400, "result payload needs at least an item 'id'")
            error = payload.get("error")
            result_payload = payload.get("result")
            if error is None and result_payload is None:
                raise HTTPError(400, "result payload needs 'result' or 'error'")
            try:
                accepted = self.board.post_result(
                    worker_id,
                    item_id=str(payload["id"]),
                    result=result_payload,
                    error=None if error is None else str(error),
                )
            except KeyError as exc:
                raise HTTPError(404, str(exc.args[0]))
            return self._wire_response(request, {"accepted": accepted})

    # -- wire negotiation (worker endpoints only) --------------------------

    def _worker_payload(self, request: Request) -> Any:
        """The request body, whatever encoding the worker chose.

        A ``Content-Type: application/x-repro-frame`` body is decoded as a
        binary frame; anything else is parsed as JSON — so v1 workers and
        plain-curl debugging keep working unchanged.
        """
        from repro.distributed.frames import (
            FRAME_CONTENT_TYPE,
            FrameError,
            decode_frame,
        )

        content_type = (
            (request.header("content-type") or "").partition(";")[0].strip()
        )
        if content_type != FRAME_CONTENT_TYPE:
            return request.json()
        if not request.body:
            return {}
        try:
            return decode_frame(request.body)
        except FrameError as error:
            raise HTTPError(400, f"request body is not a valid frame: {error}")

    def _wire_response(
        self, request: Request, payload: Any, status: int = 200
    ) -> Response:
        """Answer in frames iff the worker advertised them (and frames are
        enabled on this board); JSON otherwise — negotiation in kind."""
        from repro.distributed.frames import FRAME_CONTENT_TYPE, encode_frame

        accepts = request.header("accept") or ""
        sent_frame = (
            (request.header("content-type") or "").partition(";")[0].strip()
            == FRAME_CONTENT_TYPE
        )
        if self.frame_wire and (FRAME_CONTENT_TYPE in accepts or sent_frame):
            return Response(
                status=status,
                body=encode_frame(payload),
                content_type=FRAME_CONTENT_TYPE,
            )
        return Response.json(payload, status=status)

    def _ingest_telemetry(self, worker_id: str, telemetry: Any) -> None:
        """Absorb a piggybacked worker metrics snapshot (best-effort)."""
        if not isinstance(telemetry, dict):
            return
        metrics = telemetry.get("metrics")
        if not isinstance(metrics, dict):
            return
        seq = telemetry.get("seq")
        self.fleet.ingest(
            worker_id,
            metrics,
            seq=int(seq) if isinstance(seq, (int, float)) else None,
            name=telemetry.get("name"),
        )

    def _cache_hit_trace(self, job) -> str:
        """A synthetic NDJSON trace for a job served entirely from cache."""
        from repro.obs.trace import Tracer

        tracer = Tracer()
        for point in job.results:
            tracer.record(
                "cache.hit",
                0.0,
                start=0.0,
                name=point.get("name"),
                content_hash=point.get("content_hash"),
                from_cache=True,
            )
        return tracer.to_ndjson()

    def _job(self, job_id: str):
        try:
            return self.queue.get(job_id)
        except KeyError as error:
            raise HTTPError(404, str(error))

    #: Query-string keys forwarded verbatim as record-field filters.
    _RUN_FILTERS = ("kind", "scenario", "backend", "executor", "spec_hash")

    def _runs(self, request: Request) -> Dict[str, Any]:
        """``GET /v1/runs``: the run-history ledger, newest first.

        The ledger is NDJSON on disk and the records are plain JSON, so
        this read path stays numpy-free like the rest of the service.
        The ledger is opened per request: it resolves its root from the
        environment, and other processes (CLI runs, workers) may have
        appended since the last call.
        """
        from repro.obs.history import RunLedger

        ledger = RunLedger()
        try:
            limit = int(request.query.get("limit", 50))
            offset = int(request.query.get("offset", 0))
        except ValueError:
            raise HTTPError(400, "limit and offset must be integers")
        limit = max(1, min(limit, 500))
        offset = max(0, offset)
        filters = {
            key: request.query[key]
            for key in self._RUN_FILTERS
            if key in request.query
        }
        since = until = None
        try:
            if "since" in request.query:
                since = float(request.query["since"])
            if "until" in request.query:
                until = float(request.query["until"])
        except ValueError:
            raise HTTPError(400, "since and until must be unix timestamps")
        matches = ledger.query(since=since, until=until, **filters)
        return {
            "runs": matches[offset:offset + limit],
            "total": len(matches),
            "limit": limit,
            "offset": offset,
        }

    def _run_record(self, run_id: str) -> Dict[str, Any]:
        """``GET /v1/runs/{id}``: one record plus its sentinel verdict."""
        from repro.obs import sentinel
        from repro.obs.history import RunLedger

        ledger = RunLedger()
        record = ledger.get(run_id)
        if record is None:
            raise HTTPError(404, f"no run-history record with id {run_id!r}")
        return {
            "run": record,
            "sentinel": sentinel.evaluate(ledger, record).to_dict(),
        }

    async def _event_lines(self, job) -> AsyncIterator[str]:
        async for event in self.queue.events(job):
            yield json.dumps(event, sort_keys=True) + "\n"

    def _describe(self, name: str) -> Dict[str, Any]:
        """Full detail for a scenario, family point or family name.

        Scenario and point payloads carry ``spec``/``quick_spec`` and cache
        state; a bare family name returns the family payload (description
        plus its content-addressed points).
        """
        from repro.scenarios import registry

        if name in registry.family_names():
            return family_payload(name, registry.get_family(name))
        try:
            if name in registry.scenario_names():
                entry = registry.get_entry(name)
                payload = scenario_payload(name, entry)
                spec, quick = entry.spec, entry.quick
            else:
                spec = registry.resolve(name)
                quick = registry.resolve(name, quick=True)
                payload = {
                    "name": spec.name,
                    "kind": spec.kind,
                    "description": f"point of family {name.split('/', 1)[0]!r}",
                    "backends": list(supported_backends(spec.kind)),
                    "content_hash": spec.content_hash,
                    "quick_content_hash": quick.content_hash,
                }
        except KeyError as error:
            raise HTTPError(404, str(error.args[0]))
        payload["spec"] = spec.to_dict()
        payload["quick_spec"] = quick.to_dict()
        payload["cached"] = self.cache.contains(spec)
        payload["quick_cached"] = self.cache.contains(quick)
        return payload

    async def _result(self, request: Request, content_hash: str) -> Response:
        key = self.cache.find_hash(content_hash)
        if key is None:
            raise HTTPError(404, f"no cached result for content hash {content_hash}")
        etag = f'"{key}"'
        if request.header("if-none-match") == etag:
            return Response.empty(304, headers={"ETag": etag})
        meta = self.cache.load_meta(key)
        if meta is None:
            raise HTTPError(404, f"no cached result for content hash {content_hash}")
        payload = {
            "name": meta["name"],
            "kind": meta["kind"],
            "spec": meta["spec"],
            "spec_hash": meta["spec_hash"],
            "cache_key": key,
            "backend": meta.get("backend", "reference"),
            "repro_version": meta.get("repro_version"),
            "scalars": meta["scalars"],
            "rendered": meta["rendered"],
            "runtime_seconds": meta["runtime_seconds"],
            "arrays": list(self.cache.array_names(key)),
        }
        if request.query.get("arrays", "").lower() in ("1", "true", "yes"):
            # Loading + listifying arrays (and serializing the resulting
            # payload) can be megabytes of work; keep it off the event loop
            # so health probes and job polls stay responsive.
            payload["array_values"] = await asyncio.to_thread(
                self._array_values, key
            )
            return await asyncio.to_thread(
                Response.json, payload, 200, {"ETag": etag}
            )
        return Response.json(payload, headers={"ETag": etag})

    def _array_values(self, key: str) -> Dict[str, Any]:
        """Inline array contents (the one numpy-aware read, opt-in only)."""
        import numpy as np

        npz_path = self.cache.entry_dir(key) / "arrays.npz"
        if not npz_path.is_file():
            return {}
        with np.load(npz_path) as npz:
            return {name: npz[name].tolist() for name in npz.files}


def serve(
    host: str = "127.0.0.1",
    port: int = 8077,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    wire: str = "auto",
) -> int:
    """Run the results service until interrupted (the CLI entry point).

    Prints a single ``listening on http://host:port`` line once bound (with
    the real port when ``port=0``), which is what scripts and the e2e tests
    key on.  ``wire="json"`` pins the worker endpoints to plain JSON
    (diagnostics / staged rollouts); the default negotiates binary frames
    with workers that advertise them.
    """

    async def main() -> None:
        service = ResultsService(
            workers=workers, cache=cache, frame_wire=(wire != "json")
        )
        bound_host, bound_port = await service.start(host, port)
        print(
            f"repro results service listening on http://{bound_host}:{bound_port}",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0
