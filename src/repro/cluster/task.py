"""Tasks: the smallest indivisible unit of workload.

In the paper's test-bed application a task is "the multiplication of one row
by a static matrix duplicated on all nodes", with the arithmetic precision of
each element (and therefore the task size) drawn at random.  The simulator
does not execute the multiplication — service times are drawn from the
node's exponential service law — but each task still carries a ``size``
attribute so the test-bed emulation (:mod:`repro.testbed.application`) can
run the real computation when calibrating Fig. 1/2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class TaskState(enum.Enum):
    """Life-cycle of a task."""

    QUEUED = "queued"
    IN_SERVICE = "in_service"
    IN_TRANSIT = "in_transit"
    COMPLETED = "completed"


@dataclass
class Task:
    """One unit of work.

    Attributes
    ----------
    task_id:
        Unique integer identifier within a realisation.
    origin:
        Index of the node the task was initially assigned to.
    size:
        Abstract size of the task (e.g. row length times precision); only
        used by the test-bed emulation and by size-aware delay models.
    state:
        Current :class:`TaskState`.
    owner:
        Index of the node currently holding the task (``None`` while in
        transit).
    remaining_service:
        Residual service requirement left over from a preempted execution
        (``None`` when the task has never been started or when the executing
        node uses restart-on-recovery semantics).
    completed_at:
        Simulation time of completion, once completed.
    transfers:
        Number of times this task has been moved between nodes.
    """

    task_id: int
    origin: int
    size: float = 1.0
    state: TaskState = TaskState.QUEUED
    owner: Optional[int] = None
    remaining_service: Optional[float] = None
    completed_at: Optional[float] = None
    transfers: int = field(default=0)

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError(f"task_id must be >= 0, got {self.task_id!r}")
        if self.origin < 0:
            raise ValueError(f"origin must be >= 0, got {self.origin!r}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size!r}")
        if self.owner is None:
            self.owner = self.origin

    # -- life-cycle helpers --------------------------------------------------

    @property
    def is_completed(self) -> bool:
        """Whether the task has finished service."""
        return self.state is TaskState.COMPLETED

    def mark_in_service(self) -> None:
        """Transition to IN_SERVICE (must currently be queued)."""
        if self.state is not TaskState.QUEUED:
            raise ValueError(f"cannot start service from state {self.state}")
        self.state = TaskState.IN_SERVICE

    def mark_preempted(self, remaining: Optional[float]) -> None:
        """Return a preempted task to the queue, recording residual work."""
        if self.state is not TaskState.IN_SERVICE:
            raise ValueError(f"cannot preempt a task in state {self.state}")
        self.state = TaskState.QUEUED
        self.remaining_service = remaining

    def mark_in_transit(self) -> None:
        """Transition to IN_TRANSIT when put on the network."""
        if self.state is TaskState.COMPLETED:
            raise ValueError("cannot transfer a completed task")
        self.state = TaskState.IN_TRANSIT
        self.owner = None
        self.transfers += 1

    def mark_delivered(self, node_index: int) -> None:
        """Transition back to QUEUED on arrival at ``node_index``."""
        if self.state is not TaskState.IN_TRANSIT:
            raise ValueError(f"cannot deliver a task in state {self.state}")
        self.state = TaskState.QUEUED
        self.owner = node_index

    def mark_completed(self, time: float, node_index: int) -> None:
        """Transition to COMPLETED at ``time`` on ``node_index``."""
        if self.state is not TaskState.IN_SERVICE:
            raise ValueError(f"cannot complete a task in state {self.state}")
        self.state = TaskState.COMPLETED
        self.completed_at = float(time)
        self.owner = node_index
        self.remaining_service = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Task(id={self.task_id}, origin={self.origin}, state={self.state.value}, "
            f"owner={self.owner})"
        )
