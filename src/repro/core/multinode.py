"""n-node generalisation of the completion-time analysis.

The paper presents its regeneration analysis for two nodes and notes that
"the theory presented in this paper can be extended to a multi-node system
in a straightforward way".  This module carries out that extension for the
class of policies analysed in the paper — a set of one-shot transfers issued
at ``t = 0`` — by building the absorbing CTMC over

``(work-state vector, remaining-load vector, set of batches still in transit)``

and computing the expected absorption time and absorption-time CDF exactly,
re-using the generic machinery of :mod:`repro.core.ctmc`.

The state space grows as ``2^n · Π (m_i + 1) · 2^B`` (with ``B`` the number
of initial batches), so the exact analysis is intended for moderate loads
(tens of tasks per node, a handful of nodes); larger systems are handled by
the Monte-Carlo harness, which supports any number of nodes natively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ctmc import AbsorbingCTMC, CTMCBuildResult, build_chain
from repro.core.parameters import SystemParameters, validate_workload
from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.core.state import validate_work_state

__all__ = [
    "MultiNodePrediction",
    "build_multinode_chain",
    "expected_completion_time_multinode",
    "completion_time_cdf_multinode",
]


@dataclass(frozen=True)
class MultiNodePrediction:
    """Prediction of the n-node model for one policy/workload pair."""

    mean: float
    workload: Tuple[int, ...]
    transfers: Tuple[Transfer, ...]
    num_states: int


def _apply_initial_transfers(
    workload: Sequence[int], transfers: Sequence[Transfer]
) -> Tuple[Tuple[int, ...], Tuple[Transfer, ...]]:
    """Remaining loads after removing the transferred batches from their sources."""
    remaining = list(workload)
    effective: List[Transfer] = []
    for transfer in transfers:
        if transfer.is_empty:
            continue
        amount = min(transfer.num_tasks, remaining[transfer.source])
        if amount <= 0:
            continue
        remaining[transfer.source] -= amount
        effective.append(Transfer(transfer.source, transfer.destination, amount))
    return tuple(remaining), tuple(effective)


def build_multinode_chain(
    params: SystemParameters,
    workload: Sequence[int],
    transfers: Sequence[Transfer] = (),
    initial_state: Optional[Sequence[int]] = None,
) -> CTMCBuildResult:
    """Absorbing CTMC of an n-node system with one-shot initial transfers.

    States are ``(k, r, pending)`` where ``k`` is the work-state vector,
    ``r`` the remaining-load vector and ``pending`` the tuple of indices of
    batches still in transit.  Each batch travels with the exponential
    batch-transfer rate of its link and size.
    """
    loads = validate_workload(workload, params)
    n = params.num_nodes
    if initial_state is None:
        initial_state = tuple(1 if node.initially_up else 0 for node in params.nodes)
    state0 = validate_work_state(initial_state, n)

    remaining, batches = _apply_initial_transfers(loads, transfers)
    batch_rates = tuple(
        params.transfer_rate(t.source, t.destination, t.num_tasks) for t in batches
    )
    for rate in batch_rates:
        if not np.isfinite(rate):
            raise ValueError(
                "instantaneous transfers should be folded into the workload "
                "before building the chain (zero per-task delay)"
            )

    lam_d = params.service_rates
    lam_f = params.failure_rates
    lam_r = params.recovery_rates

    def successors(state):
        k, r, pending = state
        moves = []
        for i in range(n):
            if k[i] == 1 and r[i] > 0:
                nxt_r = list(r)
                nxt_r[i] -= 1
                moves.append(((k, tuple(nxt_r), pending), lam_d[i]))
            if k[i] == 1 and lam_f[i] > 0:
                nxt_k = list(k)
                nxt_k[i] = 0
                moves.append(((tuple(nxt_k), r, pending), lam_f[i]))
            if k[i] == 0 and lam_r[i] > 0:
                nxt_k = list(k)
                nxt_k[i] = 1
                moves.append(((tuple(nxt_k), r, pending), lam_r[i]))
        for slot, batch_index in enumerate(pending):
            batch = batches[batch_index]
            nxt_r = list(r)
            nxt_r[batch.destination] += batch.num_tasks
            nxt_pending = pending[:slot] + pending[slot + 1 :]
            moves.append(((k, tuple(nxt_r), nxt_pending), batch_rates[batch_index]))
        return moves

    def is_absorbing(state):
        _k, r, pending = state
        return not pending and all(load == 0 for load in r)

    start = (state0, remaining, tuple(range(len(batches))))
    return build_chain(start, successors, is_absorbing)


def expected_completion_time_multinode(
    params: SystemParameters,
    workload: Sequence[int],
    policy: Optional[LoadBalancingPolicy] = None,
    transfers: Optional[Sequence[Transfer]] = None,
    initial_state: Optional[Sequence[int]] = None,
) -> MultiNodePrediction:
    """Expected overall completion time of an n-node system.

    Either a one-shot ``policy`` (whose :meth:`initial_transfers` define the
    batches) or an explicit list of ``transfers`` must be supplied.
    Reactive policies (transfers at failure instants) are outside the scope
    of the exact analysis — evaluate them with the Monte-Carlo harness.
    """
    loads = validate_workload(workload, params)
    if (policy is None) == (transfers is None):
        raise ValueError("provide exactly one of 'policy' or 'transfers'")
    if policy is not None:
        transfers = policy.initial_transfers(loads, params)
    assert transfers is not None

    build = build_multinode_chain(
        params, loads, transfers=transfers, initial_state=initial_state
    )
    mean = build.chain.expected_absorption_time(build.start_index)
    _, effective = _apply_initial_transfers(loads, transfers)
    return MultiNodePrediction(
        mean=float(mean),
        workload=loads,
        transfers=effective,
        num_states=build.chain.num_states,
    )


def completion_time_cdf_multinode(
    params: SystemParameters,
    workload: Sequence[int],
    times: Sequence[float],
    policy: Optional[LoadBalancingPolicy] = None,
    transfers: Optional[Sequence[Transfer]] = None,
    initial_state: Optional[Sequence[int]] = None,
    method: str = "uniformization",
) -> np.ndarray:
    """CDF of the overall completion time of an n-node system."""
    loads = validate_workload(workload, params)
    if (policy is None) == (transfers is None):
        raise ValueError("provide exactly one of 'policy' or 'transfers'")
    if policy is not None:
        transfers = policy.initial_transfers(loads, params)
    assert transfers is not None
    build = build_multinode_chain(
        params, loads, transfers=transfers, initial_state=initial_state
    )
    return build.chain.absorption_cdf(build.start_index, times, method=method)
