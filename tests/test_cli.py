"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import _ARTEFACTS, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI scenario runs out of the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestCLI:
    def test_summary_without_arguments(self, capsys):
        assert main([]) == 0
        output = capsys.readouterr().out
        assert "0.35" in output
        assert "IPDPS 2006" in output

    def test_artefact_registry_covers_every_figure_and_table(self):
        assert set(_ARTEFACTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "table1", "table2", "table3",
        }
        for modes in _ARTEFACTS.values():
            assert set(modes) == {"full", "quick"}

    def test_quick_fig4_run(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "fig4" in output
        assert "completion times" in output

    def test_quick_fig2_run(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 2" in output

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_seed_flag_threads_through(self, capsys):
        assert main(["fig4", "--quick", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["fig4", "--quick", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        # Identical seed reproduces the realisation bit-for-bit; the header
        # line contains wall-clock timing, so compare the rendered body.
        assert first.splitlines()[1:] == second.splitlines()[1:]

    def test_quick_fig4_is_genuinely_reduced(self, capsys):
        from repro.experiments.fig4_queue_traces import run as run_fig4

        full = run_fig4()
        quick = run_fig4(workload=(50, 30))
        assert quick.workload != full.workload
        assert sum(quick.workload) < sum(full.workload)


class TestScenarioCLI:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("fig1", "fig3", "table3", "smoke"):
            assert name in output
        for family in ("delay-sweep", "failure-sweep", "multinode", "churn"):
            assert family in output

    def test_scenario_run_smoke_caches(self, capsys):
        assert main(["scenario", "run", "smoke"]) == 0
        first = capsys.readouterr().out
        assert "cached" not in first.splitlines()[0]
        assert main(["scenario", "run", "smoke"]) == 0
        second = capsys.readouterr().out
        assert "cached" in second.splitlines()[0]
        # The cached body is bit-identical to the computed one.
        assert first.splitlines()[1:] == second.splitlines()[1:]

    def test_scenario_run_no_cache(self, capsys):
        assert main(["scenario", "run", "smoke", "--no-cache"]) == 0
        assert main(["scenario", "run", "smoke", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "cached" not in output

    def test_scenario_run_seed_override(self, capsys):
        assert main(["scenario", "run", "smoke", "--seed", "2"]) == 0
        reseeded = capsys.readouterr().out
        assert main(["scenario", "run", "smoke"]) == 0
        default = capsys.readouterr().out
        assert reseeded.splitlines()[1:] != default.splitlines()[1:]

    def test_scenario_compare(self, capsys):
        assert main(["scenario", "compare", "smoke", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "Scenario comparison" in output
        assert "mean completion time" in output

    def test_scenario_compare_force_recomputes(self, capsys):
        assert main(["scenario", "run", "smoke"]) == 0
        capsys.readouterr()
        assert main(["scenario", "compare", "smoke", "--force"]) == 0
        output = capsys.readouterr().out
        row = next(line for line in output.splitlines() if line.startswith("smoke"))
        assert "no" in row.split()[-1]

    def test_scenario_unknown_name_clean_error(self, capsys):
        assert main(["scenario", "run", "fig9"]) == 2
        captured = capsys.readouterr()
        assert "unknown scenario 'fig9'" in captured.err
        assert "Traceback" not in captured.err

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["scenario"])


class TestBackendCLI:
    def test_scenario_run_with_vectorized_backend(self, capsys):
        assert main(["scenario", "run", "smoke", "--backend", "vectorized"]) == 0
        output = capsys.readouterr().out
        assert "backend: vectorized" in output
        # The override participates in the cache key: a second run hits the
        # vectorized entry, and a reference run computes its own.
        assert main(["scenario", "run", "smoke", "--backend", "vectorized"]) == 0
        assert "cached" in capsys.readouterr().out.splitlines()[0]
        assert main(["scenario", "run", "smoke"]) == 0
        assert "cached" not in capsys.readouterr().out.splitlines()[0]

    def test_scenario_run_unknown_backend_clean_error(self, capsys):
        assert main(["scenario", "run", "smoke", "--backend", "fpga"]) == 2
        captured = capsys.readouterr()
        assert "unknown execution backend" in captured.err
        assert "Traceback" not in captured.err

    def test_scenario_run_backend_incompatible_kind(self, capsys):
        assert main(
            ["scenario", "run", "fig4", "--quick", "--backend", "vectorized"]
        ) == 2
        assert "cannot honour backend" in capsys.readouterr().err


class TestBenchCLI:
    def test_bench_writes_report(self, capsys, tmp_path):
        import json

        output = tmp_path / "BENCH_results.json"
        assert main(
            ["bench", "smoke", "--quick", "--output", str(output)]
        ) == 0
        printed = capsys.readouterr().out
        assert "Execution-backend benchmark" in printed
        assert "parity gate" in printed
        payload = json.loads(output.read_text())
        assert payload["summary"]["all_parity_passed"] is True
        (scenario,) = payload["scenarios"]
        assert set(scenario["timings"]) == {"reference", "vectorized"}

    def test_bench_backend_selection(self, capsys, tmp_path):
        output = tmp_path / "bench.json"
        assert main(
            ["bench", "smoke", "--quick", "--backends", "vectorized",
             "--output", str(output)]
        ) == 0
        import json

        payload = json.loads(output.read_text())
        assert payload["backends"] == ["vectorized"]
        # No reference sample -> no parity verdicts, trivially passing.
        assert payload["scenarios"][0]["parity"] == {}

    def test_bench_unknown_scenario_clean_error(self, capsys, tmp_path):
        assert main(
            ["bench", "nonexistent", "--output", str(tmp_path / "b.json")]
        ) == 2
        captured = capsys.readouterr()
        assert "unknown scenario" in captured.err
        assert "Traceback" not in captured.err

    def test_bench_rejects_non_mc_point(self, capsys, tmp_path):
        assert main(
            ["bench", "fig4", "--output", str(tmp_path / "b.json")]
        ) == 2
        assert "mc_point" in capsys.readouterr().err


class TestScenarioListJSON:
    def test_json_listing_matches_catalog_payload(self, capsys):
        import json

        from repro.scenarios.catalog import catalog_payload

        assert main(["scenario", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == catalog_payload()

    def test_json_listing_is_machine_readable(self, capsys):
        import json

        assert main(["scenario", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [s["name"] for s in payload["scenarios"]]
        assert names == sorted(names)
        assert "fig3" in names
        assert payload["backends"] == ["auto", "reference", "vectorized"]


class TestDocsCLIRegistration:
    def test_docs_subcommand_is_wired(self, capsys, tmp_path):
        assert main(["docs", "--root", str(tmp_path)]) == 0
        assert "scenario-catalog.md" in capsys.readouterr().out

    def test_serve_subcommand_is_wired(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0


class TestFleetCLI:
    def test_fleet_help_documents_watch_mode(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--help"])
        assert excinfo.value.code == 0

    def test_fleet_unreachable_service_clean_error(self, capsys):
        assert main(["fleet", "--connect", "127.0.0.1:1"]) == 1
        err = capsys.readouterr().err
        assert "cannot reach" in err

    @staticmethod
    def _fake_summary(monkeypatch):
        from repro.service.client import ServiceClient

        summary = {
            "workers": [{
                "id": "id-a", "name": "w-a", "seq": 3,
                "seconds_since_report": 1.0, "items_ok": 4,
                "items_failed": 0, "blocks": 16, "busy_seconds": 2.0,
                "busy_fraction": 0.5, "items_per_second": 0.8,
                "claims": 4, "claims_empty": 10, "claim_seconds_mean": 0.004,
            }],
            "fleet": {
                "size": 1, "items_ok": 4, "items_failed": 0, "blocks": 16,
                "busy_seconds": 2.0, "busy_fraction": 0.5,
                "items_per_second": 0.8, "claim_seconds_mean": 0.004,
            },
        }
        monkeypatch.setattr(ServiceClient, "fleet", lambda self: summary)
        return summary

    def test_fleet_renders_table(self, capsys, monkeypatch):
        self._fake_summary(monkeypatch)
        assert main(["fleet", "--connect", "127.0.0.1:9"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("worker")
        assert "w-a" in out
        assert "fleet (1)" in out

    def test_fleet_json_output(self, capsys, monkeypatch):
        import json

        self._fake_summary(monkeypatch)
        assert main(["fleet", "--connect", "127.0.0.1:9", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["size"] == 1


class TestLogLevelFlag:
    def test_bad_log_level_is_a_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", "0", "--log-level", "shouting"])
        assert excinfo.value.code == 2
        assert "shouting" in capsys.readouterr().err

    def test_log_level_flag_configures_the_root_handler(self):
        import logging

        from repro.obs.logconfig import setup_logging

        handler = setup_logging("debug")
        try:
            assert logging.getLogger().level == logging.DEBUG
            assert handler in logging.getLogger().handlers
        finally:
            logging.getLogger().removeHandler(handler)

    def test_env_var_sets_the_level(self, monkeypatch):
        import logging

        from repro.obs.logconfig import setup_logging

        monkeypatch.setenv("REPRO_LOG_LEVEL", "info")
        handler = setup_logging()
        try:
            assert logging.getLogger().level == logging.INFO
        finally:
            logging.getLogger().removeHandler(handler)

    def test_worker_tag_lands_in_formatted_records(self):
        import io
        import logging

        from repro.obs.logconfig import setup_logging

        stream = io.StringIO()
        handler = setup_logging("info", worker_id="w-a", stream=stream)
        try:
            logging.getLogger("repro.worker").info("claimed")
        finally:
            logging.getLogger().removeHandler(handler)
        line = stream.getvalue()
        assert "[w-a]" in line
        assert "repro.worker" in line
        assert "claimed" in line


class TestHistoryCLI:
    def _seed_bench_records(self, count=3, throughput=1000.0, **overrides):
        from repro.obs.history import default_ledger

        ledger = default_ledger()
        records = []
        for _ in range(count):
            record = {
                "kind": "bench",
                "scenario": "mc-scaling",
                "backend": "reference",
                "realisations": 2000,
                "seed": 1234,
                "shards": 8,
                "worker_count": 1,
                "wall_seconds": 2000.0 / throughput,
                "throughput": throughput,
                "skipped": False,
            }
            record.update(overrides)
            records.append(ledger.append(record))
        return records

    def test_list_empty_ledger_is_not_an_error(self, capsys):
        assert main(["history", "list"]) == 0
        assert "no records" in capsys.readouterr().out

    def test_list_tabulates_records_with_trend(self, capsys):
        self._seed_bench_records()
        assert main(["history", "list"]) == 0
        output = capsys.readouterr().out
        assert "mc-scaling" in output
        assert "1w" in output  # bench records label the worker count
        assert "trend (over listed records):" in output
        assert "p50 s" in output

    def test_list_json_round_trips(self, capsys):
        import json

        self._seed_bench_records(count=2)
        assert main(["history", "list", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert all(r["kind"] == "bench" for r in records)

    def test_list_filters_by_backend(self, capsys):
        self._seed_bench_records(count=1, backend="reference")
        self._seed_bench_records(count=1, backend="vectorized")
        assert main(["history", "list", "--backend", "vectorized"]) == 0
        output = capsys.readouterr().out
        assert "vectorized" in output
        assert "reference" not in output

    def test_show_prints_record_and_sentinel_verdict(self, capsys):
        (record,) = self._seed_bench_records(count=1)
        assert main(["history", "show", record["id"]]) == 0
        output = capsys.readouterr().out
        assert record["id"] in output
        assert "sentinel verdict:" in output

    def test_show_unknown_id_is_a_clean_error(self, capsys):
        assert main(["history", "show", "deadbeef"]) == 2
        assert "no record" in capsys.readouterr().err

    def test_diff_compares_two_records(self, capsys):
        fast, slow = (
            self._seed_bench_records(count=1, throughput=1000.0)[0],
            self._seed_bench_records(count=1, throughput=500.0)[0],
        )
        assert main(["history", "diff", fast["id"], slow["id"]]) == 0
        output = capsys.readouterr().out
        assert "throughput" in output
        assert "-50%" in output

    def test_prune_needs_a_flag(self, capsys):
        assert main(["history", "prune"]) == 2
        assert "--keep" in capsys.readouterr().err

    def test_prune_keep(self, capsys):
        self._seed_bench_records(count=5)
        assert main(["history", "prune", "--keep", "2"]) == 0
        assert "kept 2, dropped 3" in capsys.readouterr().out

    def test_import_seeds_ledger_from_bench_report(self, capsys, tmp_path):
        import json

        from repro.obs.history import default_ledger

        report = tmp_path / "BENCH_distributed.json"
        report.write_text(json.dumps({
            "scenario": "mc-scaling",
            "backend": "reference",
            "shards": 8,
            "realisations": 2000,
            "seed": 1234,
            "summary": {"effective_cpus": 4},
            "timings": [
                {"worker_count": 1, "wall_seconds": 2.0, "throughput": 1000.0},
                {"worker_count": 2, "wall_seconds": 1.1, "throughput": 1800.0},
            ],
        }))
        assert main(["history", "import", str(report)]) == 0
        output = capsys.readouterr().out
        assert "imported 2 record(s)" in output
        assert len(default_ledger().query(kind="bench")) == 2

    def test_import_rejects_unrecognised_payload(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"hello": "world"}')
        assert main(["history", "import", str(bogus)]) == 2
        assert "not a recognised BENCH report" in capsys.readouterr().err

    def test_import_missing_file_is_a_clean_error(self, capsys, tmp_path):
        assert main(["history", "import", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestTraceCLI:
    def test_render_replays_a_saved_trace(self, capsys, tmp_path):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        with tracer.span("engine.run"):
            with tracer.span("engine.execute"):
                pass
        path = tmp_path / "trace.ndjson"
        path.write_text(tracer.to_ndjson())
        assert main(["trace", "render", str(path)]) == 0
        output = capsys.readouterr().out
        assert "engine.run" in output
        assert "engine.execute" in output

    def test_render_empty_trace(self, capsys, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        assert main(["trace", "render", str(path)]) == 0
        assert "no spans" in capsys.readouterr().out

    def test_render_missing_file_is_a_clean_error(self, capsys, tmp_path):
        assert main(["trace", "render", str(tmp_path / "gone.ndjson")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestBenchRegressionGate:
    def test_first_run_has_nothing_to_judge_and_passes(self, capsys, tmp_path):
        assert main(
            ["bench", "smoke", "--quick", "--backends", "vectorized",
             "--output", str(tmp_path / "b.json"), "--check-regression"]
        ) == 0
        output = capsys.readouterr().out
        assert "regression check" in output

    def test_steady_rerun_passes_the_gate(self, capsys, tmp_path):
        args = ["bench", "smoke", "--quick", "--backends", "vectorized",
                "--output", str(tmp_path / "b.json")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--check-regression"]) == 0
        assert "regression check passed" in capsys.readouterr().out

    def test_injected_slowdown_fails_the_gate(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        # Measure once to learn this machine's real throughput...
        report_path = tmp_path / "b.json"
        assert main(
            ["bench", "smoke", "--quick", "--backends", "vectorized",
             "--output", str(report_path)]
        ) == 0
        payload = json.loads(report_path.read_text())
        # ...then seed a FRESH ledger with a doctored 100x-faster baseline,
        # making the genuine next run look like a massive slowdown.
        monkeypatch.setenv(
            "REPRO_HISTORY_DIR", str(tmp_path / "doctored-history")
        )
        for scenario in payload["scenarios"]:
            for timing in scenario["timings"].values():
                timing["throughput"] = timing["throughput"] * 100.0
                timing["wall_seconds"] = timing["wall_seconds"] / 100.0
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(payload))
        assert main(["history", "import", str(doctored)]) == 0
        capsys.readouterr()
        assert main(
            ["bench", "smoke", "--quick", "--backends", "vectorized",
             "--output", str(report_path), "--check-regression"]
        ) == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.err
        assert "run-history baseline" in captured.err
