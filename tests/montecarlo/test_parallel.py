"""Tests for the deprecated process-pool shims (now engine-backed)."""

import numpy as np
import pytest

from repro.core.policies import LBP1, NoBalancing
from repro.montecarlo.parallel import run_monte_carlo_auto, run_monte_carlo_parallel
from repro.montecarlo.runner import run_monte_carlo


class TestParallelRunner:
    def test_requires_positive_realisations(self, fast_params):
        with pytest.raises(ValueError):
            run_monte_carlo_parallel(fast_params, NoBalancing(), (5, 5), 0, seed=0)

    def test_inline_fallback_matches_serial_runner(self, fast_params):
        """With max_workers=1 the parallel shim runs inline but must draw the
        same block-seeded sample as the serial shim."""
        serial = run_monte_carlo(fast_params, LBP1(0.5), (20, 5), 8, seed=5)
        inline = run_monte_carlo_parallel(
            fast_params, LBP1(0.5), (20, 5), 8, seed=5, max_workers=1
        )
        np.testing.assert_array_equal(
            serial.completion_times, inline.completion_times
        )
        assert serial.summary == inline.summary

    def test_process_pool_execution(self, fast_params):
        """A small run through real worker processes."""
        estimate = run_monte_carlo_parallel(
            fast_params, NoBalancing(), (10, 10), 8, seed=3, max_workers=2
        )
        assert estimate.num_realisations == 8
        assert estimate.mean_completion_time > 0

    def test_parallel_matches_inline_results(self, fast_params):
        inline = run_monte_carlo_parallel(
            fast_params, NoBalancing(), (10, 10), 6, seed=9, max_workers=1
        )
        pooled = run_monte_carlo_parallel(
            fast_params, NoBalancing(), (10, 10), 6, seed=9, max_workers=2
        )
        np.testing.assert_array_equal(
            inline.completion_times, pooled.completion_times
        )
        assert inline.summary == pooled.summary


class TestWorkerCap:
    def test_pool_slots_capped_at_work_item_count(self, fast_params):
        """A tiny ensemble must not fork idle workers beyond its size."""
        from repro.montecarlo.engine import EngineRequest, run_engine

        report = run_engine(
            EngineRequest(
                params=fast_params,
                policy=NoBalancing(),
                workload=(5, 5),
                num_realisations=3,
                seed=1,
                block_size=1,  # 3 blocks -> 3 work items
                executor="process",
                workers=8,
            )
        )
        # 8 workers requested, but only 3 items exist: the pool is capped.
        assert report.shards_dispatched == 3
        assert set(report.slot_completed) <= {"process-0", "process-1", "process-2"}

    def test_default_pool_size_also_capped(self):
        from repro.montecarlo.pooling import cap_pool_size

        assert cap_pool_size(None, 2) <= 2


class TestExternalExecutor:
    def test_external_executor_matches_inline_and_stays_open(self, fast_params):
        """An externally-managed pool is reused as-is and never shut down."""
        from concurrent.futures import ThreadPoolExecutor

        inline = run_monte_carlo_parallel(
            fast_params, LBP1(0.5), (20, 5), 6, seed=5, max_workers=1
        )
        with ThreadPoolExecutor(max_workers=2) as pool:
            first = run_monte_carlo_parallel(
                fast_params, LBP1(0.5), (20, 5), 6, seed=5, executor=pool
            )
            # The same pool serves a second call (amortised start-up).
            second = run_monte_carlo_parallel(
                fast_params, LBP1(0.5), (20, 5), 6, seed=5, executor=pool
            )
            assert pool.submit(lambda: 1).result() == 1
        np.testing.assert_array_equal(
            inline.completion_times, first.completion_times
        )
        np.testing.assert_array_equal(
            first.completion_times, second.completion_times
        )

    def test_executor_takes_precedence_over_max_workers(self, fast_params):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as pool:
            estimate = run_monte_carlo_parallel(
                fast_params, NoBalancing(), (10, 10), 4, seed=3,
                max_workers=1, executor=pool,
            )
        assert estimate.num_realisations == 4


class TestAutoBackendDispatch:
    def test_reference_backend_matches_default_dispatch(self, fast_params):
        from repro.core.policies import LBP1

        default = run_monte_carlo_auto(
            fast_params, LBP1(0.5), (20, 5), 6, seed=9
        )
        explicit = run_monte_carlo_auto(
            fast_params, LBP1(0.5), (20, 5), 6, seed=9, backend="reference"
        )
        np.testing.assert_array_equal(
            default.completion_times, explicit.completion_times
        )

    def test_vectorized_backend_pool_arguments_change_nothing(self, fast_params):
        from repro.core.policies import LBP1

        serial = run_monte_carlo_auto(
            fast_params, LBP1(0.5), (20, 5), 6, seed=9, backend="vectorized"
        )
        pooled = run_monte_carlo_auto(
            fast_params, LBP1(0.5), (20, 5), 6, seed=9,
            workers=2, backend="vectorized",
        )
        np.testing.assert_array_equal(
            serial.completion_times, pooled.completion_times
        )
