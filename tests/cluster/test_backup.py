"""Tests for the backup agent executing failure-time transfers."""

import pytest

from repro.cluster.backup import BackupAgent
from repro.cluster.network import Network
from repro.cluster.node import ComputeElement
from repro.cluster.task import Task
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.core.policies.base import LoadBalancingPolicy, Transfer
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2


class _FixedPolicy(LoadBalancingPolicy):
    """Test helper: returns a fixed list of failure-time transfers."""

    name = "fixed"

    def __init__(self, transfers):
        self._transfers = transfers

    def initial_transfers(self, workload, params):
        return []

    def on_failure(self, failed_node, queue_sizes, params, time=0.0):
        return list(self._transfers)


def make_setup(env, rng, params=None, queue=10):
    params = params or SystemParameters(
        nodes=(
            NodeParameters(1.0, failure_rate=0.05, recovery_rate=0.1),
            NodeParameters(2.0, failure_rate=0.05, recovery_rate=0.05),
        ),
        delay=TransferDelayModel(0.02),
    )
    node = ComputeElement(env, 0, params.node(0), rng)
    node.assign_initial([Task(task_id=i, origin=0) for i in range(queue)])
    network = Network(env, params, rng, deliver=lambda dst, batch: None)
    agent = BackupAgent(node, network, params)
    return params, node, network, agent


class TestBackupAgent:
    def test_executes_requested_transfer(self, env, rng):
        params, node, network, agent = make_setup(env, rng)
        record = agent.handle_failure(_FixedPolicy([Transfer(0, 1, 4)]), (10, 0), time=1.0)
        assert record.tasks_sent == 4
        assert network.tasks_in_transit == 4
        assert node.queue_length == 6

    def test_caps_at_available_tasks(self, env, rng):
        params, node, network, agent = make_setup(env, rng, queue=3)
        record = agent.handle_failure(_FixedPolicy([Transfer(0, 1, 100)]), (3, 0), time=0.0)
        assert record.tasks_sent == 3
        assert node.queue_length == 0

    def test_empty_transfers_skipped(self, env, rng):
        params, node, network, agent = make_setup(env, rng)
        record = agent.handle_failure(_FixedPolicy([Transfer(0, 1, 0)]), (10, 0), time=0.0)
        assert record.tasks_sent == 0
        assert network.records == []

    def test_rejects_transfers_from_other_nodes(self, env, rng):
        params, node, network, agent = make_setup(env, rng)
        with pytest.raises(ValueError):
            agent.handle_failure(_FixedPolicy([Transfer(1, 0, 2)]), (10, 0), time=0.0)

    def test_lbp1_produces_no_failure_action(self, env, rng):
        params, node, network, agent = make_setup(env, rng)
        record = agent.handle_failure(LBP1(0.5), (10, 0), time=0.0)
        assert record.tasks_sent == 0
        assert agent.total_tasks_sent == 0

    def test_lbp2_compensation_executed(self, env, rng):
        params, node, network, agent = make_setup(env, rng)
        record = agent.handle_failure(LBP2(1.0), (10, 0), time=2.0)
        assert record.tasks_sent > 0
        assert network.records[0].reason == "failure-compensation"
        assert agent.total_tasks_sent == record.tasks_sent

    def test_actions_accumulate(self, env, rng):
        params, node, network, agent = make_setup(env, rng, queue=20)
        agent.handle_failure(_FixedPolicy([Transfer(0, 1, 2)]), (20, 0), time=0.0)
        agent.handle_failure(_FixedPolicy([Transfer(0, 1, 3)]), (18, 0), time=1.0)
        assert len(agent.actions) == 2
        assert agent.total_tasks_sent == 5
