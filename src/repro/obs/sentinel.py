"""Regression sentinel: classify fresh runs against their own history.

Given a record just appended to the :class:`~repro.obs.history.RunLedger`,
the sentinel pulls the last N *comparable* records — same spec hash,
backend, executor and effective CPU budget for ``kind="run"`` records;
same scenario, backend, realisation count, seed, shard count and worker
count for ``kind="bench"`` ones — and classifies each check as

* ``ok`` — within the rolling baseline,
* ``warn`` — drifted beyond ``median ± 3·(1.4826·MAD)`` (or 25 % of the
  median, whichever is larger),
* ``regressed`` — beyond ``median ± 6·(1.4826·MAD)`` or 50 % of the
  median (a 3× slowdown always lands here),
* ``skipped`` — no value, too little comparable history
  (``min_records``), or a timeshared bench point (``skipped: true``).

The checks: **throughput** (higher is better; run records use *computed*
realisations per wall second and skip pure cache-hit runs), **dispatch
overhead** (lower is better, with a 50 ms absolute floor so microsecond
jitter never pages anyone) and **cache hit ratio** (higher is better,
0.1-ratio-point floor).  Median ± MAD is the robust choice: one outlier
baseline run widens the band instead of poisoning a mean.

Verdicts export as ``repro_sentinel_verdict{check=...}`` gauges
(0 = ok, 1 = warn, 2 = regressed) so a running service's ``/metrics``
shows drift, and :func:`evaluate` backs ``repro bench
--check-regression`` and ``repro history show``.  Stdlib-only, like the
rest of :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.history import RunLedger
from repro.obs.metrics import REGISTRY

#: Gaussian consistency constant: MAD × this ≈ one standard deviation.
MAD_SCALE = 1.4826

#: Comparable records considered per baseline.
DEFAULT_WINDOW = 20

#: Baseline size below which a check is ``skipped`` rather than judged.
DEFAULT_MIN_RECORDS = 3

#: Fields two ``kind="run"`` records must share to be comparable.
RUN_MATCH_FIELDS = ("spec_hash", "backend", "executor", "effective_cpus")

#: Fields two ``kind="bench"`` records must share to be comparable.
#: ``effective_cpus`` is deliberately absent: committed baselines come
#: from whatever box regenerated them, and CI should still gate against
#: them (a timeshared baseline is a loose floor, not garbage).
BENCH_MATCH_FIELDS = (
    "scenario", "backend", "realisations", "seed", "shards", "worker_count",
)

#: Check name -> (direction, absolute floor on the drift threshold).
CHECKS: Dict[str, Tuple[bool, float]] = {
    "throughput": (True, 0.0),
    "dispatch_overhead": (False, 0.05),
    "cache_hit_ratio": (True, 0.1),
}

_VERDICT = REGISTRY.gauge(
    "repro_sentinel_verdict",
    "Latest regression-sentinel verdict per check (0 ok, 1 warn, 2 regressed).",
    labelnames=("check",),
)

_STATUS_VALUE = {"ok": 0, "warn": 1, "regressed": 2}

#: Severity order for the report-level verdict.
_STATUS_RANK = {"skipped": 0, "ok": 1, "warn": 2, "regressed": 3}


@dataclass
class CheckResult:
    """One check's verdict against its rolling baseline."""

    check: str
    status: str
    value: Optional[float] = None
    baseline_median: Optional[float] = None
    baseline_mad: Optional[float] = None
    baseline_size: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "status": self.status,
            "value": self.value,
            "baseline_median": self.baseline_median,
            "baseline_mad": self.baseline_mad,
            "baseline_size": self.baseline_size,
            "detail": self.detail,
        }


@dataclass
class SentinelReport:
    """Every check's verdict for one record."""

    record_id: Optional[str]
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def status(self) -> str:
        """The worst individual status (``skipped`` when nothing judged)."""
        if not self.checks:
            return "skipped"
        return max(
            (c.status for c in self.checks), key=lambda s: _STATUS_RANK[s]
        )

    @property
    def regressed(self) -> bool:
        return self.status == "regressed"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record_id": self.record_id,
            "status": self.status,
            "checks": [c.to_dict() for c in self.checks],
        }

    def render(self) -> str:
        lines = []
        for check in self.checks:
            parts = [f"{check.check:<18} {check.status:<9}"]
            if check.value is not None:
                parts.append(f"value {check.value:.4g}")
            if check.baseline_median is not None:
                parts.append(
                    f"baseline {check.baseline_median:.4g} "
                    f"± {MAD_SCALE * (check.baseline_mad or 0.0):.2g} "
                    f"(n={check.baseline_size})"
                )
            if check.detail:
                parts.append(f"— {check.detail}")
            lines.append("  ".join(parts))
        lines.append(f"sentinel verdict: {self.status}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Value extraction per record kind
# ---------------------------------------------------------------------------


def check_value(record: Dict[str, Any], check: str) -> Optional[float]:
    """The value a check judges for one record, or ``None`` (not measured).

    Run-record throughput counts only *computed* realisations — a run
    served partly (or wholly) from the block cache would otherwise look
    like a miraculous speedup and poison the baseline for real work.
    """
    if record.get("kind") == "bench":
        if check == "throughput":
            value = record.get("throughput")
            return None if value is None else float(value)
        return None
    blocks_total = int(record.get("blocks_total") or 0)
    blocks_cached = int(record.get("blocks_cached") or 0)
    computed = blocks_total - blocks_cached
    if check == "throughput":
        wall = float(record.get("wall_seconds") or 0.0)
        realisations = float(record.get("realisations") or 0.0)
        if computed <= 0 or blocks_total <= 0 or wall <= 0.0:
            return None
        return realisations * (computed / blocks_total) / wall
    if check == "dispatch_overhead":
        if computed <= 0:
            return None
        timings = record.get("timings") or {}
        value = timings.get("dispatch_overhead_seconds")
        return None if value is None else float(value)
    if check == "cache_hit_ratio":
        if blocks_total <= 0:
            return None
        return blocks_cached / blocks_total
    raise ValueError(f"unknown sentinel check {check!r}")


def comparable_records(
    ledger: RunLedger,
    record: Dict[str, Any],
    window: int = DEFAULT_WINDOW,
) -> List[Dict[str, Any]]:
    """The last ``window`` ledger records comparable to ``record``.

    Matched on :data:`RUN_MATCH_FIELDS` / :data:`BENCH_MATCH_FIELDS` by
    kind; the record itself (by id) is excluded so a just-appended run is
    judged against its *predecessors*.
    """
    kind = record.get("kind", "run")
    fields = BENCH_MATCH_FIELDS if kind == "bench" else RUN_MATCH_FIELDS
    filters = {name: record.get(name) for name in fields}
    matches = ledger.query(
        limit=window + 1, newest_first=True, kind=kind, **filters
    )
    own_id = record.get("id")
    return [m for m in matches if m.get("id") != own_id][:window]


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def classify(
    value: Optional[float],
    baseline: Sequence[float],
    *,
    higher_better: bool,
    abs_floor: float = 0.0,
    min_records: int = DEFAULT_MIN_RECORDS,
) -> CheckResult:
    """Judge one value against a baseline sample (median ± MAD bands)."""
    values = [float(v) for v in baseline if v is not None]
    if value is None:
        return CheckResult(
            check="", status="skipped", detail="not measured on this record"
        )
    if len(values) < min_records:
        return CheckResult(
            check="",
            status="skipped",
            value=value,
            baseline_size=len(values),
            detail=(
                f"only {len(values)} comparable record(s), "
                f"need {min_records}"
            ),
        )
    med = median(values)
    mad = median(abs(v - med) for v in values)
    # Drift in the *bad* direction only — getting faster is never a page.
    bad_delta = (med - value) if higher_better else (value - med)
    spread = MAD_SCALE * mad
    warn_threshold = max(3.0 * spread, 0.25 * abs(med), abs_floor)
    regress_threshold = max(6.0 * spread, 0.50 * abs(med), abs_floor)
    if bad_delta > regress_threshold:
        status = "regressed"
    elif bad_delta > warn_threshold:
        status = "warn"
    else:
        status = "ok"
    return CheckResult(
        check="",
        status=status,
        value=value,
        baseline_median=med,
        baseline_mad=mad,
        baseline_size=len(values),
        detail=(
            ""
            if status == "ok"
            else f"drifted {bad_delta:.4g} beyond the median "
            f"(warn > {warn_threshold:.4g}, regressed > "
            f"{regress_threshold:.4g})"
        ),
    )


def evaluate(
    ledger: RunLedger,
    record: Dict[str, Any],
    *,
    checks: Optional[Sequence[str]] = None,
    window: int = DEFAULT_WINDOW,
    min_records: int = DEFAULT_MIN_RECORDS,
) -> SentinelReport:
    """Classify ``record`` against its comparable ledger history.

    ``checks`` defaults to all of throughput / dispatch overhead / cache
    hit ratio (bench records only ever measure throughput; the rest come
    back ``skipped``).  A bench record flagged ``skipped: true`` (worker
    count beyond the effective CPUs — timeshared cores) is never judged.
    """
    report = SentinelReport(record_id=record.get("id"))
    names = tuple(checks) if checks is not None else tuple(CHECKS)
    if record.get("kind") == "bench" and record.get("skipped"):
        for name in names:
            report.checks.append(
                CheckResult(
                    check=name,
                    status="skipped",
                    detail="timeshared measurement "
                    "(worker_count > effective_cpus)",
                )
            )
        return report
    history = comparable_records(ledger, record, window=window)
    for name in names:
        higher_better, abs_floor = CHECKS[name]
        baseline = [
            v
            for v in (check_value(prior, name) for prior in history)
            if v is not None
        ]
        result = classify(
            check_value(record, name),
            baseline,
            higher_better=higher_better,
            abs_floor=abs_floor,
            min_records=min_records,
        )
        result.check = name
        report.checks.append(result)
    return report


def export_verdicts(report: SentinelReport) -> None:
    """Publish judged checks as ``repro_sentinel_verdict`` gauges.

    Skipped checks leave the gauge untouched — a service that has never
    had enough history simply exposes no verdict series.
    """
    for check in report.checks:
        value = _STATUS_VALUE.get(check.status)
        if value is not None:
            _VERDICT.labels(check=check.check).set(value)
