"""Tests for the reactive policy LBP-2 and the eq. (8) compensation rule."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import NodeParameters, SystemParameters, paper_parameters
from repro.core.policies.lbp2 import LBP2, compensation_transfer_sizes


class TestCompensationSizes:
    def test_paper_values(self, paper_params):
        """With the paper's rates: node 2 failing sends 9 tasks to node 1...

        L^F_{12} = (λ_r1/(λ_f1+λ_r1)) (λ_d1/Σλ_d) (λ_d2/λ_r2)
                 = (0.1/0.15)(1.08/2.94)(1.86/0.05) ≈ 9.1 -> 9
        and node 1 failing sends 3 tasks to node 2.
        """
        to_node1 = compensation_transfer_sizes(failed_node=1, params=paper_params)
        assert to_node1 == (9, 0)
        to_node2 = compensation_transfer_sizes(failed_node=0, params=paper_params)
        assert to_node2 == (0, 3)

    def test_exact_formula(self, paper_params):
        sizes = compensation_transfer_sizes(1, paper_params)
        expected = math.floor((0.1 / 0.15) * (1.08 / 2.94) * (1.86 / 0.05))
        assert sizes[0] == expected

    def test_failed_node_entry_is_zero(self, paper_params):
        assert compensation_transfer_sizes(0, paper_params)[0] == 0
        assert compensation_transfer_sizes(1, paper_params)[1] == 0

    def test_reliable_failed_node_sends_nothing(self):
        params = SystemParameters(
            nodes=(NodeParameters(1.0), NodeParameters(2.0))
        )
        assert compensation_transfer_sizes(0, params) == (0, 0)

    def test_sizes_independent_of_queue_contents(self, paper_params):
        """The paper notes the compensation amount is a constant of the system."""
        assert compensation_transfer_sizes(1, paper_params) == compensation_transfer_sizes(
            1, paper_params
        )

    def test_invalid_node_rejected(self, paper_params):
        with pytest.raises(IndexError):
            compensation_transfer_sizes(7, paper_params)

    def test_three_node_split(self, three_node_params):
        sizes = compensation_transfer_sizes(0, three_node_params)
        assert sizes[0] == 0
        assert len(sizes) == 3
        assert all(size >= 0 for size in sizes)

    def test_faster_receiver_gets_larger_share(self):
        params = SystemParameters(
            nodes=(
                NodeParameters(1.0, failure_rate=0.05, recovery_rate=0.05),
                NodeParameters(3.0, failure_rate=0.05, recovery_rate=0.1),
                NodeParameters(1.0, failure_rate=0.05, recovery_rate=0.1),
            )
        )
        sizes = compensation_transfer_sizes(0, params)
        assert sizes[1] >= sizes[2]


class TestLBP2Policy:
    def test_gain_bounds(self):
        with pytest.raises(ValueError):
            LBP2(1.5)
        with pytest.raises(ValueError):
            LBP2(-0.1)

    def test_initial_action_is_excess_based(self, paper_params):
        transfers = LBP2(1.0).initial_transfers((100, 60), paper_params)
        assert len(transfers) == 1
        assert transfers[0].source == 0
        assert transfers[0].num_tasks == 41

    def test_initial_gain_attenuates(self, paper_params):
        full = LBP2(1.0).initial_transfers((100, 60), paper_params)[0].num_tasks
        attenuated = LBP2(0.8).initial_transfers((100, 60), paper_params)[0].num_tasks
        assert attenuated < full

    def test_on_failure_uses_compensation_sizes(self, paper_params):
        transfers = LBP2(1.0).on_failure(1, (30, 50), paper_params)
        assert len(transfers) == 1
        assert transfers[0].source == 1
        assert transfers[0].destination == 0
        assert transfers[0].num_tasks == 9

    def test_on_failure_capped_by_queue(self, paper_params):
        transfers = LBP2(1.0).on_failure(1, (30, 4), paper_params)
        assert transfers[0].num_tasks == 4

    def test_on_failure_with_empty_queue(self, paper_params):
        assert LBP2(1.0).on_failure(1, (30, 0), paper_params) == []

    def test_compensation_can_be_disabled(self, paper_params):
        policy = LBP2(1.0, compensate=False)
        assert policy.on_failure(1, (30, 50), paper_params) == []
        assert policy.initial_transfers((100, 60), paper_params)  # still balances

    def test_with_gain_preserves_compensation_flag(self):
        policy = LBP2(1.0, compensate=False).with_gain(0.5)
        assert policy.gain == 0.5
        assert policy.compensate is False

    @given(
        q0=st.integers(min_value=0, max_value=300),
        q1=st.integers(min_value=0, max_value=300),
        failed=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=60, deadline=None)
    def test_failure_transfers_never_exceed_failed_queue(self, q0, q1, failed):
        transfers = LBP2(1.0).on_failure(failed, (q0, q1), paper_parameters())
        total = sum(t.num_tasks for t in transfers)
        assert total <= (q0, q1)[failed]
        assert all(t.source == failed for t in transfers)
