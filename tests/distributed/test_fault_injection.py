"""Fault injection: crashes mid-batch, slow-worker timeouts and duplicate
posts must never lose a block, double-merge a block, or change the merged
statistics.

The scripted scenarios run in tier-1 (faults injected through a chaos
executor and board/scheduler threads, real block execution inline); the
subprocess scenario — SIGKILL against a live ``repro worker`` — carries
the ``slow`` marker and runs in the CI bench job.
"""

import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.distributed.executors import ShardExecutor, ShardOutcome
from repro.distributed.scheduler import ShardScheduler
from repro.distributed.work import execute_work_item
from repro.service.shards import BoardExecutor, ShardBoard


class ChaosExecutor(ShardExecutor):
    """Inline execution with scripted faults, keyed by shard index.

    ``crash_once`` shards fail their first attempt with an error outcome
    (a worker crash surfaced to the scheduler); ``swallow_once`` shards
    silently vanish on their first attempt (a hung worker — only the shard
    timeout recovers them); ``duplicate`` shards report their success
    outcome twice (a worker retrying a post the scheduler already took).
    """

    name = "chaos"

    def __init__(self, crash_once=(), swallow_once=(), duplicate=()):
        self.crash_once = set(crash_once)
        self.swallow_once = set(swallow_once)
        self.duplicate = set(duplicate)
        self._queue = []
        self._abandoned = set()

    def slots(self):
        return ("chaos-0", "chaos-1")

    def start(self, slot, item):
        self._queue.append((slot, item))

    def poll(self, timeout):
        outcomes = []
        while self._queue and not outcomes:
            slot, item = self._queue.pop(0)
            if item["id"] in self._abandoned:
                continue
            shard = int(item["shard"])
            if shard in self.crash_once:
                self.crash_once.discard(shard)
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"], shard=shard, slot=slot,
                        error="injected worker crash",
                    )
                )
                continue
            if shard in self.swallow_once:
                self.swallow_once.discard(shard)
                continue
            result = execute_work_item(item)
            outcomes.append(
                ShardOutcome(
                    item_id=item["id"], shard=shard, slot=slot, result=result
                )
            )
            if shard in self.duplicate:
                self.duplicate.discard(shard)
                outcomes.append(
                    ShardOutcome(
                        item_id=item["id"], shard=shard, slot=slot,
                        result=dict(result),
                    )
                )
        return outcomes

    def abandon(self, slot, item_id):
        self._abandoned.add(item_id)


class TestEngineUnderFaults:
    """run_engine through a faulty executor stays ``==`` the serial run."""

    @pytest.fixture
    def request_kwargs(self, fast_params):
        from repro.core.policies.lbp1 import LBP1

        return dict(
            params=fast_params,
            policy=LBP1(gain=0.5),
            workload=(30, 30),
            seed=9001,
            num_realisations=48,
            block_size=6,
        )

    @pytest.fixture
    def serial(self, request_kwargs):
        from repro.montecarlo.engine import EngineRequest, run_engine

        return run_engine(EngineRequest(**request_kwargs, shards=1))

    def _run_chaotic(self, request_kwargs, **chaos):
        from repro.montecarlo.engine import EngineRequest, run_engine

        return run_engine(
            EngineRequest(
                **request_kwargs,
                shards=4,
                executor=ChaosExecutor(**chaos),
                shard_timeout=0.5,
            )
        )

    def _assert_identical(self, report, serial, request_kwargs):
        assert report.stats.mean == serial.stats.mean
        assert report.stats.variance == serial.stats.variance
        assert np.array_equal(
            report.estimate.completion_times, serial.estimate.completion_times
        )
        # No block lost, none double-merged.
        assert len(report.estimate.completion_times) == (
            request_kwargs["num_realisations"]
        )

    def test_crashed_attempts_are_retried_bit_identically(
        self, request_kwargs, serial
    ):
        report = self._run_chaotic(request_kwargs, crash_once={0, 2})
        self._assert_identical(report, serial, request_kwargs)

    def test_hung_attempts_time_out_and_reassign(self, request_kwargs, serial):
        report = self._run_chaotic(request_kwargs, swallow_once={1})
        self._assert_identical(report, serial, request_kwargs)

    def test_duplicate_outcomes_merge_exactly_once(
        self, request_kwargs, serial
    ):
        report = self._run_chaotic(request_kwargs, duplicate={0, 3})
        self._assert_identical(report, serial, request_kwargs)

    def test_compound_failure_storm(self, request_kwargs, serial):
        report = self._run_chaotic(
            request_kwargs, crash_once={0}, swallow_once={2}, duplicate={1}
        )
        self._assert_identical(report, serial, request_kwargs)


class TestBoardCrashMidBatch:
    """A worker dying mid-batch loses only its *unfinished* items."""

    def test_posted_items_survive_queued_items_fail_over(self):
        board = ShardBoard(worker_timeout=0.1)
        worker_id = board.register("crasher")
        for index in range(3):
            board.assign(worker_id, {"id": f"i{index}", "shard": index})
        claimed = board.claim_batch(worker_id, batch=2, token="c1")
        assert len(claimed) == 2
        assert board.post_result(
            worker_id, "i0", result={"shard": 0, "blocks": []}
        )
        # The worker dies: i1 is claimed-but-unfinished (left to the shard
        # timeout), i2 is queued-unclaimed (fails over immediately).
        time.sleep(0.15)
        outcomes = board.collect(timeout=0.5)
        by_shard = {o.shard: o for o in outcomes}
        assert by_shard[0].ok
        assert not by_shard[2].ok and "stopped polling" in by_shard[2].error
        assert 1 not in by_shard

    def test_scheduler_reassigns_only_unfinished_batch_items(self):
        board = ShardBoard(worker_timeout=0.2)
        crasher_done = []
        rescue_done = []
        rescue_stop = threading.Event()

        def crasher():
            worker_id = board.register("crasher")
            deadline = time.monotonic() + 5
            sequence = 0
            items = []
            while time.monotonic() < deadline and not items:
                sequence += 1
                items = board.claim_batch(
                    worker_id, batch=3, token=f"c{sequence}"
                )
                time.sleep(0.01)
            if items:
                first = items[0]
                board.post_result(
                    worker_id,
                    first["id"],
                    result={"shard": first["shard"], "blocks": []},
                )
                crasher_done.append(int(first["shard"]))
            # ... and dies without posting the rest of the batch.

        def rescue():
            # Joins the fleet only after the crash, mid-job.
            time.sleep(0.6)
            worker_id = board.register("rescue")
            sequence = 0
            while not rescue_stop.is_set():
                sequence += 1
                for item in board.claim_batch(
                    worker_id, batch=3, token=f"r{sequence}"
                ):
                    rescue_done.append(int(item["shard"]))
                    board.post_result(
                        worker_id,
                        item["id"],
                        result={"shard": item["shard"], "blocks": []},
                    )
                time.sleep(0.01)

        threads = [
            threading.Thread(target=crasher, daemon=True),
            threading.Thread(target=rescue, daemon=True),
        ]
        for thread in threads:
            thread.start()
        try:
            scheduler = ShardScheduler(
                BoardExecutor(board, slot_depth=3),
                shard_timeout=0.5,
                poll_interval=0.05,
            )
            items = {
                i: {"task": "t", "shard": i, "spec": {}, "blocks": [],
                    "version": 1}
                for i in range(3)
            }
            results = scheduler.run(items)
        finally:
            rescue_stop.set()
        assert set(results) == {0, 1, 2}
        # The crasher's posted shard was never re-executed; exactly the
        # two unfinished batch items moved to the rescue worker.
        assert len(crasher_done) == 1
        assert sorted(crasher_done + rescue_done) == [0, 1, 2]


@pytest.mark.slow
class TestWorkerKillSubprocess:
    """SIGKILL against a live ``repro worker`` process mid-batch."""

    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def _spawn_worker(self, url, name):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", url, "--name", name, "--batch", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_killed_worker_mid_batch_is_recovered(self, background_service):
        from repro.distributed.runner import run_sharded_spec
        from repro.scenarios import resolve
        from repro.scenarios.orchestrator import apply_overrides
        from repro.service.client import ServiceClient

        spec = apply_overrides(resolve("smoke"), shards=6)
        local = run_sharded_spec(spec, executor="inline", use_store=False)

        procs = []
        with background_service(
            shard_options={"shard_timeout": 3.0}
        ) as service:
            client = ServiceClient(service.url, timeout=30.0)
            try:
                procs.append(self._spawn_worker(service.url, "victim"))
                job = client.submit(
                    scenario="smoke", shards=6, executor="workers"
                )
                # Kill the victim the moment it holds claimed work.
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    fleet = client.shard_workers()
                    if any(w["claimed_items"] > 0 for w in fleet):
                        break
                    time.sleep(0.05)
                procs[0].kill()
                procs.append(self._spawn_worker(service.url, "rescue"))
                view = client.wait(job.id, timeout=120)
                assert view.state == "done"
                fetched = client.result(view.content_hashes[0])
            finally:
                for proc in procs:
                    proc.kill()
                for proc in procs:
                    proc.wait(timeout=10)
        # Recovery is exact, not approximate: the reassigned blocks replay
        # the same seed streams, so the merged mean is bit-identical.
        assert fetched.scalars["mean_completion_time"] == float(
            local.estimate.summary.mean
        )
