"""One logging setup for every ``repro`` entry point.

``repro serve``, ``repro worker`` and the plain CLI previously ran with
an unconfigured root logger — scheduler reassignment warnings came out
bare, worker logs and service logs were indistinguishable when
interleaved in CI, and there was no way to turn on DEBUG without editing
code.  :func:`setup_logging` gives all three the same formatter::

    2026-08-08 12:00:01,234 WARNING repro.distributed.scheduler [w-a]: ...

(timestamp, level, logger name, worker id — the bracketed worker tag is
present only when an id was given, so service/CLI lines stay clean).

Level resolution: explicit ``--log-level`` flag beats the
``REPRO_LOG_LEVEL`` environment variable beats ``WARNING``.  Logs go to
stderr so stdout stays machine-parseable (the e2e harness reads the
service's ``listening on http://...`` line from stdout).
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable consulted when no explicit level is given.
ENV_VAR = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s%(worker_tag)s: %(message)s"


class _WorkerTagFilter(logging.Filter):
    """Inject ``worker_tag`` (`` [name]`` or empty) into every record."""

    def __init__(self, worker_id: Optional[str]) -> None:
        super().__init__()
        self.worker_tag = f" [{worker_id}]" if worker_id else ""

    def filter(self, record: logging.LogRecord) -> bool:
        record.worker_tag = self.worker_tag
        return True


def resolve_level(level: Optional[str] = None) -> int:
    """Flag value > ``REPRO_LOG_LEVEL`` > WARNING; bad names raise."""
    name = level or os.environ.get(ENV_VAR) or "WARNING"
    resolved = logging.getLevelName(str(name).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {name!r}")
    return resolved


def setup_logging(
    level: Optional[str] = None,
    *,
    worker_id: Optional[str] = None,
    stream=None,
) -> logging.Handler:
    """(Re)configure the root logger with the shared repro formatter.

    Idempotent per process: a previous handler installed by this function
    is replaced, not stacked — ``repro worker`` calls it again once the
    worker knows its registered name.
    """
    root = logging.getLogger()
    for handler in list(root.handlers):
        if getattr(handler, "_repro_logconfig", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.addFilter(_WorkerTagFilter(worker_id))
    handler._repro_logconfig = True
    root.addHandler(handler)
    root.setLevel(resolve_level(level))
    return handler
