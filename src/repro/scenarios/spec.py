"""Declarative scenario descriptions with stable content hashes.

A :class:`ScenarioSpec` is a frozen, purely-data description of one
reproduction run: the stochastic system, the initial workload, the policy
under study, the sweep grids and the realisation counts.  Two properties
make it the backbone of the scenario subsystem:

* **deterministic serialization** — :meth:`ScenarioSpec.to_json` renders the
  spec as canonical JSON (sorted keys, no whitespace), so the same spec
  always produces the same byte string, and
* **content addressing** — :meth:`ScenarioSpec.content_hash` is the SHA-256
  of that canonical form (minus the human-facing ``name``), so any change
  that could affect results changes the hash while a mere rename does not.

The hash keys the on-disk result cache (:mod:`repro.scenarios.cache`): a
re-run of an unchanged scenario is a lookup, and a sweep only computes the
points whose hashes are missing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.parameters import (
    NodeParameters,
    SystemParameters,
    TransferDelayModel,
    paper_parameters,
)
from repro.core.policies.base import LoadBalancingPolicy
from repro.core.policies.baselines import NoBalancing, ProportionalOneShot, SendAllOnFailure
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2

#: Version of the serialized spec schema; bumping it invalidates every cache
#: entry (the hash covers it), which is exactly what a semantic change to the
#: spec format should do.
#:
#: History: 2 — the ``backend`` field joined the spec (and the content hash),
#: so results computed by different execution backends are cached separately.
#: 3 — the ``shards``/``shard_block`` fields joined the spec: sharded
#: execution derives per-seed-block random streams (a different — equally
#: valid — sample than the unsharded path), so sharded and unsharded runs
#: must never alias in the cache.
#: 4 — the unified engine: *every* Monte-Carlo run (``shards=0`` included)
#: now samples the block-seeded streams, so results computed by the old
#: per-realisation unsharded path must not alias the new ones.
SPEC_VERSION = 4

#: Default seed-block size for sharded execution (realisations per block).
#: The block — not the shard — is the RNG and shard-cache granularity, which
#: is what makes merged results invariant to the shard count (see
#: :mod:`repro.distributed.plan`).
DEFAULT_SHARD_BLOCK = 32


@dataclass(frozen=True)
class NodeSpec:
    """Declarative counterpart of :class:`repro.core.parameters.NodeParameters`."""

    service_rate: float
    failure_rate: float = 0.0
    recovery_rate: float = 0.0
    initially_up: bool = True
    name: str = ""

    def to_parameters(self) -> NodeParameters:
        return NodeParameters(
            service_rate=self.service_rate,
            failure_rate=self.failure_rate,
            recovery_rate=self.recovery_rate,
            initially_up=self.initially_up,
            name=self.name,
        )

    @classmethod
    def from_parameters(cls, node: NodeParameters) -> "NodeSpec":
        return cls(
            service_rate=node.service_rate,
            failure_rate=node.failure_rate,
            recovery_rate=node.recovery_rate,
            initially_up=node.initially_up,
            name=node.name,
        )


@dataclass(frozen=True)
class DelaySpec:
    """Declarative counterpart of :class:`TransferDelayModel`."""

    mean_delay_per_task: float = 0.02
    fixed_overhead: float = 0.0
    kind: str = "exponential"

    def to_model(self) -> TransferDelayModel:
        return TransferDelayModel(
            mean_delay_per_task=self.mean_delay_per_task,
            fixed_overhead=self.fixed_overhead,
            kind=self.kind,
        )

    @classmethod
    def from_model(cls, model: TransferDelayModel) -> "DelaySpec":
        return cls(
            mean_delay_per_task=model.mean_delay_per_task,
            fixed_overhead=model.fixed_overhead,
            kind=model.kind,
        )


@dataclass(frozen=True)
class SystemSpec:
    """Declarative description of the full stochastic system."""

    nodes: Tuple[NodeSpec, ...]
    delay: DelaySpec = field(default_factory=DelaySpec)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def to_parameters(self) -> SystemParameters:
        return SystemParameters(
            nodes=tuple(node.to_parameters() for node in self.nodes),
            delay=self.delay.to_model(),
        )

    @classmethod
    def from_parameters(cls, params: SystemParameters) -> "SystemSpec":
        return cls(
            nodes=tuple(NodeSpec.from_parameters(n) for n in params.nodes),
            delay=DelaySpec.from_model(params.delay),
        )

    @classmethod
    def paper(cls, mean_delay_per_task: float = 0.02) -> "SystemSpec":
        """The paper's two-node Crusoe/P4 system."""
        return cls.from_parameters(
            paper_parameters(mean_delay_per_task=mean_delay_per_task)
        )

    def with_delay_per_task(self, mean_delay_per_task: float) -> "SystemSpec":
        return replace(
            self, delay=replace(self.delay, mean_delay_per_task=mean_delay_per_task)
        )


#: Policy kinds a :class:`PolicySpec` can describe.
POLICY_KINDS = ("lbp1", "lbp2", "none", "proportional", "send_all")


@dataclass(frozen=True)
class PolicySpec:
    """Declarative description of a load-balancing policy.

    ``gain=None`` means "use the model-optimal gain for the scenario's
    system and workload" (resolved at run time by
    :meth:`build`); an explicit value pins the gain.
    """

    kind: str = "lbp1"
    gain: Optional[float] = None
    sender: Optional[int] = None
    receiver: Optional[int] = None
    compensate: bool = True

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ValueError(f"policy kind must be one of {POLICY_KINDS}, got {self.kind!r}")

    def build(
        self, params: SystemParameters, workload: Sequence[int]
    ) -> LoadBalancingPolicy:
        """Instantiate the policy, resolving an unset gain via the model."""
        if self.kind == "none":
            return NoBalancing()
        if self.kind == "proportional":
            return ProportionalOneShot()
        if self.kind == "send_all":
            return SendAllOnFailure()
        if self.kind == "lbp1":
            gain = self.gain
            sender, receiver = self.sender, self.receiver
            if gain is None:
                from repro.core.optimize import optimal_gain_lbp1

                optimum = optimal_gain_lbp1(params, tuple(workload))
                gain, sender, receiver = optimum.optimal_gain, optimum.sender, optimum.receiver
            return LBP1(float(gain), sender=sender, receiver=receiver)
        # lbp2
        gain = self.gain
        if gain is None:
            from repro.core.optimize import optimal_gain_lbp2_initial

            gain = optimal_gain_lbp2_initial(params, tuple(workload)).optimal_gain
        return LBP2(float(gain), compensate=self.compensate)


def _jsonify(value: Any) -> Any:
    """Recursively convert tuples to lists so the payload is pure JSON."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    return value


def _tuplify(value: Any) -> Any:
    """Inverse of :func:`_jsonify`: lists become tuples (specs are frozen)."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    if isinstance(value, dict):
        return {k: _tuplify(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described scenario run.

    Parameters
    ----------
    name:
        Human-facing identifier (registry key); *not* part of the content
        hash, so renaming a scenario keeps its cached results valid.
    kind:
        Which runner interprets the spec (see
        :data:`repro.scenarios.orchestrator.RUNNER_KINDS`), e.g. ``"fig3"``
        or ``"mc_point"``.
    system:
        The stochastic system.
    workload:
        Initial workload vector (may be empty for calibration scenarios such
        as fig1/fig2 that do not process a queue).
    policy:
        Policy under study, for kinds that take a single policy.
    gains / delays:
        Sweep grids, for kinds that sweep.
    mc_realisations / experiment_realisations:
        Realisation counts for the Monte-Carlo and test-bed estimators.
    seed:
        Root seed; every stochastic stream of the run derives from it.
    backend:
        Execution-backend name used for the Monte-Carlo estimates (see
        :mod:`repro.backends`).  Part of the content hash: results computed
        by different kernels never alias in the cache.
    shards:
        ``0`` (default) runs the historical unsharded path.  ``>= 1``
        executes the Monte-Carlo ensemble through the sharded runner
        (:mod:`repro.distributed`): realisations are partitioned into
        fixed-size seed blocks, grouped into at most ``shards`` work items
        and dispatched to a shard executor.  The merged result is invariant
        to the shard count but differs from the unsharded sample (block
        seed streams), so ``shards`` participates in the content hash.
    shard_block:
        Realisations per seed block under sharded execution (the RNG and
        shard-cache granularity).  Changing it changes the sampled streams,
        so it participates in the content hash too.
    options:
        Kind-specific extras as a sorted tuple of ``(key, value)`` pairs
        (values may be scalars or nested tuples).
    """

    name: str
    kind: str
    system: SystemSpec
    workload: Tuple[int, ...] = ()
    policy: Optional[PolicySpec] = None
    gains: Optional[Tuple[float, ...]] = None
    delays: Optional[Tuple[float, ...]] = None
    mc_realisations: int = 100
    experiment_realisations: int = 0
    seed: int = 0
    backend: str = "reference"
    shards: int = 0
    shard_block: int = DEFAULT_SHARD_BLOCK
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError(
                f"backend must be a non-empty backend name, got {self.backend!r}"
            )
        object.__setattr__(self, "shards", int(self.shards))
        object.__setattr__(self, "shard_block", int(self.shard_block))
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0, got {self.shards!r}")
        if self.shard_block < 1:
            raise ValueError(f"shard_block must be >= 1, got {self.shard_block!r}")
        object.__setattr__(self, "workload", tuple(int(m) for m in self.workload))
        if self.gains is not None:
            object.__setattr__(self, "gains", tuple(float(g) for g in self.gains))
        if self.delays is not None:
            object.__setattr__(self, "delays", tuple(float(d) for d in self.delays))
        options = tuple(sorted((str(k), _tuplify(v)) for k, v in self.options))
        object.__setattr__(self, "options", options)
        if self.mc_realisations < 0 or self.experiment_realisations < 0:
            raise ValueError("realisation counts must be >= 0")

    # -- kind-specific extras ---------------------------------------------

    def option(self, key: str, default: Any = None) -> Any:
        """Value of a kind-specific option, or ``default``."""
        for k, v in self.options:
            if k == key:
                return v
        return default

    def with_(self, **overrides) -> "ScenarioSpec":
        """Copy of this spec with the given fields replaced."""
        return replace(self, **overrides)

    def with_options(self, **extra) -> "ScenarioSpec":
        """Copy of this spec with the given options merged in."""
        merged = dict(self.options)
        merged.update(extra)
        return replace(self, options=tuple(merged.items()))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (tuples become lists)."""
        payload = _jsonify(asdict(self))
        payload["spec_version"] = SPEC_VERSION
        return payload

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators — byte-stable."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        data = dict(payload)
        data.pop("spec_version", None)
        system = data["system"]
        data["system"] = SystemSpec(
            nodes=tuple(NodeSpec(**n) for n in system["nodes"]),
            delay=DelaySpec(**system["delay"]),
        )
        if data.get("policy") is not None:
            data["policy"] = PolicySpec(**data["policy"])
        data["options"] = tuple(
            (k, _tuplify(v)) for k, v in (data.get("options") or ())
        )
        for key in ("workload", "gains", "delays"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @property
    def content_hash(self) -> str:
        """SHA-256 of the canonical form, excluding the human-facing name."""
        payload = self.to_dict()
        payload.pop("name")
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
