"""Benchmark: regenerate Fig. 4 (queue-length trajectories, LBP-1 vs LBP-2)."""

import pytest

from repro.experiments.fig4_queue_traces import run as run_fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4_queue_traces(benchmark, bench_once):
    result = bench_once(benchmark, run_fig4, seed=404)
    print()
    print(result.render(num_points=25))

    # Shape checks: queues drain to zero, the LBP-2 realisation shows
    # compensation transfers at failure instants (if any failure occurred),
    # and frozen-queue plateaus exist whenever a node was down.
    for policy in ("lbp1", "lbp2"):
        for node in (0, 1):
            _, values = result.queue_series(policy, node)
            assert values[-1] == 0.0

    lbp2 = result.lbp2_result
    if sum(lbp2.failures_per_node) > 0:
        compensations = [
            record for record in lbp2.transfer_records
            if record.reason == "failure-compensation"
        ]
        assert compensations
        flats = result.flat_segment_durations()
        assert max(flats.values()) > 1.0
