"""Running repeated independent realisations of a simulated system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionBackend

import numpy as np

from repro.cluster.system import DistributedSystem, SimulationResult
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.statistics import SummaryStatistics, summarize
from repro.sim.rng import RandomStreams, SeedLike


@dataclass
class MonteCarloEstimate:
    """Aggregate of ``n`` independent realisations."""

    policy_name: str
    workload: tuple
    completion_times: np.ndarray
    summary: SummaryStatistics
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def mean_completion_time(self) -> float:
        """Sample mean of the overall completion time."""
        return self.summary.mean

    @property
    def num_realisations(self) -> int:
        """Number of realisations aggregated."""
        return self.summary.n

    def percentile(self, q: float) -> float:
        """Percentile of the completion-time sample (``q`` in [0, 100])."""
        return float(np.percentile(self.completion_times, q))


class MonteCarloRunner:
    """Runs independent realisations with carefully separated random streams.

    Parameters
    ----------
    params:
        System parameters.
    policy:
        The load-balancing policy under study.
    workload:
        Initial workload vector.
    seed:
        Root seed; realisation ``k`` uses the ``k``-th spawned child stream,
        so results are reproducible and independent of execution order.
    keep_results:
        Whether to retain every :class:`SimulationResult` (needed for traces
        and per-node statistics; switch off for very large runs).
    backend:
        Execution backend name or instance (see :mod:`repro.backends`).
        ``None``/``"reference"`` runs the event-driven simulator in-process
        (the historical behaviour); ``"vectorized"`` hands the whole batch
        to the NumPy kernel.  Non-reference backends aggregate internally,
        so they are incompatible with ``keep_results`` and ``progress``.
    system_kwargs:
        Extra keyword arguments forwarded to :class:`DistributedSystem`
        (e.g. ``preemption="restart"`` or ``record_trace=True``).
    """

    def __init__(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        seed: SeedLike = None,
        keep_results: bool = False,
        backend: Union[None, str, "ExecutionBackend"] = None,
        **system_kwargs,
    ) -> None:
        self.params = params
        self.policy = policy
        self.workload = workload if isinstance(workload, Workload) else Workload(tuple(workload))
        self.root = RandomStreams(seed)
        self.keep_results = keep_results
        self.backend = backend
        self.system_kwargs = system_kwargs

    def run_one(self, streams: RandomStreams, horizon: Optional[float] = None) -> SimulationResult:
        """Run a single realisation with the given stream collection."""
        system = DistributedSystem(
            self.params,
            self.policy,
            self.workload,
            streams=streams,
            **self.system_kwargs,
        )
        return system.run(horizon=horizon)

    def run(
        self,
        num_realisations: int,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        progress: Optional[Callable[[int, SimulationResult], None]] = None,
    ) -> MonteCarloEstimate:
        """Run ``num_realisations`` independent realisations and aggregate them."""
        if num_realisations < 1:
            raise ValueError(f"num_realisations must be >= 1, got {num_realisations!r}")

        if self.backend is not None:
            from repro.backends.base import BackendUnsupportedError, resolve_backend
            from repro.backends.reference import ReferenceBackend

            backend = resolve_backend(self.backend)
            # The built-in event-driven backend is this very loop: fall
            # through so keep_results/progress/bit-identical seeding keep
            # working.  Anything else — including a replacement registered
            # under the name "reference" — dispatches to its run_batch.
            if not isinstance(backend, ReferenceBackend):
                if self.keep_results or progress is not None:
                    raise BackendUnsupportedError(
                        f"backend {backend.name!r} aggregates realisations "
                        "internally; keep_results and progress callbacks need "
                        "the reference backend"
                    )
                # Spawn a child seed per call (like the serial path spawns
                # per-realisation children), so repeated run() calls draw
                # fresh, independent samples instead of replaying one.
                (batch_seed,) = self.root.seed_sequence.spawn(1)
                return backend.run_batch(
                    self.params,
                    self.policy,
                    self.workload,
                    num_realisations,
                    seed=batch_seed,
                    horizon=horizon,
                    confidence_level=confidence_level,
                    **self.system_kwargs,
                )

        children = self.root.spawn(num_realisations)
        completion_times = np.empty(num_realisations)
        kept: List[SimulationResult] = []
        for k, streams in enumerate(children):
            result = self.run_one(streams, horizon=horizon)
            completion_times[k] = result.completion_time
            if self.keep_results:
                kept.append(result)
            if progress is not None:
                progress(k, result)
        return MonteCarloEstimate(
            policy_name=self.policy.name,
            workload=tuple(self.workload),
            completion_times=completion_times,
            summary=summarize(completion_times, confidence_level=confidence_level),
            results=kept,
        )


def run_monte_carlo(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
    backend: Union[None, str, "ExecutionBackend"] = None,
    **system_kwargs,
) -> MonteCarloEstimate:
    """One-call Monte-Carlo estimate of the mean overall completion time."""
    runner = MonteCarloRunner(
        params, policy, workload, seed=seed, backend=backend, **system_kwargs
    )
    return runner.run(num_realisations, horizon=horizon)
