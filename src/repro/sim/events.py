"""Event primitives for the discrete-event simulation kernel.

The design follows the classic generator-based DES pattern: an
:class:`Event` is a one-shot occurrence with a value (or an exception), a
list of callbacks and a life-cycle ``untriggered -> triggered -> processed``.
Processes (see :mod:`repro.sim.process`) suspend themselves by yielding
events and are resumed by the environment when the event is processed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.sim.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Environment


class _Pending:
    """Sentinel for the value of an event that has not been triggered."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "<PENDING>"


PENDING: Any = _Pending()

#: Scheduling priorities.  Urgent events (process bootstrap, interrupts) are
#: processed before normal events scheduled at the same simulation time.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot simulation event.

    Parameters
    ----------
    env:
        The environment the event lives in.

    Notes
    -----
    An event can be *triggered* at most once, either with
    :meth:`succeed` (carrying a value) or :meth:`fail` (carrying an
    exception).  Once the environment pops the event off its schedule, the
    event becomes *processed* and its callbacks have run.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks of the event have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event was triggered successfully."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event, available once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def defused(self) -> bool:
        """Whether a failure carried by this event has been handled."""
        return self._defused

    def defuse(self) -> None:
        """Mark the failure of this event as handled.

        A failed event whose exception is never retrieved would otherwise be
        re-raised by :meth:`Environment.step` to avoid silently swallowing
        errors.
        """
        self._defused = True

    # -- triggering -----------------------------------------------------

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (chaining helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    # -- composition ----------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {status} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` time units."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Timeout delay={self._delay}>"


class Condition(Event):
    """Base class for events composed of several sub-events.

    The condition triggers once ``evaluate`` returns ``True`` for the set of
    already-processed sub-events, and its value is a dictionary mapping each
    processed sub-event to its value.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events: List[Event] = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        # Only events whose callbacks have already run count as "done" at the
        # instant the condition triggers (a Timeout is *triggered* from the
        # moment it is created, but it has not yet *occurred*).
        return {event: event._value for event in self._events if event.processed}

    def evaluate(self, count: int, total: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self.evaluate(self._count, len(self._events)):
            self.succeed(self._collect())


class AllOf(Condition):
    """Condition that triggers once *all* sub-events have triggered."""

    def evaluate(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Condition that triggers once *any* sub-event has triggered."""

    def evaluate(self, count: int, total: int) -> bool:
        return count >= 1 or total == 0
