"""Tests for the churn/delay sensitivity study (the paper's concluding claims)."""

import numpy as np
import pytest

from repro.experiments.sensitivity import (
    delay_sensitivity_sweep,
    failure_rate_sweep,
    run,
)


class TestFailureRateSweep:
    def test_more_churn_means_weaker_balancing(self):
        """The optimal gain never increases as failure rates scale up."""
        result = failure_rate_sweep(failure_rate_scales=(0.0, 1.0, 2.0, 4.0))
        assert result.gain_is_non_increasing
        assert result.optimal_gains[0] == pytest.approx(0.45)  # no-failure optimum
        assert result.optimal_gains[-1] < result.optimal_gains[0]

    def test_more_churn_means_longer_completion(self):
        result = failure_rate_sweep(failure_rate_scales=(0.0, 1.0, 3.0))
        assert np.all(np.diff(result.optimal_means) > 0)

    def test_scale_one_matches_fig3_optimum(self):
        result = failure_rate_sweep(failure_rate_scales=(1.0,))
        assert result.optimal_gains[0] == pytest.approx(0.35)
        assert result.optimal_means[0] == pytest.approx(117.0, rel=0.03)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            failure_rate_sweep(failure_rate_scales=(-1.0,))

    def test_render_and_table(self):
        result = failure_rate_sweep(failure_rate_scales=(0.0, 1.0))
        table = result.as_table()
        assert len(table) == 2
        assert "Sensitivity" in result.render()

    def test_default_run_entry_point(self):
        result = run(failure_rate_scales=(0.0, 2.0))
        assert result.parameter_name == "failure_rate_scale"


class TestDelaySweep:
    def test_larger_delay_means_weaker_balancing(self):
        result = delay_sensitivity_sweep(delays_per_task=(0.0, 0.1, 1.0, 2.0))
        assert result.gain_is_non_increasing
        assert result.optimal_gains[-1] < result.optimal_gains[0]

    def test_larger_delay_means_longer_completion(self):
        result = delay_sensitivity_sweep(delays_per_task=(0.02, 0.5, 2.0))
        assert np.all(np.diff(result.optimal_means) >= 0)

    def test_no_failure_variant(self):
        result = delay_sensitivity_sweep(
            delays_per_task=(0.02, 1.0), with_failures=False
        )
        assert result.optimal_gains[0] == pytest.approx(0.45)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            delay_sensitivity_sweep(delays_per_task=(-0.1,))
