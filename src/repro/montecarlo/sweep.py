"""Parameter sweeps: gain curves (Fig. 3), delay studies (Table 3), policy tables.

Each sweep pairs the Monte-Carlo estimate with the corresponding analytical
prediction whenever the model applies, mirroring the paper's practice of
plotting theory, simulation and experiment on the same axes.

Every sweep point runs through the unified engine
(:mod:`repro.montecarlo.engine`), so sweeps inherit its properties for
free: results are bit-identical across serial/pooled/sharded execution,
and a :class:`~repro.distributed.store.ShardStore` passed via ``store``
gives sweep points block-level caching (an interrupted sweep resumes, a
re-run with more realisations computes only the delta).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.workload import Workload
from repro.core.completion_time import CompletionTimeSolver
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.core.policies.lbp1 import LBP1
from repro.core.policies.lbp2 import LBP2
from repro.montecarlo.engine import EngineRequest, run_engine
from repro.montecarlo.runner import MonteCarloEstimate
from repro.sim.rng import SeedLike


@contextmanager
def _sweep_executor(workers: Optional[int], executor) -> Iterator[object]:
    """One executor shared by every point of a sweep.

    An external executor (a shared pool, a live shard executor) is yielded
    as-is and never shut down here; a ``workers > 1`` request creates one
    process executor for the whole sweep instead of one per point; anything
    else runs inline.  This replaces the per-sweep pool bookkeeping the
    old code paths each carried privately.
    """
    if executor is not None:
        yield executor
        return
    if workers is not None and workers > 1:
        from repro.distributed.executors import ProcessShardExecutor

        with ProcessShardExecutor(workers) as pool:
            yield pool
        return
    yield None


@dataclass
class GainSweepResult:
    """Mean completion time as a function of the LB gain ``K`` (Fig. 3)."""

    gains: np.ndarray
    theoretical: np.ndarray
    simulated: np.ndarray
    simulated_ci_half_width: np.ndarray
    theoretical_no_failure: Optional[np.ndarray] = None
    workload: tuple = ()

    @property
    def optimal_gain_theory(self) -> float:
        """Gain minimising the analytical curve."""
        return float(self.gains[int(np.argmin(self.theoretical))])

    @property
    def optimal_gain_simulation(self) -> float:
        """Gain minimising the Monte-Carlo curve."""
        return float(self.gains[int(np.argmin(self.simulated))])

    def as_rows(self) -> List[dict]:
        """One dictionary per gain value (for table rendering)."""
        rows = []
        for idx, gain in enumerate(self.gains):
            row = {
                "gain": float(gain),
                "theory": float(self.theoretical[idx]),
                "simulation": float(self.simulated[idx]),
                "simulation_ci": float(self.simulated_ci_half_width[idx]),
            }
            if self.theoretical_no_failure is not None:
                row["theory_no_failure"] = float(self.theoretical_no_failure[idx])
            rows.append(row)
        return rows


def gain_sweep(
    params: SystemParameters,
    workload: Union[Workload, Sequence[int]],
    gains: Sequence[float],
    num_realisations: int = 100,
    sender: Optional[int] = None,
    receiver: Optional[int] = None,
    seed: SeedLike = 0,
    include_no_failure: bool = True,
    solver: Optional[CompletionTimeSolver] = None,
    backend: Union[None, str] = None,
    workers: Optional[int] = None,
    executor=None,
    store=None,
    refresh: bool = False,
) -> GainSweepResult:
    """Theory + Monte-Carlo sweep of LBP-1 over a gain grid (Fig. 3).

    ``workers``/``executor`` parallelise the Monte-Carlo points over one
    shared executor; ``store`` enables block-level caching of each point.
    Results are identical whichever execution mode runs them.
    """
    workload_t = tuple(workload)
    gains_arr = np.asarray(gains, dtype=float)
    solver = solver if solver is not None else CompletionTimeSolver(params)

    loads = list(workload_t)
    if sender is None:
        sender = 1 if loads[1] > loads[0] else 0
        receiver = 1 - sender

    theoretical = solver.gain_sweep(workload_t, gains_arr, sender=sender, receiver=receiver)

    no_failure = None
    if include_no_failure:
        nf_solver = CompletionTimeSolver(params.without_failures())
        no_failure = nf_solver.gain_sweep(
            workload_t, gains_arr, sender=sender, receiver=receiver
        )

    simulated = np.empty_like(gains_arr)
    half_widths = np.empty_like(gains_arr)
    from repro.sim.rng import spawn_seeds

    per_gain_seeds = spawn_seeds(seed, len(gains_arr))
    with _sweep_executor(workers, executor) as shared:
        for idx, gain in enumerate(gains_arr):
            policy = LBP1(float(gain), sender=sender, receiver=receiver)
            estimate = run_engine(
                EngineRequest(
                    params=params,
                    policy=policy,
                    workload=workload_t,
                    num_realisations=num_realisations,
                    seed=per_gain_seeds[idx],
                    backend=backend,
                    executor=shared,
                    workers=workers,
                    store=store,
                    refresh=refresh,
                )
            ).estimate
            simulated[idx] = estimate.mean_completion_time
            half_widths[idx] = estimate.summary.half_width

    return GainSweepResult(
        gains=gains_arr,
        theoretical=theoretical,
        simulated=simulated,
        simulated_ci_half_width=half_widths,
        theoretical_no_failure=no_failure,
        workload=workload_t,
    )


@dataclass
class DelaySweepResult:
    """LBP-1 vs LBP-2 across per-task transfer delays (Table 3)."""

    delays: np.ndarray
    lbp1_means: np.ndarray
    lbp2_means: np.ndarray
    lbp1_theory: Optional[np.ndarray] = None
    workload: tuple = ()

    @property
    def crossover_delay(self) -> Optional[float]:
        """Smallest swept delay at which LBP-1 beats LBP-2 (``None`` if never)."""
        better = np.flatnonzero(self.lbp1_means < self.lbp2_means)
        if better.size == 0:
            return None
        return float(self.delays[better[0]])

    def as_rows(self) -> List[dict]:
        """One dictionary per delay value (for table rendering)."""
        rows = []
        for idx, delay in enumerate(self.delays):
            row = {
                "delay_per_task": float(delay),
                "lbp1": float(self.lbp1_means[idx]),
                "lbp2": float(self.lbp2_means[idx]),
            }
            if self.lbp1_theory is not None:
                row["lbp1_theory"] = float(self.lbp1_theory[idx])
            rows.append(row)
        return rows


def delay_sweep(
    params: SystemParameters,
    workload: Union[Workload, Sequence[int]],
    delays_per_task: Sequence[float],
    lbp1_gain_grid: Optional[Sequence[float]] = None,
    lbp2_gain: Optional[float] = None,
    num_realisations: int = 200,
    seed: SeedLike = 0,
    workers: Optional[int] = None,
    executor=None,
    store=None,
    refresh: bool = False,
) -> DelaySweepResult:
    """Reproduce the Table 3 comparison: optimal LBP-1 vs LBP-2 across delays.

    For each per-task delay the LBP-1 gain is re-optimised with the
    failure-aware analytical model and the LBP-2 *initial* gain is
    re-optimised with the no-failure model (exactly the recipe the paper
    describes for each policy); both policies' means are then estimated by
    Monte-Carlo, and LBP-1's model prediction is reported alongside.
    Passing an explicit ``lbp2_gain`` pins LBP-2's initial gain instead of
    re-optimising it.

    ``workers``/``executor`` parallelise the Monte-Carlo estimates over one
    shared executor with bit-identical results; an external ``executor`` is
    reused across every delay point and never shut down here.
    """
    from repro.core.optimize import (
        default_gain_grid,
        optimal_gain_lbp1,
        optimal_gain_lbp2_initial,
    )
    from repro.sim.rng import spawn_seeds

    workload_t = tuple(workload)
    delays = np.asarray(delays_per_task, dtype=float)
    gain_grid = (
        np.asarray(lbp1_gain_grid, dtype=float)
        if lbp1_gain_grid is not None
        else default_gain_grid()
    )

    lbp1_theory = np.empty_like(delays)
    lbp1_mc = np.empty_like(delays)
    lbp2_mc = np.empty_like(delays)
    per_delay_seeds = spawn_seeds(seed, 2 * len(delays))

    with _sweep_executor(workers, executor) as shared:

        def estimate(point_params, policy, point_seed) -> float:
            return run_engine(
                EngineRequest(
                    params=point_params,
                    policy=policy,
                    workload=workload_t,
                    num_realisations=num_realisations,
                    seed=point_seed,
                    executor=shared,
                    workers=workers,
                    store=store,
                    refresh=refresh,
                )
            ).estimate.mean_completion_time

        for idx, delay in enumerate(delays):
            scaled = params.with_delay_per_task(float(delay))
            optimum = optimal_gain_lbp1(scaled, workload_t, gains=gain_grid)
            lbp1_theory[idx] = optimum.optimal_mean

            lbp1_policy = LBP1(
                optimum.optimal_gain, sender=optimum.sender, receiver=optimum.receiver
            )
            lbp1_mc[idx] = estimate(scaled, lbp1_policy, per_delay_seeds[2 * idx])

            if lbp2_gain is None:
                initial_gain = optimal_gain_lbp2_initial(
                    scaled, workload_t, gains=gain_grid
                ).optimal_gain
            else:
                initial_gain = float(lbp2_gain)
            lbp2_policy = LBP2(initial_gain)
            lbp2_mc[idx] = estimate(scaled, lbp2_policy, per_delay_seeds[2 * idx + 1])

    return DelaySweepResult(
        delays=delays,
        lbp1_means=lbp1_mc,
        lbp2_means=lbp2_mc,
        lbp1_theory=lbp1_theory,
        workload=workload_t,
    )


def compare_policies(
    params: SystemParameters,
    workload: Union[Workload, Sequence[int]],
    policies: Sequence[LoadBalancingPolicy],
    num_realisations: int = 200,
    seed: SeedLike = 0,
    horizon: Optional[float] = None,
) -> Dict[str, MonteCarloEstimate]:
    """Monte-Carlo comparison of several policies on the same workload.

    All policies see the same master seed, hence the same block seed
    streams (common random numbers), which sharpens the comparison between
    them.  When two policies share a name (e.g. two LBP-1 instances with
    different gains) the later ones get a ``#k`` suffix in the result
    dictionary.
    """
    workload_t = tuple(workload)
    estimates: Dict[str, MonteCarloEstimate] = {}
    for index, policy in enumerate(policies):
        key = policy.name
        if key in estimates:
            key = f"{policy.name}#{index}"
        estimates[key] = run_engine(
            EngineRequest(
                params=params,
                policy=policy,
                workload=workload_t,
                num_realisations=num_realisations,
                seed=seed,
                horizon=horizon,
            )
        ).estimate
    return estimates
