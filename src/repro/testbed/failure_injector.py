"""The failure-injection process of the emulated test-bed.

The paper implements node failures in software: "we have coded a process
that dynamically generates failure instants and sends signals, at all such
failure instants, to the application layer ordering it to stop executing
tasks.  Also, at every failure instant, the same process generates a
recovery time and waits for that amount of time before sending a new signal
... ordering it to resume" (Section 4).

:class:`FailureInjector` is exactly that process for one emulated node: it
draws exponential failure and recovery times and delivers *stop* / *resume*
signals.  It is a thin, architecture-faithful wrapper around the same
mechanics :class:`repro.cluster.failure.FailureRecoveryProcess` provides for
the plain Monte-Carlo model, but it signals the test-bed's balancer layer
(which then involves the backup system) rather than calling into the system
object directly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.parameters import NodeParameters
from repro.sim.distributions import Exponential
from repro.sim.engine import Environment

StopSignal = Callable[[int, float], None]
ResumeSignal = Callable[[int, float], None]


class FailureInjector:
    """Generates failure and recovery signals for one node.

    Parameters
    ----------
    env:
        Simulation environment.
    node_index:
        Index of the node being controlled.
    params:
        The node's stochastic parameters (failure/recovery rates).
    rng:
        Random stream for the failure and recovery times.
    on_stop / on_resume:
        Signals delivered to the application/balancer layers: ``f(node_index,
        time)``.
    """

    def __init__(
        self,
        env: Environment,
        node_index: int,
        params: NodeParameters,
        rng: np.random.Generator,
        on_stop: StopSignal,
        on_resume: ResumeSignal,
    ) -> None:
        self.env = env
        self.node_index = node_index
        self.params = params
        self.rng = rng
        self.on_stop = on_stop
        self.on_resume = on_resume
        #: (failure time, recovery time) pairs generated so far.
        self.injected: List[Tuple[float, Optional[float]]] = []

        self.process = None
        if params.can_fail:
            self._failure = Exponential(params.failure_rate)
            self._recovery = Exponential(params.recovery_rate)
            self.process = env.process(
                self._loop(), name=f"failure-injector-{node_index}"
            )

    @property
    def num_failures(self) -> int:
        """Number of failure signals delivered so far."""
        return len(self.injected)

    def _loop(self):
        while True:
            yield self.env.timeout(self._failure.sample(self.rng))
            failed_at = self.env.now
            self.injected.append((failed_at, None))
            self.on_stop(self.node_index, failed_at)

            yield self.env.timeout(self._recovery.sample(self.rng))
            recovered_at = self.env.now
            self.injected[-1] = (failed_at, recovered_at)
            self.on_resume(self.node_index, recovered_at)
