"""Metrics registry: concurrency, labels, render, snapshot/merge/reset."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    histogram_quantile,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestDeclaration:
    def test_declare_is_idempotent(self, registry):
        first = registry.counter("repro_x_total", "X.", labelnames=("a",))
        second = registry.counter("repro_x_total", "other help", labelnames=("a",))
        assert first is second

    def test_redeclare_with_other_kind_raises(self, registry):
        registry.counter("repro_x_total", "X.")
        with pytest.raises(ValueError, match="already declared"):
            registry.gauge("repro_x_total", "X.")

    def test_redeclare_with_other_labels_raises(self, registry):
        registry.counter("repro_x_total", "X.", labelnames=("a",))
        with pytest.raises(ValueError, match="already declared"):
            registry.counter("repro_x_total", "X.", labelnames=("a", "b"))

    def test_invalid_metric_name_raises(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("repro-bad-name", "X.")

    def test_invalid_label_name_raises(self, registry):
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_x_total", "X.", labelnames=("le gume",))

    def test_histogram_needs_buckets(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("repro_h_seconds", "H.", buckets=())

    def test_default_buckets_end_open(self, registry):
        family = registry.histogram("repro_h_seconds", "H.")
        assert family.buckets[:-1] == DEFAULT_BUCKETS
        assert family.buckets[-1] == float("inf")


class TestSeries:
    def test_counter_counts(self, registry):
        counter = registry.counter("repro_x_total", "X.")
        counter.inc()
        counter.inc(2.5)
        assert counter.labels().get() == 3.5

    def test_counter_rejects_negative_inc(self, registry):
        counter = registry.counter("repro_x_total", "X.")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_set_and_dec(self, registry):
        gauge = registry.gauge("repro_depth", "D.")
        gauge.set(7)
        gauge.dec()
        assert gauge.labels().get() == 6.0

    def test_counter_cannot_set(self, registry):
        counter = registry.counter("repro_x_total", "X.")
        with pytest.raises(ValueError, match="cannot set"):
            counter.set(4)

    def test_label_values_make_distinct_series(self, registry):
        counter = registry.counter("repro_x_total", "X.", labelnames=("k",))
        counter.labels(k="a").inc()
        counter.labels(k="a").inc()
        counter.labels(k="b").inc()
        assert counter.labels(k="a").get() == 2.0
        assert counter.labels(k="b").get() == 1.0

    def test_wrong_labelset_raises(self, registry):
        counter = registry.counter("repro_x_total", "X.", labelnames=("k",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(other="a")
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels()

    def test_histogram_buckets_observe(self, registry):
        hist = registry.histogram("repro_h_seconds", "H.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        state = hist.labels().get()
        assert state["counts"] == [1, 1, 1]  # non-cumulative, +Inf last
        assert state["count"] == 3
        assert state["sum"] == pytest.approx(5.55)

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("repro_x_total", "X.", labelnames=("t",))
        hist = registry.histogram("repro_h_seconds", "H.", buckets=(1.0,))
        rounds = 200

        def worker(index: int) -> None:
            for _ in range(rounds):
                counter.labels(t=str(index % 2)).inc()
                hist.observe(0.5)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.labels(t="0").get() == 4 * rounds
        assert counter.labels(t="1").get() == 4 * rounds
        assert hist.labels().get()["count"] == 8 * rounds


class TestRender:
    def test_prometheus_text_golden(self, registry):
        counter = registry.counter("repro_x_total", "Requests.", labelnames=("outcome",))
        counter.labels(outcome="ok").inc()
        counter.labels(outcome="ok").inc()
        counter.labels(outcome="bad").inc()
        registry.gauge("repro_depth", "Depth.").set(3)
        hist = registry.histogram("repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)

        assert registry.render() == (
            "# HELP repro_depth Depth.\n"
            "# TYPE repro_depth gauge\n"
            "repro_depth 3\n"
            "# HELP repro_lat_seconds Latency.\n"
            "# TYPE repro_lat_seconds histogram\n"
            'repro_lat_seconds_bucket{le="0.1"} 1\n'
            'repro_lat_seconds_bucket{le="1"} 2\n'
            'repro_lat_seconds_bucket{le="+Inf"} 3\n'
            "repro_lat_seconds_sum 5.55\n"
            "repro_lat_seconds_count 3\n"
            "# HELP repro_x_total Requests.\n"
            "# TYPE repro_x_total counter\n"
            'repro_x_total{outcome="bad"} 1\n'
            'repro_x_total{outcome="ok"} 2\n'
        )

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("repro_x_total", "X.", labelnames=("k",))
        counter.labels(k='a"b\\c\nd').inc()
        assert 'k="a\\"b\\\\c\\nd"' in registry.render()

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""


class TestSnapshotMergeReset:
    def _populate(self, registry):
        counter = registry.counter("repro_x_total", "X.", labelnames=("k",))
        counter.labels(k="a").inc(3)
        registry.gauge("repro_depth", "D.").set(2)
        hist = registry.histogram("repro_h_seconds", "H.", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)

    def test_snapshot_is_json_safe(self, registry):
        self._populate(registry)
        payload = registry.snapshot()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["repro_h_seconds"]["buckets"] == [1.0, "+Inf"]

    def test_merge_is_additive_for_counters_and_histograms(self, registry):
        self._populate(registry)
        other = MetricsRegistry()
        other.merge(registry.snapshot())
        other.merge(registry.snapshot())
        counter = other.counter("repro_x_total", "X.", labelnames=("k",))
        assert counter.labels(k="a").get() == 6.0
        hist = other.histogram("repro_h_seconds", "H.", buckets=(1.0,))
        assert hist.labels().get()["count"] == 4
        # Gauges are state, not tallies: last writer wins.
        assert other.gauge("repro_depth", "D.").labels().get() == 2.0

    def test_merge_round_trips_render(self, registry):
        self._populate(registry)
        other = MetricsRegistry()
        other.merge(registry.snapshot())
        assert other.render() == registry.render()

    def test_reset_drops_series_keeps_families(self, registry):
        self._populate(registry)
        registry.reset()
        assert "repro_x_total" in registry.snapshot()
        assert registry.snapshot()["repro_x_total"]["series"] == []
        # Families stay usable after a reset.
        registry.counter("repro_x_total", "X.", labelnames=("k",)).labels(k="a").inc()
        assert registry.snapshot()["repro_x_total"]["series"][0]["value"] == 1.0


def test_process_default_registry_is_shared():
    assert get_registry() is get_registry()


class TestHistogramQuantile:
    def test_interpolates_within_a_bucket(self):
        # 10 observations spread evenly over [0, 1): the median sits at
        # the midpoint of the single covering bucket.
        value = histogram_quantile([1.0, "+Inf"], [10, 0], 0.5)
        assert value == pytest.approx(0.5)

    def test_multiple_buckets(self):
        # 5 obs in (0, 1], 5 in (1, 2]: p50 at the first boundary, p75
        # halfway through the second bucket.
        assert histogram_quantile([1.0, 2.0, "+Inf"], [5, 5, 0], 0.5) == 1.0
        assert histogram_quantile([1.0, 2.0, "+Inf"], [5, 5, 0], 0.75) == 1.5

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        value = histogram_quantile([1.0, "+Inf"], [1, 9], 0.99)
        assert value == 1.0

    def test_all_observations_in_inf_bucket_yield_none(self):
        assert histogram_quantile(["+Inf"], [5], 0.5) is None

    def test_empty_histogram_yields_none(self):
        assert histogram_quantile([1.0, "+Inf"], [0, 0], 0.5) is None

    def test_math_inf_bound_is_accepted(self):
        value = histogram_quantile([1.0, math.inf], [1, 9], 0.99)
        assert value == 1.0

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile([1.0], [1], 1.5)
        with pytest.raises(ValueError):
            histogram_quantile([1.0], [1], -0.1)

    def test_family_quantile_reads_live_series(self, registry):
        hist = registry.histogram(
            "repro_q_seconds", "Q.", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        p50 = hist.quantile(0.5)
        assert 0.1 <= p50 <= 1.0
        assert hist.quantile(0.95) > 1.0

    def test_family_quantile_respects_labels(self, registry):
        hist = registry.histogram(
            "repro_ql_seconds", "QL.", labelnames=("op",), buckets=(1.0, 10.0)
        )
        hist.labels(op="fast").observe(0.5)
        hist.labels(op="slow").observe(9.0)
        assert hist.quantile(0.5, op="fast") < 1.0
        assert hist.quantile(0.5, op="slow") > 1.0

    def test_quantile_on_non_histogram_raises(self, registry):
        gauge = registry.gauge("repro_q_depth", "D.")
        with pytest.raises(ValueError, match="no quantiles"):
            gauge.quantile(0.5)

    def test_quantile_on_empty_series_is_none(self, registry):
        hist = registry.histogram("repro_q_empty_seconds", "QE.")
        assert hist.quantile(0.5) is None
