"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import (
    NodeParameters,
    SystemParameters,
    TransferDelayModel,
    paper_parameters,
)
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams


@pytest.fixture(autouse=True)
def isolated_history(tmp_path, monkeypatch):
    """Point the run-history ledger at a per-test directory.

    Every ``run_engine`` call appends a run record, so without this the
    suite would write into (and be influenced by) ``~/.cache/repro``.
    """
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "history"))


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic random-stream collection."""
    return RandomStreams(12345)


@pytest.fixture
def paper_params() -> SystemParameters:
    """The paper's two-node system (with failures)."""
    return paper_parameters()


@pytest.fixture
def no_failure_params() -> SystemParameters:
    """The paper's two-node system with failures switched off."""
    return paper_parameters(with_failures=False)


@pytest.fixture
def fast_params() -> SystemParameters:
    """A small, quick-to-simulate two-node system with failures.

    Service is fast relative to the workload sizes used in tests, so
    Monte-Carlo based tests stay well under a second.
    """
    return SystemParameters(
        nodes=(
            NodeParameters(service_rate=5.0, failure_rate=0.2, recovery_rate=0.5,
                           name="fast-a"),
            NodeParameters(service_rate=8.0, failure_rate=0.2, recovery_rate=0.4,
                           name="fast-b"),
        ),
        delay=TransferDelayModel(mean_delay_per_task=0.01),
    )


@pytest.fixture
def three_node_params() -> SystemParameters:
    """A small three-node system with churn (for multi-node tests)."""
    return SystemParameters(
        nodes=(
            NodeParameters(service_rate=2.0, failure_rate=0.1, recovery_rate=0.2),
            NodeParameters(service_rate=1.0, failure_rate=0.05, recovery_rate=0.1),
            NodeParameters(service_rate=0.5, failure_rate=0.02, recovery_rate=0.1),
        ),
        delay=TransferDelayModel(mean_delay_per_task=0.02),
    )
