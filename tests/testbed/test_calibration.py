"""Tests for the Fig. 1 / Fig. 2 calibration procedures."""

import numpy as np
import pytest

from repro.testbed.calibration import (
    calibrate,
    estimate_delay_model,
    estimate_processing_rates,
)


class TestProcessingRateEstimation:
    def test_recovers_configured_rates(self, paper_params):
        fits, densities = estimate_processing_rates(
            paper_params, tasks_per_node=2000, seed=1
        )
        assert fits[0].rate == pytest.approx(1.08, rel=0.06)
        assert fits[1].rate == pytest.approx(1.86, rel=0.06)
        assert set(densities) == {0, 1}

    def test_exponential_hypothesis_not_rejected(self, paper_params):
        fits, _ = estimate_processing_rates(paper_params, tasks_per_node=1500, seed=2)
        assert all(fit.acceptable for fit in fits.values())

    def test_minimum_sample_size_enforced(self, paper_params):
        with pytest.raises(ValueError):
            estimate_processing_rates(paper_params, tasks_per_node=1)

    def test_real_execution_path(self, paper_params):
        fits, _ = estimate_processing_rates(
            paper_params, tasks_per_node=30, seed=3, execute_real=True
        )
        assert set(fits) == {0, 1}


class TestDelayEstimation:
    def test_recovers_per_task_delay(self, paper_params):
        fit, density, regression, sizes, means = estimate_delay_model(
            paper_params, probes_per_size=60, seed=4
        )
        assert regression.slope == pytest.approx(0.02, rel=0.2)
        assert fit.mean == pytest.approx(0.02, rel=0.2)
        assert regression.r_squared > 0.7
        assert len(sizes) == len(means)

    def test_mean_delay_grows_with_batch_size(self, paper_params):
        _, _, regression, sizes, means = estimate_delay_model(
            paper_params, probes_per_size=40, seed=5
        )
        assert means[-1] > means[0]
        assert regression.slope > 0

    def test_probe_validation(self, paper_params):
        with pytest.raises(ValueError):
            estimate_delay_model(paper_params, probes_per_size=1)
        with pytest.raises(ValueError):
            estimate_delay_model(paper_params, probe_sizes=[0, 10])


class TestFullCalibration:
    def test_calibration_result_contents(self, paper_params):
        result = calibrate(paper_params, tasks_per_node=500, probes_per_size=20, seed=6)
        assert len(result.estimated_service_rates) == 2
        assert result.estimated_service_rates[0] < result.estimated_service_rates[1]
        assert result.estimated_delay_per_task == pytest.approx(0.02, rel=0.3)
        assert result.processing_densities[0].integral() == pytest.approx(1.0, rel=1e-6)
