"""Binary wire frames: the compact codec behind ``application/x-repro-frame``.

Block results are overwhelmingly lists of ``float64`` (completion-time
samples, exact-sum partials) wrapped in a thin JSON skeleton.  Rendering
those floats as decimal text — the JSON tax — costs ~3× the bytes and
~5-10× the decode time of the raw IEEE-754 words.  A *frame* splits the
payload accordingly:

* every homogeneous ``float`` list with at least :data:`MIN_F8_LEN`
  elements is hoisted into one shared little-endian ``float64`` pool,
  every long non-negative ``int`` list into a ``uint64`` pool;
* the remaining skeleton (the *tree*) is canonical JSON of a wrapper
  ``{"t": payload, "f": [[path, off, n], ...], "q": [...]}`` — hoisted
  lists are replaced in ``payload`` by a placeholder ``0`` and located by
  the ``f``/``q`` reference paths.  Keeping references *outside* the
  payload (instead of as in-tree marker objects) means decode is one
  plain C-speed ``json.loads`` plus a short patch loop — no per-object
  decoder hook — and payload dicts need no reserved keys;
* the byte layout is a fixed binary prefix followed by the three
  sections::

      "RPRF" | version u8 | flags u8 | tree_len u32 | f8_count u32 |
      u8_count u32 | tree bytes | f8 pool | u8 pool

Two optional, independently flagged compressions keep the frame small
without giving back the decode speed:

* ``FLAG_TREE_ZLIB`` — the tree text is zlib-deflated (JSON skeletons
  compress 3-4×; the pool floats are *not* in the text, so this is cheap
  to undo);
* ``FLAG_F8_P7Z`` — the float pool is stored as each value's low seven
  bytes contiguously (``7·n`` bytes) plus the zlib-deflated top
  byte-plane.  For simulation samples the top byte (sign + high exponent
  bits) is nearly constant, so the plane deflates to almost nothing —
  ~12% off the pool for one small zlib call, instead of the ~10× slower
  whole-pool deflate.

Float values round-trip bit-identically in either representation: raw
words by construction, inline text because ``repr``/``float`` round-trips
exactly.  ``uint64`` covers every integer this codebase ships (counts,
seed-block triples); int lists outside that range simply stay in the tree.

The module imports stdlib only — it sits on the numpy-free service path —
but resolves numpy lazily inside the pool codec when available (workers
and the engine always have it; the byte-plane transforms are ~2× faster).

Decoding is defensive: malformed input (bad magic, unknown version or
flags, truncation, out-of-range pool references) raises
:class:`FrameError`, never an uncaught ``struct``/``zlib``/``KeyError`` —
callers treat that as "not a frame" (store miss, HTTP 400).
"""

from __future__ import annotations

import json
import struct
import zlib
from time import perf_counter
from typing import Any, List, Tuple

from repro.obs.metrics import REGISTRY

#: MIME type negotiated on the worker board (Accept / Content-Type).
FRAME_CONTENT_TYPE = "application/x-repro-frame"

#: First bytes of every frame.
FRAME_MAGIC = b"RPRF"

#: Container layout version; bump on any incompatible change.
FRAME_VERSION = 1

#: Float lists shorter than this stay inline JSON: a reference costs
#: ~14 tree bytes plus 8 pool bytes per value, which only beats decimal
#: text for full-precision doubles once a few values share the overhead.
MIN_F8_LEN = 4

#: Int lists shorter than this stay inline JSON (small ints are cheap as
#: text, so the bar is higher than for floats).
MIN_U8_LEN = 16

#: Tree text below this many bytes is stored raw.  The threshold is
#: deliberately high: a typical result-batch tree is 1-3 KB and costs more
#: decode microseconds to inflate than its ~70% text saving is worth next
#: to the (far larger) float pool; genuinely tree-heavy payloads — claim
#: replies carrying many work items — still compress.
TREE_ZLIB_MIN = 8192

#: Float pools below this many values skip the byte-plane split.
P7Z_MIN_COUNT = 64

#: zlib level used for both tree and byte-plane deflate.
ZLIB_LEVEL = 6

FLAG_TREE_ZLIB = 0x01
FLAG_F8_P7Z = 0x02
_KNOWN_FLAGS = FLAG_TREE_ZLIB | FLAG_F8_P7Z

_PREFIX = struct.Struct("<4sBBIII")
_U32 = struct.Struct("<I")

_FRAME_BYTES = REGISTRY.counter(
    "repro_frame_bytes_total",
    "Frame bytes produced (encode) and consumed (decode).",
    labelnames=("op",),
)
_FRAME_SECONDS = REGISTRY.histogram(
    "repro_frame_codec_seconds",
    "Time spent encoding/decoding binary frames.",
    labelnames=("op",),
)
_ENCODE_BYTES = _FRAME_BYTES.labels(op="encode")
_DECODE_BYTES = _FRAME_BYTES.labels(op="decode")
_ENCODE_SECONDS = _FRAME_SECONDS.labels(op="encode")
_DECODE_SECONDS = _FRAME_SECONDS.labels(op="decode")

_np: Any = False  # False = not probed yet; None = unavailable


def _numpy() -> Any:
    """numpy if importable, else ``None`` — resolved lazily so merely
    importing this module keeps the service's request path numpy-free."""
    global _np
    if _np is False:
        try:
            import numpy
        except Exception:  # pragma: no cover - numpy-free deployments
            numpy = None
        _np = numpy
    return _np


class FrameError(ValueError):
    """The bytes are not a well-formed frame (wrong magic, unknown
    version/flags, truncated section, torn pool reference...)."""


def is_frame(data: Any) -> bool:
    """Cheap sniff: do these bytes start like a frame?"""
    return (
        isinstance(data, (bytes, bytearray, memoryview))
        and bytes(data[:4]) == FRAME_MAGIC
    )


def _extract(
    node: Any,
    path: List[Any],
    f8: List[float],
    f8_refs: List[list],
    u8: List[int],
    u8_refs: List[list],
) -> Any:
    """Rebuild ``node`` with long homogeneous numeric lists hoisted into
    the pools, recording each hoist as ``[path, offset, count]`` and
    leaving a placeholder ``0`` in its place."""
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            path.append(key)
            out[key] = _extract(value, path, f8, f8_refs, u8, u8_refs)
            path.pop()
        return out
    if isinstance(node, (list, tuple)):
        items = list(node)
        if len(items) >= MIN_F8_LEN and all(
            type(value) is float for value in items
        ):
            f8_refs.append([list(path), len(f8), len(items)])
            f8.extend(items)
            return 0
        if len(items) >= MIN_U8_LEN and all(
            type(value) is int and 0 <= value < (1 << 64) for value in items
        ):
            u8_refs.append([list(path), len(u8), len(items)])
            u8.extend(items)
            return 0
        out = []
        for index, value in enumerate(items):
            path.append(index)
            out.append(_extract(value, path, f8, f8_refs, u8, u8_refs))
            path.pop()
        return out
    return node


def _pack_f8_pool(values: List[float]) -> Tuple[int, bytes]:
    """The float pool section and its flag bit (0 or :data:`FLAG_F8_P7Z`)."""
    count = len(values)
    np = _numpy()
    if np is not None:
        raw = np.asarray(values, dtype="<f8").tobytes()
    else:
        raw = struct.pack("<%dd" % count, *values)
    if count >= P7Z_MIN_COUNT:
        low = bytearray(raw)
        del low[7::8]  # drop every top byte -> low 7 bytes, value-major
        packed = zlib.compress(raw[7::8], ZLIB_LEVEL)
        if len(low) + _U32.size + len(packed) < len(raw):
            return FLAG_F8_P7Z, b"".join(
                [_U32.pack(len(packed)), bytes(low), packed]
            )
    return 0, raw


def _unpack_f8_pool(
    view: Any, offset: int, count: int, p7z: bool
) -> Tuple[Any, int]:
    """The float pool as a sliceable sequence plus the consumed length."""
    np = _numpy()
    if not p7z:
        nbytes = count * 8
        if offset + nbytes > len(view):
            raise FrameError("frame truncated inside its float pool")
        if np is not None:
            return np.frombuffer(view, dtype="<f8", count=count, offset=offset), nbytes
        return struct.unpack_from("<%dd" % count, view, offset), nbytes
    if offset + _U32.size > len(view):
        raise FrameError("frame truncated before its float-pool plane")
    (packed_len,) = _U32.unpack_from(view, offset)
    low_len = count * 7
    nbytes = _U32.size + low_len + packed_len
    if offset + nbytes > len(view):
        raise FrameError("frame truncated inside its float pool")
    low_off = offset + _U32.size
    high = zlib.decompress(view[low_off + low_len : offset + nbytes])
    if len(high) != count:
        raise FrameError("float-pool top plane inflates to the wrong size")
    if np is not None:
        # Read each value's low seven bytes as a stride-7 u64 load (the
        # pad byte keeps the final load in bounds), mask off the stray
        # neighbour byte and graft the decompressed top plane back on.
        padded = np.empty(low_len + 1, dtype=np.uint8)
        padded[:low_len] = np.frombuffer(
            view, dtype=np.uint8, count=low_len, offset=low_off
        )
        words = np.ndarray(
            shape=(count,), dtype="<u8", buffer=padded, strides=(7,)
        )
        vals = (words & np.uint64((1 << 56) - 1)) | (
            np.frombuffer(high, dtype=np.uint8).astype("<u8") << np.uint64(56)
        )
        return vals.view("<f8"), nbytes
    low = bytes(view[low_off : low_off + low_len])
    raw = bytearray(count * 8)
    for plane in range(7):
        raw[plane::8] = low[plane::7]
    raw[7::8] = high
    return struct.unpack("<%dd" % count, bytes(raw)), nbytes


def encode_frame(payload: Any) -> bytes:
    """Encode any JSON-expressible payload into one frame."""
    started = perf_counter()
    f8: List[float] = []
    u8: List[int] = []
    f8_refs: List[list] = []
    u8_refs: List[list] = []
    tree = _extract(payload, [], f8, f8_refs, u8, u8_refs)
    wrapper: dict = {"t": tree}
    if f8_refs:
        wrapper["f"] = f8_refs
    if u8_refs:
        wrapper["q"] = u8_refs
    tree_bytes = json.dumps(
        wrapper, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    flags = 0
    if len(tree_bytes) >= TREE_ZLIB_MIN:
        packed = zlib.compress(tree_bytes, ZLIB_LEVEL)
        if len(packed) < len(tree_bytes):
            tree_bytes = packed
            flags |= FLAG_TREE_ZLIB
    sections = [tree_bytes]
    if f8:
        f8_flag, pool = _pack_f8_pool(f8)
        flags |= f8_flag
        sections.append(pool)
    if u8:
        np = _numpy()
        if np is not None:
            sections.append(np.asarray(u8, dtype="<u8").tobytes())
        else:
            sections.append(struct.pack("<%dQ" % len(u8), *u8))
    frame = b"".join(
        [
            _PREFIX.pack(
                FRAME_MAGIC,
                FRAME_VERSION,
                flags,
                len(tree_bytes),
                len(f8),
                len(u8),
            )
        ]
        + sections
    )
    _ENCODE_BYTES.inc(len(frame))
    _ENCODE_SECONDS.observe(perf_counter() - started)
    return frame


def _patch_refs(
    payload: Any, refs: Any, pool: Any, count: int, numpy_pool: bool
) -> Any:
    """Splice pool slices back into ``payload`` at each reference path.

    Returns the (possibly replaced) payload — a hoisted *root* list has an
    empty path and substitutes the payload itself.
    """
    if not isinstance(refs, list):
        raise FrameError(f"malformed frame reference table {refs!r}")
    for ref in refs:
        try:
            path, offset, length = ref
        except (TypeError, ValueError) as exc:
            raise FrameError(f"malformed pool reference {ref!r}") from exc
        if (
            type(offset) is not int
            or type(length) is not int
            or offset < 0
            or length < 0
            or offset + length > count
            or not isinstance(path, list)
        ):
            raise FrameError(f"pool reference {ref!r} is out of range")
        part = pool[offset : offset + length]
        values = part.tolist() if numpy_pool else list(part)
        try:
            if not path:
                payload = values
                continue
            parent = payload
            for step in path[:-1]:
                parent = parent[step]
            parent[path[-1]] = values
        except (KeyError, IndexError, TypeError) as exc:
            raise FrameError(
                f"pool reference path {path!r} does not resolve"
            ) from exc
    return payload


def decode_frame(data: Any) -> Any:
    """Decode one frame back to its payload; :class:`FrameError` on any
    malformed input."""
    started = perf_counter()
    view = data if isinstance(data, bytes) else memoryview(data)
    try:
        if len(view) < _PREFIX.size:
            raise FrameError("frame shorter than its fixed prefix")
        magic, version, flags, tree_len, f8_count, u8_count = (
            _PREFIX.unpack_from(view, 0)
        )
        if magic != FRAME_MAGIC:
            raise FrameError(f"bad frame magic {bytes(magic)!r}")
        if version != FRAME_VERSION:
            raise FrameError(
                f"unsupported frame version {version} "
                f"(this codec speaks {FRAME_VERSION})"
            )
        if flags & ~_KNOWN_FLAGS:
            raise FrameError(f"unknown frame flags 0x{flags:02x}")
        offset = _PREFIX.size
        if offset + tree_len > len(view):
            raise FrameError("frame truncated inside its tree")
        tree_bytes = bytes(view[offset : offset + tree_len])
        offset += tree_len
        if flags & FLAG_TREE_ZLIB:
            tree_bytes = zlib.decompress(tree_bytes)

        if f8_count:
            f8_pool, consumed = _unpack_f8_pool(
                view, offset, f8_count, bool(flags & FLAG_F8_P7Z)
            )
            offset += consumed
        else:
            f8_pool = ()
        if u8_count:
            nbytes = u8_count * 8
            if offset + nbytes > len(view):
                raise FrameError("frame truncated inside its int pool")
            u8_pool: Any = struct.unpack_from("<%dQ" % u8_count, view, offset)
            offset += nbytes
        else:
            u8_pool = ()

        wrapper = json.loads(tree_bytes)
        if not isinstance(wrapper, dict) or "t" not in wrapper:
            raise FrameError("frame tree is not a {'t': ...} wrapper")
        payload = wrapper["t"]
        if f8_count:
            numpy_pool = _numpy() is not None
            payload = _patch_refs(
                payload, wrapper.get("f", []), f8_pool, f8_count, numpy_pool
            )
        if u8_count:
            payload = _patch_refs(
                payload, wrapper.get("q", []), u8_pool, u8_count, False
            )
        # Nothing retains the pools past this point: slices were copied
        # out by tolist()/list(), so a zero-copy source buffer (e.g. an
        # mmap) is free to close as soon as this function returns.
        del f8_pool, u8_pool
    except FrameError:
        raise
    except (struct.error, zlib.error, ValueError, OverflowError) as exc:
        raise FrameError(f"malformed frame: {exc}") from exc
    _DECODE_BYTES.inc(len(view))
    _DECODE_SECONDS.observe(perf_counter() - started)
    return payload
