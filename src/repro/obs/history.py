"""The run-history ledger: a durable record of every engine and bench run.

All the telemetry the repo emits — metrics, traces, the overhead ledger —
is ephemeral: it dies with the process.  This module gives it a
longitudinal spine.  A :class:`RunLedger` is an append-only store of
schema-versioned JSON records under ``<cache>/history/``:

* **append** is O(1) and multi-process-safe: one ``fcntl.flock`` on a
  sidecar lock file guards a single ``write()`` of one NDJSON line to the
  active segment (``current.ndjson``).  Writers never rewrite existing
  bytes, so a crash can at worst leave one truncated trailing line —
  which readers skip, by design.
* **segments roll**: when the active segment outgrows
  ``max_segment_bytes`` it is renamed to ``segment-<n>-<nonce>.ndjson``
  (rename is atomic; readers holding an open handle are unaffected) and a
  fresh ``current.ndjson`` starts.
* **query** walks segments newest-first with filters on any record field
  plus ``since``/``until`` time bounds, stopping early at ``limit``.
* **prune** compacts: rewrite the surviving records into one fresh
  segment and delete the rest, under the same lock appends take.

Two record kinds share the ledger.  ``kind="run"`` records distill an
:class:`~repro.montecarlo.engine.EngineReport` (spec hash, backend,
executor, shard/cache counts, timings, attribution, sizing provenance,
worker count, effective CPUs, package/git version); ``kind="bench"``
records carry one benchmark timing each.  The regression sentinel
(:mod:`repro.obs.sentinel`) reads comparable records back to classify
fresh runs as ok/warn/regressed.

Everything here is stdlib-only — the ledger is read on the service's
numpy-free request path (``GET /v1/runs``).  The root resolves as
``REPRO_HISTORY_DIR`` → ``$REPRO_CACHE_DIR/history`` →
``~/.cache/repro/history`` (the env names are kept in sync with
:mod:`repro.scenarios.cache`, which obs must not import); set
``REPRO_HISTORY=0`` to disable recording entirely.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro._version import __version__
from repro.obs.metrics import REGISTRY

try:  # pragma: no cover - import guard exercised only off-Linux
    import fcntl
except ImportError:  # pragma: no cover - Windows: appends stay atomic-ish
    fcntl = None  # type: ignore[assignment]

#: Schema tag stamped into every ledger record.
HISTORY_SCHEMA_VERSION = 1

#: Overrides the ledger root directly (highest precedence).
HISTORY_DIR_ENV = "REPRO_HISTORY_DIR"

#: ``0``/``false``/``off``/``no`` disables default-ledger recording.
HISTORY_ENV = "REPRO_HISTORY"

# Kept in sync with repro.scenarios.cache (CACHE_DIR_ENV/DEFAULT_CACHE_DIR);
# duplicated literally because repro.obs must stay importable without the
# scenario layer on the service's request path.
_CACHE_DIR_ENV = "REPRO_CACHE_DIR"
_DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Roll the active segment beyond this size (1 MiB ≈ a few thousand runs).
DEFAULT_MAX_SEGMENT_BYTES = 1 << 20

_RECORDS = REGISTRY.counter(
    "repro_history_records_total",
    "Records appended to the run-history ledger, by kind.",
    labelnames=("kind",),
)


def history_enabled() -> bool:
    """Whether default-ledger recording is on (``REPRO_HISTORY`` gate)."""
    return os.environ.get(HISTORY_ENV, "").strip().lower() not in (
        "0", "false", "off", "no",
    )


def default_history_root() -> Path:
    """Where the process-default ledger lives (env-resolved per call)."""
    override = os.environ.get(HISTORY_DIR_ENV)
    if override:
        return Path(override).expanduser()
    cache_root = os.environ.get(_CACHE_DIR_ENV) or _DEFAULT_CACHE_DIR
    return Path(cache_root).expanduser() / "history"


def effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware, stdlib)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


#: Cached ``git_revision()`` answer (sentinel ``""`` = not probed yet).
_GIT_REVISION: Optional[str] = ""


def git_revision() -> Optional[str]:
    """The working tree's short git revision, or ``None`` (best-effort).

    Probed once per process: run records are appended on every engine run
    and must not pay a subprocess each time.
    """
    global _GIT_REVISION
    if _GIT_REVISION == "":
        try:
            _GIT_REVISION = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5.0,
                check=True,
            ).stdout.strip() or None
        except Exception:
            _GIT_REVISION = None
    return _GIT_REVISION


class RunLedger:
    """Append-only NDJSON segments of run/bench records, with queries."""

    def __init__(
        self,
        root: Union[None, str, Path] = None,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> None:
        self.root = (
            Path(root).expanduser() if root is not None else default_history_root()
        )
        self.max_segment_bytes = int(max_segment_bytes)

    # -- paths -------------------------------------------------------------

    @property
    def current_path(self) -> Path:
        return self.root / "current.ndjson"

    @property
    def _lock_path(self) -> Path:
        return self.root / "history.lock"

    def segments(self) -> List[Path]:
        """Every segment file, oldest first (the active one last)."""
        if not self.root.is_dir():
            return []
        sealed = sorted(self.root.glob("segment-*.ndjson"))
        current = self.current_path
        return sealed + ([current] if current.is_file() else [])

    # -- locking -----------------------------------------------------------

    def _locked(self):
        """An exclusive-lock context over the ledger (no-op without fcntl)."""
        ledger = self

        class _Lock:
            def __enter__(self):
                self._handle = open(ledger._lock_path, "a")
                if fcntl is not None:
                    fcntl.flock(self._handle, fcntl.LOCK_EX)
                return self

            def __exit__(self, *exc_info):
                try:
                    if fcntl is not None:
                        fcntl.flock(self._handle, fcntl.LOCK_UN)
                finally:
                    self._handle.close()

        return _Lock()

    # -- writing -----------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append one record (stamping ``v``/``id``/``ts``); returns it.

        One locked write of one line: concurrent appenders from any number
        of processes interleave whole records, never bytes.
        """
        record = dict(record)
        record.setdefault("v", HISTORY_SCHEMA_VERSION)
        record.setdefault("id", uuid.uuid4().hex[:16])
        record.setdefault("ts", time.time())
        record.setdefault("kind", "run")
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        with self._locked():
            self._repair_torn_tail()
            with open(self.current_path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
            self._maybe_roll()
        _RECORDS.labels(kind=str(record["kind"])).inc()
        return record

    def _repair_torn_tail(self) -> None:
        """Newline-terminate a torn trailing line left by a crashed writer.

        Called under the ledger lock, before each append.  Without this
        the fresh record would concatenate onto the torn fragment and be
        lost with it; terminated, the fragment stays an isolated invalid
        line that readers skip.
        """
        try:
            with open(self.current_path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
        except OSError:
            return

    def _maybe_roll(self) -> None:
        """Seal the active segment once it outgrows the size budget.

        Called under the ledger lock.  The nonce keeps concurrent rollers
        (two processes racing past the threshold) from colliding on a name.
        """
        try:
            size = self.current_path.stat().st_size
        except OSError:
            return
        if size <= self.max_segment_bytes:
            return
        index = len(list(self.root.glob("segment-*.ndjson")))
        target = self.root / (
            f"segment-{index:06d}-{uuid.uuid4().hex[:8]}.ndjson"
        )
        try:
            self.current_path.rename(target)
        except OSError:
            pass

    # -- reading -----------------------------------------------------------

    def _iter_segment(self, path: Path) -> Iterator[Dict[str, Any]]:
        """Records in one segment, skipping torn/corrupt lines.

        A truncated trailing line is the expected crash artifact of an
        interrupted append — tolerated, never fatal.
        """
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        yield record
        except OSError:
            return

    @staticmethod
    def _matches(
        record: Dict[str, Any],
        filters: Dict[str, Any],
        since: Optional[float],
        until: Optional[float],
    ) -> bool:
        ts = record.get("ts")
        if since is not None and (ts is None or float(ts) < since):
            return False
        if until is not None and (ts is None or float(ts) > until):
            return False
        for field, wanted in filters.items():
            value = record.get(field)
            if value == wanted:
                continue
            # Query-string filters arrive as text; compare loosely so
            # e.g. effective_cpus="2" matches the stored integer.
            if isinstance(wanted, str) and str(value) == wanted:
                continue
            return False
        return True

    def query(
        self,
        *,
        limit: Optional[int] = None,
        newest_first: bool = True,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **filters: Any,
    ) -> List[Dict[str, Any]]:
        """Matching records, newest first by default.

        ``filters`` are equality constraints on record fields (``kind``,
        ``scenario``, ``backend``, ``executor``, ``spec_hash``, …);
        ``since``/``until`` bound the ``ts`` stamp.  With ``limit`` the
        newest-first walk stops early — the common "last N comparable
        runs" read touches only the newest segment(s).
        """
        out: List[Dict[str, Any]] = []
        for path in reversed(self.segments()):
            segment = [
                record
                for record in self._iter_segment(path)
                if self._matches(record, filters, since, until)
            ]
            out.extend(reversed(segment))
            if limit is not None and len(out) >= limit:
                out = out[:limit]
                break
        return out if newest_first else out[::-1]

    def get(self, record_id: str) -> Optional[Dict[str, Any]]:
        """The record with this id, or ``None``."""
        matches = self.query(limit=1, id=record_id)
        return matches[0] if matches else None

    def __len__(self) -> int:
        return sum(1 for path in self.segments() for _ in self._iter_segment(path))

    # -- compaction --------------------------------------------------------

    def prune(
        self,
        keep: Optional[int] = None,
        older_than: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Compact the ledger; returns ``(kept, dropped)``.

        ``keep`` retains only the newest N records; ``older_than`` (a
        ``ts`` cutoff, records strictly older are dropped) composes with
        it.  Survivors are rewritten oldest-first into a fresh active
        segment via an atomic replace, and sealed segments are deleted —
        all under the append lock, so concurrent writers are safe.
        """
        with self._locked():
            records = [
                record
                for path in self.segments()
                for record in self._iter_segment(path)
            ]
            total = len(records)
            if older_than is not None:
                records = [
                    r for r in records if float(r.get("ts") or 0.0) >= older_than
                ]
            if keep is not None and len(records) > keep:
                records = records[len(records) - keep:]
            self.root.mkdir(parents=True, exist_ok=True)
            scratch = self.root / "compact.tmp"
            with open(scratch, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            for path in self.segments():
                if path != self.current_path:
                    path.unlink(missing_ok=True)
            scratch.replace(self.current_path)
            return len(records), total - len(records)


def default_ledger() -> RunLedger:
    """A ledger at the process-default root (cheap: just path resolution)."""
    return RunLedger()


# ---------------------------------------------------------------------------
# Record builders + append-and-evaluate helpers
# ---------------------------------------------------------------------------


def record_engine_run(
    report: Any,
    *,
    scenario: str,
    spec_hash: Optional[str],
    backend: str,
    executor: str,
    realisations: int,
    workers: Optional[int] = None,
    ledger: Optional[RunLedger] = None,
) -> Optional[Dict[str, Any]]:
    """Distill an :class:`EngineReport` into a ``kind="run"`` record.

    Appends to ``ledger`` (the default one when ``None``), evaluates the
    regression sentinel against comparable history and exports its
    verdicts as ``repro_sentinel_verdict`` gauges.  Never raises and
    returns ``None`` when recording is disabled or fails — a telemetry
    write must not take an engine run down with it.
    """
    if ledger is None:
        if not history_enabled():
            return None
        ledger = default_ledger()
    try:
        record = {
            "kind": "run",
            "scenario": scenario,
            "spec_hash": spec_hash,
            "backend": backend,
            "executor": executor,
            "realisations": int(realisations),
            "workers": workers,
            "effective_cpus": effective_cpus(),
            "blocks_total": report.blocks_total,
            "blocks_cached": report.blocks_cached,
            "shards_dispatched": report.shards_dispatched,
            "wall_seconds": float(report.wall_seconds),
            "timings": dict(report.timings),
            "attribution": dict(report.attribution),
            "sizing": dict(report.sizing),
            "repro_version": __version__,
            "git_revision": git_revision(),
        }
        record = ledger.append(record)
    except Exception:
        return None
    try:
        from repro.obs import sentinel

        sentinel.export_verdicts(sentinel.evaluate(ledger, record))
    except Exception:
        pass
    return record


def _bench_record(
    payload: Dict[str, Any], timing: Dict[str, Any]
) -> Dict[str, Any]:
    """One ``kind="bench"`` record from a distributed-report timing."""
    return {
        "kind": "bench",
        "scenario": payload.get("scenario"),
        "backend": payload.get("backend"),
        "shards": payload.get("shards"),
        "shard_block": payload.get("shard_block"),
        "realisations": payload.get("realisations"),
        "seed": payload.get("seed"),
        "quick": payload.get("quick"),
        "worker_count": timing.get("worker_count"),
        "wall_seconds": timing.get("wall_seconds"),
        "throughput": timing.get("throughput"),
        "mean_completion_time": timing.get("mean_completion_time"),
        "skipped": bool(timing.get("skipped", False)),
        "effective_cpus": payload.get("summary", {}).get(
            "effective_cpus", payload.get("effective_cpus")
        ),
        "repro_version": __version__,
        "git_revision": git_revision(),
    }


def record_distributed_report(
    payload: Dict[str, Any], ledger: Optional[RunLedger] = None
) -> List[Dict[str, Any]]:
    """Append one bench record per timing of a distributed bench report.

    ``payload`` is a ``DistributedBenchmarkReport.to_dict()`` (fresh or a
    committed ``BENCH_distributed.json``/``BENCH_scaling.json`` — this is
    also the ``repro history import`` path that seeds CI's regression
    baseline).  Returns the appended records, ``[]`` when disabled.
    """
    if ledger is None:
        if not history_enabled():
            return []
        ledger = default_ledger()
    return [
        ledger.append(_bench_record(payload, timing))
        for timing in payload.get("timings", ())
    ]


def record_backend_report(
    payload: Dict[str, Any], ledger: Optional[RunLedger] = None
) -> List[Dict[str, Any]]:
    """Append one bench record per scenario×backend of a backend report.

    ``payload`` is a ``BenchmarkReport.to_dict()`` (``BENCH_results.json``
    shape).  ``worker_count`` is ``None`` — the backend harness times the
    inline engine, so records match on scenario/backend/realisations/seed
    alone.
    """
    if ledger is None:
        if not history_enabled():
            return []
        ledger = default_ledger()
    records = []
    for scenario in payload.get("scenarios", ()):
        for backend, timing in scenario.get("timings", {}).items():
            records.append(
                ledger.append(
                    {
                        "kind": "bench",
                        "scenario": scenario.get("name"),
                        "backend": backend,
                        "shards": None,
                        "shard_block": None,
                        "realisations": scenario.get("realisations"),
                        "seed": scenario.get("seed"),
                        "quick": payload.get("quick"),
                        "worker_count": None,
                        "wall_seconds": timing.get("wall_seconds"),
                        "throughput": timing.get("throughput"),
                        "mean_completion_time": timing.get(
                            "mean_completion_time"
                        ),
                        "skipped": False,
                        "effective_cpus": effective_cpus(),
                        "repro_version": __version__,
                        "git_revision": git_revision(),
                    }
                )
            )
    return records
