"""Experiment drivers: one module per figure/table of the paper's evaluation.

Each module exposes a ``run(...)`` function that regenerates the data behind
the corresponding figure or table — the same rows and series the paper
reports — and returns it as plain Python/NumPy containers (rendered to text
by :mod:`repro.analysis.reporting`).  The benchmark harness under
``benchmarks/`` wraps these functions one-to-one.

========  ==========================================================
Driver    Paper artefact
========  ==========================================================
fig1      Fig. 1 — per-task processing-time pdfs + exponential fits
fig2      Fig. 2 — transfer-delay pdf and mean delay vs. batch size
fig3      Fig. 3 — mean completion time vs. gain K (LBP-1)
fig4      Fig. 4 — queue-length trajectories under LBP-1 and LBP-2
fig5      Fig. 5 — completion-time CDFs (failure vs. no failure)
table1    Table 1 — LBP-1 optimal gains and completion times
table2    Table 2 — LBP-2 gains and completion times
table3    Table 3 — LBP-1 vs LBP-2 across network delays
========  ==========================================================
"""

# Drivers are re-exported lazily (PEP 562): each pulls the full solver and
# test-bed stack, and consumers like the scenario registry only need
# :mod:`repro.experiments.common`.  ``run_figN``/``run_tableN`` resolve (and
# memoise) the matching driver's ``run`` on first attribute access.
_DRIVERS = {
    "run_fig1": "repro.experiments.fig1_processing_pdf",
    "run_fig2": "repro.experiments.fig2_delay_pdf",
    "run_fig3": "repro.experiments.fig3_gain_sweep",
    "run_fig4": "repro.experiments.fig4_queue_traces",
    "run_fig5": "repro.experiments.fig5_cdf",
    "run_table1": "repro.experiments.table1_lbp1",
    "run_table2": "repro.experiments.table2_lbp2",
    "run_table3": "repro.experiments.table3_delay_crossover",
}


def __getattr__(name: str):
    import importlib

    if name == "common":
        value = importlib.import_module("repro.experiments.common")
    elif name in _DRIVERS:
        value = importlib.import_module(_DRIVERS[name]).run
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


__all__ = [
    "common",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_table1",
    "run_table2",
    "run_table3",
]
