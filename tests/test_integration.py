"""Cross-module integration tests.

These tests tie the three independent implementations of the same system —
the regeneration recursion (eq. (4)), the absorbing CTMC, and the
discrete-event simulator — together and check the paper's headline
qualitative findings end to end.
"""

import numpy as np
import pytest

import repro
from repro import (
    LBP1,
    LBP2,
    CompletionTimeSolver,
    NoBalancing,
    optimal_gain_lbp1,
    optimal_gain_no_failure,
    paper_parameters,
    run_monte_carlo,
)
from repro.core.distribution import completion_time_cdf_lbp1
from repro.montecarlo.statistics import evaluate_empirical_cdf


class TestPublicAPI:
    def test_version_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example(self):
        params = paper_parameters()
        result = optimal_gain_lbp1(params, (100, 60))
        assert round(result.optimal_gain, 2) == 0.35


class TestTheorySimulationAgreement:
    """Model and simulator must describe the same stochastic system."""

    @pytest.mark.parametrize(
        "workload,gain",
        [((100, 60), 0.35), ((100, 60), 0.0), ((60, 100), 0.5)],
    )
    def test_lbp1_mean_within_monte_carlo_error(self, workload, gain):
        params = paper_parameters()
        solver = CompletionTimeSolver(params)
        sender = 0 if workload[0] >= workload[1] else 1
        predicted = solver.lbp1(workload, gain, sender=sender, receiver=1 - sender).mean
        estimate = run_monte_carlo(
            params,
            LBP1(gain, sender=sender, receiver=1 - sender),
            workload,
            num_realisations=120,
            seed=abs(hash((workload, gain))) % 2**31,
        )
        margin = 4 * estimate.summary.standard_error
        assert abs(estimate.mean_completion_time - predicted) < margin

    def test_analytical_cdf_matches_empirical_cdf(self):
        params = paper_parameters()
        workload, gain = (25, 50), 0.15
        times = np.linspace(0, 300, 60)
        analytical = completion_time_cdf_lbp1(
            params, workload, gain, times, sender=1, receiver=0
        )
        estimate = run_monte_carlo(
            params, LBP1(gain, sender=1, receiver=0), workload, 250, seed=123
        )
        empirical = evaluate_empirical_cdf(estimate.completion_times, times)
        assert np.max(np.abs(empirical - analytical.probabilities)) < 0.12


class TestPaperQualitativeFindings:
    def test_churn_reduces_the_optimal_gain(self):
        params = paper_parameters()
        with_failure = optimal_gain_lbp1(params, (100, 60))
        without_failure = optimal_gain_no_failure(params, (100, 60))
        assert with_failure.optimal_gain < without_failure.optimal_gain

    def test_lbp2_beats_lbp1_at_small_delay(self):
        """Tables 1-3: at 0.02 s/task the reactive policy wins.

        Both policies are driven by the same per-realisation random streams
        (common random numbers), which makes the few-second advantage the
        paper reports resolvable without tens of thousands of realisations.
        """
        params = paper_parameters()
        optimum = optimal_gain_lbp1(params, (100, 60))
        lbp1 = run_monte_carlo(
            params,
            LBP1(optimum.optimal_gain, sender=optimum.sender, receiver=optimum.receiver),
            (100, 60),
            400,
            seed=77,
        )
        lbp2 = run_monte_carlo(params, LBP2(1.0), (100, 60), 400, seed=77)
        assert lbp2.mean_completion_time < lbp1.mean_completion_time

    def test_lbp1_beats_lbp2_at_large_delay(self):
        """Table 3: at >= 2 s/task the preemptive policy wins clearly."""
        params = paper_parameters(mean_delay_per_task=2.0)
        optimum = optimal_gain_lbp1(params, (100, 60))
        lbp1 = run_monte_carlo(
            params,
            LBP1(optimum.optimal_gain, sender=optimum.sender, receiver=optimum.receiver),
            (100, 60),
            200,
            seed=31,
        )
        lbp2 = run_monte_carlo(params, LBP2(1.0), (100, 60), 200, seed=32)
        assert lbp1.mean_completion_time < lbp2.mean_completion_time

    def test_balancing_beats_doing_nothing(self):
        params = paper_parameters()
        nothing = run_monte_carlo(params, NoBalancing(), (100, 60), 150, seed=41)
        optimum = optimal_gain_lbp1(params, (100, 60))
        tuned = run_monte_carlo(
            params,
            LBP1(optimum.optimal_gain, sender=optimum.sender, receiver=optimum.receiver),
            (100, 60),
            150,
            seed=41,
        )
        assert tuned.mean_completion_time < nothing.mean_completion_time

    def test_lbp2_mc_value_close_to_paper(self):
        """The paper's MC estimate for LBP-2 on (100, 60) is 112.43 s."""
        params = paper_parameters()
        estimate = run_monte_carlo(params, LBP2(1.0), (100, 60), 300, seed=51)
        assert estimate.mean_completion_time == pytest.approx(112.43, rel=0.06)

    def test_higher_failure_rate_shrinks_optimal_gain(self):
        """Conclusion of the paper: more churn -> weaker balancing action."""
        from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel

        def system(failure_rate):
            return SystemParameters(
                nodes=(
                    NodeParameters(1.08, failure_rate=failure_rate, recovery_rate=0.1),
                    NodeParameters(1.86, failure_rate=failure_rate, recovery_rate=0.05),
                ),
                delay=TransferDelayModel(0.02),
            )

        mild = optimal_gain_lbp1(system(0.01), (100, 60), sender=0, receiver=1)
        harsh = optimal_gain_lbp1(system(0.15), (100, 60), sender=0, receiver=1)
        assert harsh.optimal_gain <= mild.optimal_gain
