"""Tests for the expected-completion-time solvers (eq. (4))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.completion_time import (
    CompletionTimeSolver,
    expected_completion_time,
    expected_completion_time_lbp1,
)
from repro.core.parameters import (
    NodeParameters,
    SystemParameters,
    TransferDelayModel,
    paper_parameters,
)


class TestValidation:
    def test_requires_two_nodes(self, three_node_params):
        with pytest.raises(ValueError):
            CompletionTimeSolver(three_node_params)

    def test_unknown_method_rejected(self, paper_params):
        with pytest.raises(ValueError):
            CompletionTimeSolver(paper_params, method="magic")

    def test_gain_bounds(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        with pytest.raises(ValueError):
            solver.lbp1((10, 10), 1.5)

    def test_negative_transit_rejected(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        with pytest.raises(ValueError):
            solver.mean_completion_time((10, 10), in_transit=-1)

    def test_bad_destination_rejected(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        with pytest.raises(IndexError):
            solver.mean_completion_time((10, 10), in_transit=5, destination=3)

    def test_invalid_sender_receiver_combinations(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        with pytest.raises(ValueError):
            solver.lbp1((10, 10), 0.5, sender=0)
        with pytest.raises(ValueError):
            solver.lbp1((10, 10), 0.5, sender=0, receiver=0)
        with pytest.raises(IndexError):
            solver.lbp1((10, 10), 0.5, sender=0, receiver=2)


class TestClosedFormSpecialCases:
    def test_zero_tasks_completes_immediately(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        assert solver.mean_completion_time((0, 0)) == 0.0

    def test_single_reliable_node_is_erlang_mean(self):
        """No failures, no transfer: E[T] = m / λ_d for a single busy node."""
        params = SystemParameters(
            nodes=(NodeParameters(2.0), NodeParameters(1.0)),
            delay=TransferDelayModel(0.02),
        )
        solver = CompletionTimeSolver(params)
        assert solver.mean_completion_time((10, 0)) == pytest.approx(5.0)
        assert solver.mean_completion_time((0, 7)) == pytest.approx(7.0)

    def test_two_reliable_nodes_expected_maximum(self):
        """For one task on each reliable node, E[max of two exponentials]."""
        params = SystemParameters(
            nodes=(NodeParameters(1.0), NodeParameters(2.0)),
            delay=TransferDelayModel(0.02),
        )
        solver = CompletionTimeSolver(params)
        expected = 1.0 / 1.0 + 1.0 / 2.0 - 1.0 / (1.0 + 2.0)
        assert solver.mean_completion_time((1, 1)) == pytest.approx(expected)

    def test_failure_prone_single_node_slowdown_factor(self):
        """A node that is up a fraction A of the time takes ~1/A times longer.

        This is exact in the limit of many tasks; with 400 tasks the relative
        error of the asymptotic formula is small.
        """
        params = SystemParameters(
            nodes=(
                NodeParameters(2.0, failure_rate=0.1, recovery_rate=0.2),
                NodeParameters(1.0),
            ),
            delay=TransferDelayModel(0.0),
        )
        solver = CompletionTimeSolver(params)
        availability = 0.2 / 0.3
        mean = solver.mean_completion_time((400, 0))
        assert mean == pytest.approx(400 / 2.0 / availability, rel=0.03)

    def test_instantaneous_transfer_equals_merged_workload(self, paper_params):
        zero_delay = paper_params.with_delay_per_task(0.0)
        solver = CompletionTimeSolver(zero_delay)
        merged = solver.mean_completion_time((10, 25))
        with_transit = solver.mean_completion_time((10, 5), in_transit=20, destination=1)
        assert with_transit == pytest.approx(merged)

    def test_initial_down_state_adds_recovery_wait(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        both_up = solver.mean_completion_time((5, 5), initial_state=(1, 1))
        node1_down = solver.mean_completion_time((5, 5), initial_state=(0, 1))
        assert node1_down > both_up


class TestSolverEquivalence:
    @pytest.mark.parametrize("workload,gain", [((20, 12), 0.4), ((15, 0), 0.6), ((8, 30), 0.2)])
    def test_reference_matches_vectorized(self, paper_params, workload, gain):
        reference = CompletionTimeSolver(paper_params, method="reference")
        vectorized = CompletionTimeSolver(paper_params, method="vectorized")
        assert reference.lbp1(workload, gain).mean == pytest.approx(
            vectorized.lbp1(workload, gain).mean, rel=1e-10
        )

    @pytest.mark.parametrize("workload,gain", [((20, 12), 0.4), ((25, 5), 0.3)])
    def test_ctmc_matches_vectorized(self, paper_params, workload, gain):
        ctmc = CompletionTimeSolver(paper_params, method="ctmc")
        vectorized = CompletionTimeSolver(paper_params, method="vectorized")
        assert ctmc.lbp1(workload, gain).mean == pytest.approx(
            vectorized.lbp1(workload, gain).mean, rel=1e-8
        )

    def test_no_failure_solvers_agree(self, no_failure_params):
        reference = CompletionTimeSolver(no_failure_params, method="reference")
        vectorized = CompletionTimeSolver(no_failure_params, method="vectorized")
        ctmc = CompletionTimeSolver(no_failure_params, method="ctmc")
        for method_value in (
            reference.lbp1((30, 10), 0.45).mean,
            ctmc.lbp1((30, 10), 0.45).mean,
        ):
            assert method_value == pytest.approx(
                vectorized.lbp1((30, 10), 0.45).mean, rel=1e-8
            )


class TestPaperHeadlineNumbers:
    def test_fig3_optimal_gain_with_failure(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        gains = np.round(np.arange(0.0, 1.0001, 0.05), 2)
        means = solver.gain_sweep((100, 60), gains, sender=0, receiver=1)
        assert gains[int(np.argmin(means))] == pytest.approx(0.35)

    def test_fig3_optimal_gain_without_failure(self, no_failure_params):
        solver = CompletionTimeSolver(no_failure_params)
        gains = np.round(np.arange(0.0, 1.0001, 0.05), 2)
        means = solver.gain_sweep((100, 60), gains, sender=0, receiver=1)
        assert gains[int(np.argmin(means))] == pytest.approx(0.45)

    def test_fig3_minimum_completion_time_close_to_paper(self, paper_params):
        """The paper reports a minimum of about 117 s for (100, 60)."""
        solver = CompletionTimeSolver(paper_params)
        prediction = solver.lbp1((100, 60), 0.35, sender=0, receiver=1)
        assert prediction.mean == pytest.approx(117.0, rel=0.03)

    def test_failure_aware_gain_below_no_failure_gain(self, paper_params, no_failure_params):
        """Central qualitative claim: failures call for a smaller gain."""
        gains = np.round(np.arange(0.0, 1.0001, 0.05), 2)
        failure = CompletionTimeSolver(paper_params).gain_sweep(
            (100, 60), gains, sender=0, receiver=1
        )
        clean = CompletionTimeSolver(no_failure_params).gain_sweep(
            (100, 60), gains, sender=0, receiver=1
        )
        assert gains[int(np.argmin(failure))] < gains[int(np.argmin(clean))]

    def test_failure_curve_dominates_no_failure_curve(self, paper_params, no_failure_params):
        gains = np.linspace(0, 1, 11)
        failure = CompletionTimeSolver(paper_params).gain_sweep(
            (100, 60), gains, sender=0, receiver=1
        )
        clean = CompletionTimeSolver(no_failure_params).gain_sweep(
            (100, 60), gains, sender=0, receiver=1
        )
        assert np.all(failure > clean)


class TestStructuralProperties:
    def test_mean_increases_with_workload(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        small = solver.mean_completion_time((10, 10))
        large = solver.mean_completion_time((20, 10))
        assert large > small

    def test_symmetry_under_node_swap(self):
        """Swapping both the nodes and the workload leaves the mean unchanged."""
        node_a = NodeParameters(1.08, failure_rate=0.05, recovery_rate=0.1)
        node_b = NodeParameters(1.86, failure_rate=0.05, recovery_rate=0.05)
        delay = TransferDelayModel(0.02)
        forward = CompletionTimeSolver(SystemParameters(nodes=(node_a, node_b), delay=delay))
        backward = CompletionTimeSolver(SystemParameters(nodes=(node_b, node_a), delay=delay))
        assert forward.mean_completion_time((30, 12)) == pytest.approx(
            backward.mean_completion_time((12, 30))
        )

    def test_lbp1_prediction_fields(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        prediction = solver.lbp1((100, 60), 0.35)
        assert prediction.sender == 0
        assert prediction.receiver == 1
        assert prediction.batch_size == 35
        assert prediction.workload == (100, 60)

    def test_gain_sweep_matches_individual_calls(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        gains = [0.1, 0.5, 0.9]
        sweep = solver.gain_sweep((40, 20), gains, sender=0, receiver=1)
        individual = [
            solver.lbp1((40, 20), gain, sender=0, receiver=1).mean for gain in gains
        ]
        assert np.allclose(sweep, individual)

    def test_hat_cache_reused_across_calls(self, paper_params):
        solver = CompletionTimeSolver(paper_params)
        solver.mean_completion_time((20, 20))
        cached_tables = len(solver._hat_cache)
        solver.mean_completion_time((10, 5))
        assert len(solver._hat_cache) == cached_tables

    def test_module_level_wrappers(self, paper_params):
        direct = expected_completion_time(paper_params, (15, 10))
        solver_value = CompletionTimeSolver(paper_params).mean_completion_time((15, 10))
        assert direct == pytest.approx(solver_value)
        lbp1_value = expected_completion_time_lbp1(paper_params, (15, 10), 0.4)
        assert lbp1_value > 0

    @given(
        m0=st.integers(min_value=0, max_value=30),
        m1=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_mean_is_finite_and_nonnegative(self, m0, m1):
        solver = CompletionTimeSolver(paper_parameters())
        mean = solver.mean_completion_time((m0, m1))
        assert mean >= 0.0
        assert np.isfinite(mean)

    @given(gain=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_lbp1_mean_bounded_by_extremes(self, gain):
        """Any gain's mean lies between the best and worst achievable value.

        The sender holds 30 tasks, so the grid ``k/30`` for ``k = 0..30``
        enumerates every possible batch size; an arbitrary gain rounds to one
        of them.
        """
        solver = CompletionTimeSolver(paper_parameters())
        value = solver.lbp1((30, 18), gain, sender=0, receiver=1).mean
        grid = solver.gain_sweep((30, 18), np.linspace(0, 1, 31), sender=0, receiver=1)
        assert grid.min() - 1e-9 <= value <= grid.max() + 1e-9
