"""The Monte-Carlo estimate type and the per-block execution primitive.

:class:`MonteCarloEstimate` is built on the *mergeable* accumulators of
:mod:`repro.montecarlo.statistics`: its summary renders from an exact-sum
:class:`RunningStatistics` state, so estimates merged from shards are
bit-identical to estimates computed whole — the invariant the unified
engine (:mod:`repro.montecarlo.engine`) rests on.

:class:`MonteCarloRunner` is the event-driven **execution primitive**: it
runs realisations one at a time (or hands the whole batch to a non-default
backend) for a *single seed block*.  The engine calls it — through the
``reference`` backend — once per block; it is not an engine of its own.
Use it directly only when you need per-realisation artefacts the
aggregating paths cannot keep (``keep_results``, traces, progress
callbacks).

:func:`run_monte_carlo` is a deprecated one-call shim that routes through
the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionBackend

import numpy as np

from repro.cluster.system import DistributedSystem, SimulationResult
from repro.cluster.workload import Workload
from repro.core.parameters import SystemParameters
from repro.core.policies.base import LoadBalancingPolicy
from repro.montecarlo.statistics import (
    QuantileSketch,
    RunningStatistics,
    SummaryStatistics,
)
from repro.sim.rng import RandomStreams, SeedLike


@dataclass
class MonteCarloEstimate:
    """Aggregate of ``n`` independent realisations.

    The statistical state is a mergeable :class:`RunningStatistics`
    accumulator (exact Shewchuk sums), not a pre-rendered summary: the
    summary is derived on demand, so a merged estimate and a whole-sample
    estimate of the same data render ``==``-equal summaries (and equal
    percentiles — the sample arrays are bit-identical too).
    """

    policy_name: str
    workload: tuple
    completion_times: np.ndarray
    stats: RunningStatistics
    confidence_level: float = 0.95
    results: List[SimulationResult] = field(default_factory=list)

    @classmethod
    def from_sample(
        cls,
        policy_name: str,
        workload: Sequence[int],
        completion_times: Sequence[float],
        confidence_level: float = 0.95,
        results: Optional[List[SimulationResult]] = None,
    ) -> "MonteCarloEstimate":
        """Build an estimate (and its accumulator) from a completed sample."""
        times = np.asarray(completion_times, dtype=float)
        return cls(
            policy_name=policy_name,
            workload=tuple(workload),
            completion_times=times,
            stats=RunningStatistics.from_values(times),
            confidence_level=confidence_level,
            results=list(results) if results else [],
        )

    @property
    def summary(self) -> SummaryStatistics:
        """Mean, dispersion and Student-t confidence interval."""
        return self.stats.to_summary(self.confidence_level)

    @property
    def mean_completion_time(self) -> float:
        """Sample mean of the overall completion time."""
        return self.stats.mean

    @property
    def num_realisations(self) -> int:
        """Number of realisations aggregated."""
        return self.stats.n

    def percentile(self, q: float) -> float:
        """Percentile of the completion-time sample (``q`` in [0, 100])."""
        return float(np.percentile(self.completion_times, q))

    def quantile_sketch(self, bins: int = 128) -> QuantileSketch:
        """A mergeable quantile sketch of the sample.

        The bin range derives from the merged accumulator's exact min/max,
        so sketches built from the same merged sample are identical however
        the sample was partitioned during execution.
        """
        low, high = self.stats.minimum, self.stats.maximum
        if not high > low:
            high = low + 1.0
        sketch = QuantileSketch.with_range(low, high, bins)
        sketch.update_many(self.completion_times)
        return sketch


class MonteCarloRunner:
    """Runs independent realisations with carefully separated random streams.

    This is the engine's per-block primitive: realisation ``k`` uses the
    ``k``-th child stream spawned from ``seed``, so a block's sample
    depends only on its block seed, never on the executor running it.

    Parameters
    ----------
    params:
        System parameters.
    policy:
        The load-balancing policy under study.
    workload:
        Initial workload vector.
    seed:
        Root seed; realisation ``k`` uses the ``k``-th spawned child stream,
        so results are reproducible and independent of execution order.
    keep_results:
        Whether to retain every :class:`SimulationResult` (needed for traces
        and per-node statistics; switch off for very large runs).
    backend:
        Execution backend name or instance (see :mod:`repro.backends`).
        ``None``/``"reference"`` runs the event-driven simulator in-process
        (the historical behaviour); ``"vectorized"`` hands the whole batch
        to the NumPy kernel.  Non-reference backends aggregate internally,
        so they are incompatible with ``keep_results`` and ``progress``.
    system_kwargs:
        Extra keyword arguments forwarded to :class:`DistributedSystem`
        (e.g. ``preemption="restart"`` or ``record_trace=True``).
    """

    def __init__(
        self,
        params: SystemParameters,
        policy: LoadBalancingPolicy,
        workload: Union[Workload, Sequence[int]],
        seed: SeedLike = None,
        keep_results: bool = False,
        backend: Union[None, str, "ExecutionBackend"] = None,
        **system_kwargs,
    ) -> None:
        self.params = params
        self.policy = policy
        self.workload = workload if isinstance(workload, Workload) else Workload(tuple(workload))
        self.root = RandomStreams(seed)
        self.keep_results = keep_results
        self.backend = backend
        self.system_kwargs = system_kwargs

    def run_one(self, streams: RandomStreams, horizon: Optional[float] = None) -> SimulationResult:
        """Run a single realisation with the given stream collection."""
        system = DistributedSystem(
            self.params,
            self.policy,
            self.workload,
            streams=streams,
            **self.system_kwargs,
        )
        return system.run(horizon=horizon)

    def run(
        self,
        num_realisations: int,
        horizon: Optional[float] = None,
        confidence_level: float = 0.95,
        progress: Optional[Callable[[int, SimulationResult], None]] = None,
    ) -> MonteCarloEstimate:
        """Run ``num_realisations`` independent realisations and aggregate them."""
        if num_realisations < 1:
            raise ValueError(f"num_realisations must be >= 1, got {num_realisations!r}")

        if self.backend is not None:
            from repro.backends.base import BackendUnsupportedError, resolve_backend
            from repro.backends.reference import ReferenceBackend

            backend = resolve_backend(self.backend)
            # The built-in event-driven backend is this very loop: fall
            # through so keep_results/progress/bit-identical seeding keep
            # working.  Anything else — including a replacement registered
            # under the name "reference" — dispatches to its run_batch.
            if not isinstance(backend, ReferenceBackend):
                if self.keep_results or progress is not None:
                    raise BackendUnsupportedError(
                        f"backend {backend.name!r} aggregates realisations "
                        "internally; keep_results and progress callbacks need "
                        "the reference backend"
                    )
                # Spawn a child seed per call (like the serial path spawns
                # per-realisation children), so repeated run() calls draw
                # fresh, independent samples instead of replaying one.
                (batch_seed,) = self.root.seed_sequence.spawn(1)
                return backend.run_batch(
                    self.params,
                    self.policy,
                    self.workload,
                    num_realisations,
                    seed=batch_seed,
                    horizon=horizon,
                    confidence_level=confidence_level,
                    **self.system_kwargs,
                )

        children = self.root.spawn(num_realisations)
        completion_times = np.empty(num_realisations)
        kept: List[SimulationResult] = []
        for k, streams in enumerate(children):
            result = self.run_one(streams, horizon=horizon)
            completion_times[k] = result.completion_time
            if self.keep_results:
                kept.append(result)
            if progress is not None:
                progress(k, result)
        return MonteCarloEstimate.from_sample(
            policy_name=self.policy.name,
            workload=tuple(self.workload),
            completion_times=completion_times,
            confidence_level=confidence_level,
            results=kept,
        )


def run_monte_carlo(
    params: SystemParameters,
    policy: LoadBalancingPolicy,
    workload: Union[Workload, Sequence[int]],
    num_realisations: int,
    seed: SeedLike = None,
    horizon: Optional[float] = None,
    backend: Union[None, str, "ExecutionBackend"] = None,
    **system_kwargs,
) -> MonteCarloEstimate:
    """One-call Monte-Carlo estimate of the mean overall completion time.

    .. deprecated::
        Thin shim over the unified engine: the ensemble is planned into
        seed blocks and executed inline.  Build an
        :class:`~repro.montecarlo.engine.EngineRequest` and call
        :func:`~repro.montecarlo.engine.run_engine` directly for pooled /
        sharded / cached execution.
    """
    from repro.montecarlo.engine import EngineRequest, run_engine, warn_legacy

    warn_legacy("run_monte_carlo")
    return run_engine(
        EngineRequest(
            params=params,
            policy=policy,
            workload=tuple(workload),
            num_realisations=num_realisations,
            seed=seed,
            backend=backend,
            horizon=horizon,
            system_kwargs=system_kwargs,
        )
    ).estimate
