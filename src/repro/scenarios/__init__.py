"""Scenario catalog and orchestration with content-addressed result caching.

This subsystem turns the reproduction from a set of bespoke per-figure
drivers into a data-driven catalog:

* :mod:`repro.scenarios.spec` — frozen :class:`ScenarioSpec` dataclasses
  with deterministic serialization and a stable content hash;
* :mod:`repro.scenarios.registry` — named scenarios (every paper artefact
  plus families such as delay/failure sweeps, multinode clusters, churn);
* :mod:`repro.scenarios.cache` — a content-addressed on-disk result store
  (``REPRO_CACHE_DIR`` or ``~/.cache/repro``) keyed by spec hash;
* :mod:`repro.scenarios.orchestrator` — the batch runner that expands
  families, shares one process pool across points and returns comparable
  :class:`ScenarioResult`\\ s;
* :mod:`repro.scenarios.catalog` — the machine-readable catalog payload
  shared by ``scenario list --json``, the documentation generator
  (:mod:`repro.docsgen`) and the results service (:mod:`repro.service`).

The public names are re-exported lazily (PEP 562): resolving a scenario,
hashing its spec and looking it up in the cache must work without importing
numpy/scipy, so that cache-hit CLI runs and the HTTP service's request path
stay free of the numerical stack.

Quick start
-----------
>>> from repro.scenarios import Orchestrator
>>> result = Orchestrator().run("smoke")   # doctest: +SKIP
>>> result.scalars["mean_completion_time"]  # doctest: +SKIP
"""

_EXPORTS = {
    "repro.scenarios.cache": ("ResultCache", "ScenarioResult", "cache_key"),
    "repro.scenarios.catalog": ("catalog_payload", "scenario_payload"),
    "repro.scenarios.orchestrator": (
        "Orchestrator",
        "apply_overrides",
        "runner_kinds",
    ),
    "repro.scenarios.registry": (
        "PAPER_ARTEFACTS",
        "ScenarioEntry",
        "ScenarioFamily",
        "family_names",
        "get_entry",
        "get_family",
        "register",
        "register_family",
        "resolve",
        "scenario_names",
    ),
    "repro.scenarios.spec": (
        "DelaySpec",
        "NodeSpec",
        "PolicySpec",
        "ScenarioSpec",
        "SystemSpec",
    ),
}

from repro._lazy import lazy_exports

__getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
