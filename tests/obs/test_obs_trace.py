"""Span tracer: nesting, activation, no-op path, NDJSON, tree report."""

from __future__ import annotations

import json

from repro.obs import trace
from repro.obs.trace import TRACE_SCHEMA_VERSION, Span, Tracer


class TestNesting:
    def test_children_link_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id

    def test_durations_close_on_exit(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert outer.duration is None
        assert outer.duration is not None and outer.duration >= 0.0

    def test_record_attaches_to_current_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            recorded = tracer.record("event", 0.25, shard=3)
        assert recorded.parent_id == outer.span_id
        assert recorded.duration == 0.25
        assert recorded.attrs == {"shard": 3}

    def test_total_seconds_sums_by_name(self):
        tracer = Tracer()
        tracer.record("shard", 0.5)
        tracer.record("shard", 0.25)
        tracer.record("other", 1.0)
        assert tracer.total_seconds("shard") == 0.75


class TestActivation:
    def test_module_helpers_are_noop_without_tracer(self):
        assert trace.current_tracer() is None
        with trace.span("ignored", key="value") as span:
            assert span is None
        assert trace.record("ignored", 1.0) is None

    def test_module_helpers_write_to_active_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            assert trace.current_tracer() is tracer
            with trace.span("work", shard=1):
                trace.record("event", 0.1)
        assert trace.current_tracer() is None
        assert [s.name for s in tracer.spans] == ["work", "event"]
        assert tracer.spans[1].parent_id == tracer.spans[0].span_id

    def test_activation_nests(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                with trace.span("inner-only"):
                    pass
            with trace.span("outer-only"):
                pass
        assert [s.name for s in inner.spans] == ["inner-only"]
        assert [s.name for s in outer.spans] == ["outer-only"]


class TestSerialisation:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("outer", workers=2):
            with tracer.span("inner"):
                pass
        return tracer

    def test_ndjson_round_trip(self):
        tracer = self._traced()
        text = tracer.to_ndjson()
        lines = [json.loads(line) for line in text.splitlines()]
        assert all(line["v"] == TRACE_SCHEMA_VERSION for line in lines)
        restored = Tracer.from_ndjson(text)
        assert [s.to_dict() for s in restored.spans] == [
            s.to_dict() for s in tracer.spans
        ]

    def test_span_dict_round_trip(self):
        span = Span(span_id=4, parent_id=1, name="x", start=0.5,
                    duration=0.25, attrs={"k": "v"})
        assert Span.from_dict(span.to_dict()) == span

    def test_render_tree_shows_nesting_and_attrs(self):
        tracer = self._traced()
        lines = tracer.render_tree().splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("ms  outer  [workers=2]")
        assert lines[1].startswith("  ")  # child is indented
        assert lines[1].endswith("ms  inner")

    def test_render_tree_empty(self):
        assert Tracer().render_tree() == "(no spans recorded)"

    def test_render_tree_min_duration_filters(self):
        tracer = Tracer()
        tracer.record("slow", 2.0)
        tracer.record("fast", 0.001)
        tree = tracer.render_tree(min_duration=1.0)
        assert "slow" in tree and "fast" not in tree
