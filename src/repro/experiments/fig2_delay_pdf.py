"""Fig. 2 — transfer-delay pdf and mean delay vs. number of tasks.

The paper probes the wireless channel with batches of various sizes,
estimates the per-task delay pdf (top panel, exponential with mean
≈ 0.02 s) and regresses the mean batch delay against the batch size (bottom
panel, linear growth).  This driver reproduces both panels on the emulated
channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.empirical import EmpiricalDensity
from repro.analysis.fitting import ExponentialFit
from repro.analysis.linfit import LinearFit
from repro.analysis.reporting import format_series, format_table
from repro.analysis.tables import Table
from repro.core.parameters import SystemParameters
from repro.experiments import common
from repro.testbed.calibration import estimate_delay_model


@dataclass
class Fig2Result:
    """Both panels of Fig. 2."""

    delay_fit: ExponentialFit
    delay_density: EmpiricalDensity
    regression: LinearFit
    probe_sizes: np.ndarray
    probe_mean_delays: np.ndarray
    true_delay_per_task: float

    def summary_table(self) -> Table:
        """Headline numbers: fitted per-task delay, regression slope, R²."""
        table = Table(
            ["quantity", "value"],
            title="Fig. 2 — transfer delay calibration",
        )
        table.add_row({"quantity": "true mean delay per task (s)", "value": self.true_delay_per_task})
        table.add_row({"quantity": "fitted per-task delay mean (s)", "value": self.delay_fit.mean})
        table.add_row({"quantity": "regression slope (s/task)", "value": self.regression.slope})
        table.add_row({"quantity": "regression intercept (s)", "value": self.regression.intercept})
        table.add_row({"quantity": "regression R^2", "value": self.regression.r_squared})
        table.add_row({"quantity": "KS p-value of exponential fit", "value": self.delay_fit.ks_pvalue})
        return table

    def mean_delay_series(self) -> tuple:
        """``(batch sizes, measured mean delays, fitted line)`` (bottom panel)."""
        return (
            self.probe_sizes,
            self.probe_mean_delays,
            self.regression.predict(self.probe_sizes),
        )

    def render(self) -> str:
        """Plain-text rendering of both panels."""
        parts = [format_table(self.summary_table(), float_format="{:.5f}")]
        sizes, measured, fitted = self.mean_delay_series()
        parts.append("")
        parts.append(
            format_series(
                sizes,
                measured,
                x_label="tasks per batch",
                y_label="mean delay (s)",
                title="Fig. 2 (bottom) — mean transfer delay vs batch size",
            )
        )
        return "\n".join(parts)


def run(
    params: Optional[SystemParameters] = None,
    probe_sizes: Optional[Sequence[int]] = None,
    probes_per_size: int = 30,
    seed: int = 202,
) -> Fig2Result:
    """Regenerate Fig. 2 by probing the emulated channel."""
    params = params if params is not None else common.default_parameters()
    delay_fit, density, regression, sizes, mean_delays = estimate_delay_model(
        params, probe_sizes=probe_sizes, probes_per_size=probes_per_size, seed=seed
    )
    return Fig2Result(
        delay_fit=delay_fit,
        delay_density=density,
        regression=regression,
        probe_sizes=sizes,
        probe_mean_delays=mean_delays,
        true_delay_per_task=params.delay.mean_delay_per_task,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run().render())
