"""Tests for the transfer network and its delay models."""

import numpy as np
import pytest

from repro.cluster.network import Network, sample_batch_delay
from repro.cluster.task import Task, TaskState
from repro.core.parameters import NodeParameters, SystemParameters, TransferDelayModel
from repro.sim.engine import Environment


def make_params(kind="exponential", per_task=0.02, overhead=0.0):
    return SystemParameters(
        nodes=(NodeParameters(1.0), NodeParameters(2.0)),
        delay=TransferDelayModel(
            mean_delay_per_task=per_task, fixed_overhead=overhead, kind=kind
        ),
    )


def make_tasks(count):
    return [Task(task_id=i, origin=0) for i in range(count)]


class TestSampleBatchDelay:
    def test_zero_tasks_is_zero_delay(self, rng):
        assert sample_batch_delay(TransferDelayModel(0.02), 0, rng) == 0.0

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_batch_delay(TransferDelayModel(0.02), -1, rng)

    def test_deterministic_kind_returns_mean(self, rng):
        model = TransferDelayModel(0.1, fixed_overhead=0.5, kind="deterministic")
        assert sample_batch_delay(model, 10, rng) == pytest.approx(1.5)

    def test_zero_delay_model(self, rng):
        model = TransferDelayModel(0.0)
        assert sample_batch_delay(model, 10, rng) == 0.0

    @pytest.mark.parametrize("kind", ["exponential", "erlang", "deterministic"])
    def test_all_kinds_have_matching_mean(self, kind, rng):
        model = TransferDelayModel(0.05, kind=kind)
        samples = np.array([sample_batch_delay(model, 20, rng) for _ in range(4000)])
        assert samples.mean() == pytest.approx(1.0, rel=0.1)

    def test_erlang_less_variable_than_exponential(self, rng):
        exponential = TransferDelayModel(0.05, kind="exponential")
        erlang = TransferDelayModel(0.05, kind="erlang")
        exp_samples = np.array([sample_batch_delay(exponential, 20, rng) for _ in range(3000)])
        erl_samples = np.array([sample_batch_delay(erlang, 20, rng) for _ in range(3000)])
        assert erl_samples.var() < exp_samples.var()


class TestNetwork:
    def make_network(self, env, rng, params=None, delivered=None):
        params = params or make_params()
        log = delivered if delivered is not None else []
        network = Network(
            env=env,
            params=params,
            rng=rng,
            deliver=lambda dst, batch: log.append((env.now, dst, len(batch))),
        )
        return network, log

    def test_empty_batch_is_ignored(self, env, rng):
        network, log = self.make_network(env, rng)
        assert network.transfer(0, 1, []) is None
        assert network.records == []

    def test_same_source_destination_rejected(self, env, rng):
        network, _ = self.make_network(env, rng)
        with pytest.raises(ValueError):
            network.transfer(0, 0, make_tasks(1))

    def test_delivery_after_delay(self, env, rng):
        network, log = self.make_network(env, rng)
        record = network.transfer(0, 1, make_tasks(5))
        assert network.tasks_in_transit == 5
        env.run()
        assert network.tasks_in_transit == 0
        assert log == [(pytest.approx(record.delay), 1, 5)]
        assert record.arrived_at == pytest.approx(record.delay)
        assert not record.in_flight

    def test_tasks_marked_in_transit_then_delivered(self, env, rng):
        delivered_tasks = []
        params = make_params()
        network = Network(
            env, params, rng, deliver=lambda dst, batch: delivered_tasks.extend(batch)
        )
        tasks = make_tasks(3)
        network.transfer(0, 1, tasks)
        assert all(task.state is TaskState.IN_TRANSIT for task in tasks)
        env.run()
        assert all(task.state is TaskState.IN_TRANSIT for task in delivered_tasks)
        # the receiving node (not the network) marks delivery; here we just
        # verify the same objects came out
        assert delivered_tasks == tasks

    def test_total_transferred_accumulates(self, env, rng):
        network, _ = self.make_network(env, rng)
        network.transfer(0, 1, make_tasks(2))
        network.transfer(1, 0, make_tasks(3), reason="failure-compensation")
        env.run()
        assert network.total_transferred == 5
        assert [record.reason for record in network.records] == [
            "initial",
            "failure-compensation",
        ]

    def test_pairwise_delay_override_used(self, env, rng):
        params = make_params(per_task=0.02).with_pairwise_delays(
            [((0, 1), TransferDelayModel(10.0, kind="deterministic"))]
        )
        network, log = self.make_network(env, rng, params=params)
        network.transfer(0, 1, make_tasks(2))
        env.run()
        assert env.now == pytest.approx(20.0)

    def test_mean_delay_scales_with_batch_size(self, env):
        rng = np.random.default_rng(3)
        params = make_params(per_task=0.02)
        network = Network(env, params, rng, deliver=lambda dst, batch: None)
        small = np.mean([network.sample_delay(0, 1, 10) for _ in range(3000)])
        large = np.mean([network.sample_delay(0, 1, 100) for _ in range(3000)])
        assert large / small == pytest.approx(10.0, rel=0.15)

    def test_callbacks_invoked(self, env, rng):
        started, arrived = [], []
        params = make_params()
        network = Network(
            env,
            params,
            rng,
            deliver=lambda dst, batch: None,
            on_transfer_started=lambda record: started.append(record),
            on_transfer_arrived=lambda record: arrived.append(record),
        )
        network.transfer(0, 1, make_tasks(1))
        assert len(started) == 1 and len(arrived) == 0
        env.run()
        assert len(arrived) == 1
