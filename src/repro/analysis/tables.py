"""A tiny column-oriented table container used by the experiment drivers."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


class Table:
    """An ordered collection of rows with named columns.

    The experiment drivers build one :class:`Table` per paper table/figure
    series; the benchmark harness and the examples render them with
    :func:`repro.analysis.reporting.format_table`.
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("column names must be unique")
        self.columns: List[str] = list(columns)
        self.title = title
        self._rows: List[Dict[str, Any]] = []

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Append one row; it must provide a value for every column."""
        missing = [c for c in self.columns if c not in row]
        if missing:
            raise ValueError(f"row is missing columns {missing}")
        self._rows.append({c: row[c] for c in self.columns})

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __getitem__(self, index: int) -> Dict[str, Any]:
        return dict(self._rows[index])

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self._rows]

    def rows(self) -> List[Dict[str, Any]]:
        """A copy of all rows."""
        return [dict(row) for row in self._rows]

    def to_csv(self, path: str, float_format: str = "{:.6g}") -> None:
        """Write the table to a CSV file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(",".join(self.columns) + "\n")
            for row in self._rows:
                cells = []
                for column in self.columns:
                    value = row[column]
                    if isinstance(value, float):
                        cells.append(float_format.format(value))
                    else:
                        cells.append(str(value))
                handle.write(",".join(cells) + "\n")

    def sort_by(self, column: str, reverse: bool = False) -> "Table":
        """A new table sorted by one column."""
        result = Table(self.columns, title=self.title)
        result.extend(sorted(self._rows, key=lambda r: r[column], reverse=reverse))
        return result

    def filter(self, predicate) -> "Table":
        """A new table containing only rows for which ``predicate(row)`` holds."""
        result = Table(self.columns, title=self.title)
        result.extend(row for row in self._rows if predicate(row))
        return result
