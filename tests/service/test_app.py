"""HTTP endpoint behaviour against a live in-process service."""

from __future__ import annotations

import pytest

from repro.scenarios import resolve
from repro.service.client import ServiceError


class TestDiscoveryEndpoints:
    def test_index_describes_endpoints(self, client):
        payload = client._json("GET", "/")
        assert payload["service"] == "repro scenario results service"
        assert "POST /v1/jobs" in payload["endpoints"]

    def test_healthz_schema(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done", "failed", "total"}
        assert set(health["heavy_modules"]) == {"numpy", "scipy"}

# Whether the request path actually avoids numpy/scipy is asserted in
# tests/service/test_e2e.py, where the service runs in its own process;
# in here the service shares the pytest interpreter (numpy long loaded).

    def test_catalog_matches_registry(self, client):
        catalog = client.catalog()
        by_name = {s["name"]: s for s in catalog["scenarios"]}
        assert by_name["fig3"]["content_hash"] == resolve("fig3").content_hash
        assert {f["name"] for f in catalog["families"]} == {
            "delay-sweep", "failure-sweep", "multinode", "churn", "gain-sweep",
        }

    def test_describe_scenario_and_family_point(self, client):
        fig3 = client.scenario("fig3")
        assert fig3["spec"]["kind"] == "fig3"
        assert fig3["quick_spec"]["mc_realisations"] < fig3["spec"]["mc_realisations"]
        assert fig3["cached"] is False

        point = client.scenario("delay-sweep/d=0.5")
        assert point["name"] == "delay-sweep/d=0.5"
        assert point["content_hash"] == resolve("delay-sweep/d=0.5").content_hash

    def test_describe_family_point_with_plain_slash_url(self, client):
        # Family points are slashed names; the route must accept them raw,
        # not only percent-encoded.
        status, _, payload = client._request("GET", "/v1/scenarios/churn/fast")
        assert status == 200
        assert payload["name"] == "churn/fast"
        assert payload["content_hash"] == resolve("churn/fast").content_hash

    def test_describe_bare_family(self, client):
        family = client.scenario("delay-sweep")
        assert family["name"] == "delay-sweep"
        assert len(family["points"]) == 7
        assert all("content_hash" in point for point in family["points"])

    def test_describe_unknown_scenario_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.scenario("fig9")
        assert excinfo.value.status == 404
        assert "unknown scenario" in excinfo.value.message

    def test_unknown_endpoint_and_method(self, client):
        status, _, payload = client._request("GET", "/v1/nope")
        assert status == 404
        status, _, _ = client._request("DELETE", "/v1/scenarios")
        assert status == 405


class TestJobEndpoints:
    def test_submit_poll_fetch_flow(self, client):
        job = client.submit(scenario="smoke")
        assert job.state in ("queued", "running", "done")
        done = client.wait(job.id, timeout=60)
        assert done.completed_points == 1

        (content_hash,) = done.content_hashes
        result = client.result(content_hash)
        assert result.name == "smoke"
        assert result.spec_hash == content_hash
        assert result.backend == "reference"
        assert "mean completion time" in result.rendered
        assert result.arrays == ("completion_times",)
        assert result.etag.strip('"') == result.cache_key

    def test_submit_errors_are_400_with_message(self, client):
        for kwargs, fragment in [
            (dict(scenario="nope"), "unknown scenario"),
            (dict(scenario="smoke", backend="fpga"), "unknown execution backend"),
            (dict(scenario="fig4", backend="vectorized"), "cannot honour"),
            (dict(), "exactly one of"),
        ]:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(**kwargs)
            assert excinfo.value.status == 400
            assert fragment in excinfo.value.message

    def test_malformed_json_body_is_400(self, client):
        import http.client as http_client

        connection = http_client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            connection.request("POST", "/v1/jobs", body="{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
        finally:
            connection.close()

    def test_job_listing_newest_first(self, client):
        first = client.submit(scenario="smoke")
        client.wait(first.id, timeout=60)
        second = client.submit(scenario="smoke", seed=2)
        client.wait(second.id, timeout=60)
        listed = client.jobs()
        assert [job.id for job in listed] == [second.id, first.id]

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-404")
        assert excinfo.value.status == 404

    def test_event_stream_over_http(self, client):
        job = client.submit(scenario="smoke")
        events = list(client.events(job.id))
        assert events[0]["seq"] == 0
        assert events[0]["job"] == job.id
        assert events[-1]["state"] == "done"
        assert events[-1]["completed_points"] == 1

    def test_sweep_submission_reports_per_point_progress(self, client):
        job = client.submit(
            spec=resolve("smoke").with_(seed=11).to_dict()
        )
        client.wait(job.id, timeout=60)
        multi = client.submit(scenarios=["smoke", "smoke"], seed=11)
        done = client.wait(multi.id, timeout=60)
        assert done.total_points == 2
        # Both points share one spec, already cached by the first job.
        assert all(point["from_cache"] for point in done.results)


def _series_value(text: str, name: str, labels: str = "") -> float:
    """The sample value for one series in Prometheus text, else 0.

    ``labels`` must list the label pairs in family declaration order,
    exactly as rendered (e.g. ``'store="result",outcome="hit"'``).
    """
    prefix = f"{name}{{{labels}}} " if labels else f"{name} "
    for line in text.splitlines():
        if line.startswith(prefix):
            return float(line[len(prefix):])
    return 0.0


class TestObservabilityEndpoints:
    def test_metrics_endpoint_serves_prometheus_text(self, client):
        import http.client as http_client

        client.catalog()  # guarantee at least one routed request
        connection = http_client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert "# TYPE repro_job_queue_depth gauge" in text
        # Requests are labelled by route *pattern*, not raw path.
        assert _series_value(
            text, "repro_http_requests_total",
            'route="/v1/scenarios",method="GET",status="200"',
        ) >= 1

    def test_metrics_reflect_submitted_job_and_cache_hit(self, client):
        before = client.metrics()
        job = client.submit(scenario="smoke")
        client.wait(job.id, timeout=60)
        rerun = client.submit(scenario="smoke")  # served from the result cache
        assert rerun.state == "done"
        after = client.metrics()

        def delta(name, labels=""):
            return (_series_value(after, name, labels)
                    - _series_value(before, name, labels))

        assert delta("repro_jobs_submitted_total") == 2
        assert delta("repro_jobs_completed_total", 'state="done"') == 2
        assert delta("repro_http_requests_total",
                     'route="/v1/jobs",method="POST",status="202"') == 2
        # First submission misses the result cache, the rerun hits it.
        assert delta("repro_cache_requests_total",
                     'store="result",outcome="hit"') >= 1
        assert delta("repro_cache_requests_total",
                     'store="result",outcome="miss"') >= 1
        assert delta("repro_engine_runs_total") >= 1
        # Nothing left queued once both jobs are done.
        assert _series_value(after, "repro_job_queue_depth") == 0

    def test_job_trace_endpoint(self, client):
        job = client.submit(scenario="smoke")
        client.wait(job.id, timeout=60)
        spans = client.job_trace(job.id)
        names = [span["name"] for span in spans]
        assert "job.point" in names
        assert "engine.plan" in names
        assert "engine.merge" in names
        assert all(span["v"] == 1 for span in spans)
        # Executed point spans nest under the job.point root.
        root = next(s for s in spans if s["name"] == "job.point")
        assert root["parent"] is None
        assert root["attrs"] == {"name": "smoke"}

        # A cache-served job never ran: it gets a synthetic cache.hit span
        # per point instead of an empty trace, so "no spans" always means
        # "job not finished" rather than "served from cache".
        rerun = client.submit(scenario="smoke")
        assert rerun.state == "done"
        hits = client.job_trace(rerun.id)
        assert [span["name"] for span in hits] == ["cache.hit"]
        assert hits[0]["attrs"]["name"] == "smoke"
        assert hits[0]["attrs"]["from_cache"] is True
        assert hits[0]["attrs"]["content_hash"]

    def test_job_trace_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job_trace("job-404")
        assert excinfo.value.status == 404

    def test_events_carry_monotonic_t(self, client):
        job = client.submit(scenario="smoke")
        events = list(client.events(job.id))
        stamps = [event["t"] for event in events]
        assert all(isinstance(t, float) and t >= 0.0 for t in stamps)
        assert stamps == sorted(stamps)


class TestFleetEndpoints:
    """Worker telemetry piggybacked on claims, aggregated service-side."""

    @staticmethod
    def _worker_snapshot(blocks: float) -> dict:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("repro_worker_blocks_total", "blocks").inc(blocks)
        registry.counter("repro_worker_busy_seconds_total", "busy").inc(0.5)
        registry.counter(
            "repro_worker_items_total", "items", labelnames=("outcome",)
        ).labels(outcome="ok").inc(2)
        return registry.snapshot()

    def test_claim_telemetry_lands_on_metrics_and_fleet(self, client):
        worker_id = client.register_worker("w-tele")
        item = client.claim_work(
            worker_id,
            telemetry={
                "name": "w-tele",
                "seq": 1,
                "metrics": self._worker_snapshot(blocks=7),
            },
        )
        assert item is None  # nothing queued; the telemetry still lands

        text = client.metrics()
        assert _series_value(
            text, "repro_worker_blocks_total", 'worker="w-tele"'
        ) == 7

        fleet = client.fleet()
        (worker,) = [
            w for w in fleet["workers"] if w["name"] == "w-tele"
        ]
        assert worker["blocks"] == 7
        assert worker["items_ok"] == 2
        assert fleet["fleet"]["size"] >= 1
        # The raw board view rides along for liveness debugging.
        assert any(
            view["name"] == "w-tele" for view in fleet["board"]
        )

    def test_retried_telemetry_does_not_double_count(self, client):
        worker_id = client.register_worker("w-retry")
        payload = {
            "name": "w-retry",
            "seq": 5,
            "metrics": self._worker_snapshot(blocks=11),
        }
        client.claim_work(worker_id, telemetry=payload)
        client.claim_work(worker_id, telemetry=payload)  # HTTP retry re-post
        text = client.metrics()
        assert _series_value(
            text, "repro_worker_blocks_total", 'worker="w-retry"'
        ) == 11

    def test_malformed_telemetry_is_ignored_not_an_error(self, client):
        worker_id = client.register_worker("w-bad")
        item = client.claim_work(
            worker_id, telemetry={"metrics": "not-a-mapping"}
        )
        assert item is None
        fleet = client.fleet()
        assert all(w["name"] != "w-bad" for w in fleet["workers"])


class TestResultEndpoint:
    def test_etag_roundtrip_and_miss(self, client):
        job = client.submit(scenario="smoke")
        done = client.wait(job.id, timeout=60)
        (content_hash,) = done.content_hashes

        result = client.result(content_hash)
        assert client.result(content_hash, etag=result.etag) is None  # 304

        with pytest.raises(ServiceError) as excinfo:
            client.result("f" * 64)
        assert excinfo.value.status == 404

    def test_arrays_are_optional_and_lossless_as_lists(self, client):
        job = client.submit(scenario="smoke")
        done = client.wait(job.id, timeout=60)
        (content_hash,) = done.content_hashes

        lean = client.result(content_hash)
        assert lean.array_values == {}

        full = client.result(content_hash, include_arrays=True)
        values = full.array_values["completion_times"]
        assert len(values) == 5  # smoke runs 5 realisations
        assert all(isinstance(v, float) for v in values)

    def test_arrays_flag_respects_falsy_values(self, client):
        # `?arrays=0` means "names only" — it must not inline values (or
        # drag numpy onto the request path of a fresh server).
        job = client.submit(scenario="smoke")
        done = client.wait(job.id, timeout=60)
        (content_hash,) = done.content_hashes
        for value in ("0", "false", "no"):
            _, _, payload = client._request(
                "GET", f"/v1/results/{content_hash}?arrays={value}"
            )
            assert "array_values" not in payload


class TestRunHistoryEndpoints:
    def _seed(self, count=3, **overrides):
        from repro.obs.history import default_ledger

        ledger = default_ledger()
        records = []
        for i in range(count):
            record = {
                "kind": "run",
                "scenario": "smoke",
                "spec_hash": "abc",
                "backend": "reference",
                "executor": "InlineExecutor",
                "effective_cpus": 1,
                "realisations": 100,
                "blocks_total": 4,
                "blocks_cached": 0,
                "wall_seconds": 0.5 + i,
                "timings": {"dispatch_overhead_seconds": 0.01},
            }
            record.update(overrides)
            records.append(ledger.append(record))
        return records

    def test_empty_ledger_serves_an_empty_page(self, client):
        page = client.runs()
        assert page == {"runs": [], "total": 0, "limit": 50, "offset": 0}

    def test_runs_page_newest_first_with_pagination(self, client):
        records = self._seed(count=5)
        page = client.runs(limit=2)
        assert page["total"] == 5
        assert [r["id"] for r in page["runs"]] == [
            records[4]["id"], records[3]["id"],
        ]
        next_page = client.runs(limit=2, offset=2)
        assert [r["id"] for r in next_page["runs"]] == [
            records[2]["id"], records[1]["id"],
        ]

    def test_runs_filter_by_backend(self, client):
        self._seed(count=2, backend="reference")
        self._seed(count=1, backend="vectorized")
        page = client.runs(backend="vectorized")
        assert page["total"] == 1
        assert page["runs"][0]["backend"] == "vectorized"

    def test_run_record_carries_sentinel_verdict(self, client):
        (record,) = self._seed(count=1)
        payload = client.run_record(record["id"])
        assert payload["run"]["id"] == record["id"]
        verdict = payload["sentinel"]
        assert verdict["record_id"] == record["id"]
        assert {c["check"] for c in verdict["checks"]} == {
            "throughput", "dispatch_overhead", "cache_hit_ratio",
        }

    def test_unknown_run_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.run_record("deadbeef")
        assert excinfo.value.status == 404

    def test_bad_pagination_is_400(self, client):
        status, _, _ = client._request("GET", "/v1/runs?limit=banana")
        assert status == 400
        status, _, _ = client._request("GET", "/v1/runs?since=never")
        assert status == 400

    def test_index_lists_the_runs_endpoints(self, client):
        payload = client._json("GET", "/")
        assert "GET /v1/runs" in payload["endpoints"]
        assert "GET /v1/runs/{run_id}" in payload["endpoints"]
